//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of proptest this workspace's property tests use:
//! [`Strategy`] with `prop_map`/`boxed`, range and string-pattern
//! strategies, tuple composition, `prop::collection::vec`,
//! `prop::sample::Index`, [`any`], and the `proptest!`/`prop_assert*!`/
//! `prop_oneof!` macros. Sampling is plain Monte-Carlo with a per-test
//! deterministic seed — no shrinking. A failing case reports its inputs
//! via the assertion message and panics like an ordinary test.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Deterministic RNG driving all sampling (splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Seeds from a test name so every run of a test draws the same cases.
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the fully qualified test name.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng(h)
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw in `[0, bound)`. `bound` must be non-zero.
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "TestRng::below: empty range");
        (self.next_u64() % bound as u64) as usize
    }
}

/// Error carried out of a failing property body by `prop_assert!`.
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Runner configuration; only the case count is tunable.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property is checked against.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms produced values with `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(move |rng| self.sample(rng)))
    }
}

/// A type-erased strategy (see [`Strategy::boxed`]).
pub struct BoxedStrategy<T>(Box<dyn Fn(&mut TestRng) -> T>);

impl<T> std::fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.sample(rng))
    }
}

/// Uniform choice between boxed alternatives (see `prop_oneof!`).
#[derive(Debug)]
pub struct OneOf<T>(pub Vec<BoxedStrategy<T>>);

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let pick = rng.below(self.0.len());
        self.0[pick].sample(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty integer range strategy");
                let width = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128 % width) as i128;
                (self.start as i128 + off) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty integer range strategy");
                let width = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128 % width) as i128;
                (lo as i128 + off) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start() + rng.unit_f64() * (self.end() - self.start())
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

// ---------------------------------------------------------------------------
// String pattern strategies
// ---------------------------------------------------------------------------

/// One unit of a compiled string pattern.
#[derive(Debug, Clone)]
enum Atom {
    /// Explicit character alternatives from a `[...]` class.
    Class(Vec<char>),
    /// `\PC`: any printable character.
    Printable,
    /// A literal character.
    Lit(char),
}

#[derive(Debug, Clone)]
struct PatternPart {
    atom: Atom,
    min: usize,
    max: usize,
}

/// Compiles the regex subset used by the workspace's tests:
/// `[a-z ...]` classes, `\PC`, literals, each optionally followed by
/// `{n}` or `{m,n}` repetition.
fn compile_pattern(pattern: &str) -> Vec<PatternPart> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut parts = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let atom = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unclosed [ in pattern {pattern:?}"));
                let mut set = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        let (lo, hi) = (chars[j], chars[j + 2]);
                        for c in lo..=hi {
                            set.push(c);
                        }
                        j += 3;
                    } else {
                        set.push(chars[j]);
                        j += 1;
                    }
                }
                assert!(!set.is_empty(), "empty class in pattern {pattern:?}");
                i = close + 1;
                Atom::Class(set)
            }
            '\\' => {
                assert!(
                    chars.get(i + 1) == Some(&'P') && chars.get(i + 2) == Some(&'C'),
                    "unsupported escape in pattern {pattern:?}"
                );
                i += 3;
                Atom::Printable
            }
            c => {
                i += 1;
                Atom::Lit(c)
            }
        };
        let (min, max) = if chars.get(i) == Some(&'{') {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .map(|p| i + p)
                .unwrap_or_else(|| panic!("unclosed {{ in pattern {pattern:?}"));
            let body: String = chars[i + 1..close].iter().collect();
            let (lo, hi) = match body.split_once(',') {
                Some((lo, hi)) => (lo.parse().unwrap(), hi.parse().unwrap()),
                None => {
                    let n: usize = body.parse().unwrap();
                    (n, n)
                }
            };
            i = close + 1;
            (lo, hi)
        } else {
            (1, 1)
        };
        parts.push(PatternPart { atom, min, max });
    }
    parts
}

/// Printable sample space for `\PC`: ASCII printables plus a few
/// multi-byte letters to exercise UTF-8 handling.
const PRINTABLE_EXTRA: [char; 6] = ['é', 'ü', 'ñ', 'ß', 'λ', 'Ж'];

fn sample_pattern(parts: &[PatternPart], rng: &mut TestRng) -> String {
    let mut out = String::new();
    for part in parts {
        let count = part.min + rng.below(part.max - part.min + 1);
        for _ in 0..count {
            match &part.atom {
                Atom::Class(set) => out.push(set[rng.below(set.len())]),
                Atom::Lit(c) => out.push(*c),
                Atom::Printable => {
                    // Mostly ASCII printable, occasionally beyond.
                    if rng.below(8) == 0 {
                        out.push(PRINTABLE_EXTRA[rng.below(PRINTABLE_EXTRA.len())]);
                    } else {
                        out.push(char::from(b' ' + rng.below(95) as u8));
                    }
                }
            }
        }
    }
    out
}

impl Strategy for &str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        sample_pattern(&compile_pattern(self), rng)
    }
}

// ---------------------------------------------------------------------------
// any::<T>() / Arbitrary
// ---------------------------------------------------------------------------

/// Types with a canonical full-range strategy, used by [`any`].
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy produced by [`any`].
#[derive(Debug, Clone)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`: full-range random values.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Range, Strategy, TestRng};

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `Vec` strategy: each case draws a length in `size` (half-open),
    /// then that many elements.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.start + rng.below(self.size.end - self.size.start);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Sampling helpers (`prop::sample`).
pub mod sample {
    use super::{Arbitrary, TestRng};

    /// An index into a collection of yet-unknown length.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Index(u64);

    impl Index {
        /// Resolves against a concrete collection length (> 0).
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(rng.next_u64())
        }
    }
}

/// Everything a property-test module needs in scope.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, ProptestConfig, Strategy, TestCaseError, TestRng,
    };

    /// Namespace mirror so `prop::collection::vec` etc. resolve.
    pub mod prop {
        pub use crate::{collection, sample};
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Declares property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that checks the body against `config.cases`
/// sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion worker for [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng =
                $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            $(let $arg = $strat;)+
            for __case in 0..__config.cases {
                $(let $arg = $crate::Strategy::sample(&$arg, &mut __rng);)+
                let __inputs = format!(
                    concat!($(stringify!($arg), " = {:?}; ",)+),
                    $(&$arg),+
                );
                let __result: ::std::result::Result<(), $crate::TestCaseError> =
                    (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(__e) = __result {
                    panic!(
                        "property {} failed at case {}/{}: {}\n  inputs: {}",
                        stringify!($name),
                        __case + 1,
                        __config.cases,
                        __e,
                        __inputs
                    );
                }
            }
        }
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
}

/// Fails the current property case when the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError(
                concat!("assertion failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError(format!($($fmt)+)));
        }
    };
}

/// Fails the current property case when the operands differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                __l,
                __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+),
                __l,
                __r
            )));
        }
    }};
}

/// Fails the current property case when the operands are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::TestCaseError(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                __l
            )));
        }
    }};
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::OneOf(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::from_name("ranges");
        for _ in 0..500 {
            let v = Strategy::sample(&(3u32..7), &mut rng);
            assert!((3..7).contains(&v));
            let f = Strategy::sample(&(-2.0f64..2.0), &mut rng);
            assert!((-2.0..2.0).contains(&f));
            let i = Strategy::sample(&(1usize..=5), &mut rng);
            assert!((1..=5).contains(&i));
        }
    }

    #[test]
    fn patterns_match_shape() {
        let mut rng = TestRng::from_name("patterns");
        for _ in 0..200 {
            let s = Strategy::sample(&"[a-z]{1,6}", &mut rng);
            assert!((1..=6).contains(&s.chars().count()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
            let t = Strategy::sample(&"\\PC{0,120}", &mut rng);
            assert!(t.chars().count() <= 120);
            assert!(t.chars().all(|c| !c.is_control()));
        }
    }

    #[test]
    fn vec_and_tuple_compose() {
        let mut rng = TestRng::from_name("vec");
        let strat = prop::collection::vec((0u32..4, -1.0f64..1.0), 2..9);
        for _ in 0..100 {
            let v = Strategy::sample(&strat, &mut rng);
            assert!((2..9).contains(&v.len()));
            for (a, b) in v {
                assert!(a < 4);
                assert!((-1.0..1.0).contains(&b));
            }
        }
    }

    #[test]
    fn oneof_and_map_sample_all_arms() {
        let mut rng = TestRng::from_name("oneof");
        let strat = prop_oneof![(0u32..1).prop_map(|_| "lo"), (0u32..1).prop_map(|_| "hi"),];
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..100 {
            seen.insert(Strategy::sample(&strat, &mut rng));
        }
        assert_eq!(seen.len(), 2);
    }

    #[test]
    fn index_resolves_in_bounds() {
        let mut rng = TestRng::from_name("index");
        for _ in 0..100 {
            let idx = Strategy::sample(&any::<prop::sample::Index>(), &mut rng);
            assert!(idx.index(13) < 13);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn harness_runs_and_passes(a in 0u32..10, b in 0u32..10) {
            prop_assert!(a + b < 20, "sum out of range: {}", a + b);
            prop_assert_eq!(a + b, b + a);
            prop_assert_ne!(a, a + b + 1);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    // The nested `#[test]` exists only to exercise the macro's expansion;
    // it is called by hand below, not collected by the harness.
    #[allow(unnameable_test_items)]
    fn harness_reports_failures() {
        proptest! {
            #[test]
            fn always_fails(x in 0u32..4) {
                prop_assert!(x > 100);
            }
        }
        always_fails();
    }
}

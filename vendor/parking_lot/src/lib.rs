//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives with parking_lot's poison-free API:
//! `lock()`/`read()`/`write()` return guards directly (a poisoned std
//! lock is recovered, matching parking_lot's no-poisoning semantics).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::sync;

pub use sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock that does not poison.
#[derive(Debug, Default)]
pub struct Mutex<T>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A reader-writer lock that does not poison.
#[derive(Debug, Default)]
pub struct RwLock<T>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_guards_exclusive_access() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn rwlock_allows_concurrent_reads() {
        let l = RwLock::new(5);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 10);
    }
}

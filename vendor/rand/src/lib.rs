//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the *exact trait surface it uses* — [`Rng`], [`RngExt`],
//! [`SeedableRng`] and [`seq::SliceRandom`] — with the same calling
//! conventions as upstream. Concrete generators live in the sibling
//! `rand_chacha` stub. Streams are deterministic per seed but are not
//! bit-compatible with upstream `rand`; the workspace's tests assert
//! distributional *shape*, never exact draws.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

/// A source of random bits.
pub trait Rng {
    /// The next 64 uniformly-distributed bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly-distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    // Forwarded so a generator's custom `next_u32` (e.g. ChaCha8Rng
    // consuming one word) is preserved through a `&mut` reference; the
    // trait default would consume a full u64 and fork the stream.
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
}

/// A type that can be sampled uniformly from a range by an [`Rng`].
pub trait SampleUniform: Sized + Copy {
    /// Uniform draw from `[low, high)`. `high > low` must hold.
    fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;

    /// Uniform draw from `[low, high]`. `high >= low` must hold.
    fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

/// Converts a `u64` of random bits into a unit-interval `f64` in `[0, 1)`.
#[inline]
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleUniform for f64 {
    fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(high > low, "random_range: empty range {low}..{high}");
        let v = low + unit_f64(rng.next_u64()) * (high - low);
        // Floating rounding can land exactly on `high`; nudge back inside.
        if v >= high {
            low
        } else {
            v
        }
    }
    fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(high >= low, "random_range: empty range {low}..={high}");
        low + unit_f64(rng.next_u64()) * (high - low)
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(high > low, "random_range: empty range");
                let span = (high as i128 - low as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (low as i128 + draw as i128) as $t
            }
            fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(high >= low, "random_range: empty range");
                let span = (high as i128 - low as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128) % span;
                (low as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A range usable with [`RngExt::random_range`].
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// Convenience sampling methods, blanket-implemented for every [`Rng`].
pub trait RngExt: Rng {
    /// A uniform draw from `range` (`a..b` half-open or `a..=b` inclusive).
    fn random_range<T, S>(&mut self, range: S) -> T
    where
        T: SampleUniform,
        S: SampleRange<T>,
    {
        range.sample(self)
    }

    /// A uniform draw from `[0, 1)`.
    fn random_unit(&mut self) -> f64 {
        unit_f64(self.next_u64())
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        self.random_unit() < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Slice-sampling helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{Rng, RngExt};

    /// Shuffling and choosing on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly-chosen element, `None` when empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.random_range(0..self.len())])
            }
        }
    }
}

/// The common imports, mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngExt, SampleUniform, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    struct Counter(u64);
    impl Rng for Counter {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 so draws look uniform enough for the assertions.
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Counter(1);
        for _ in 0..1000 {
            let f = rng.random_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&f));
            let u = rng.random_range(0..7u32);
            assert!(u < 7);
            let k = rng.random_range(1..=3usize);
            assert!((1..=3).contains(&k));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Counter(2);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }

    #[test]
    fn unit_draws_cover_the_interval() {
        let mut rng = Counter(3);
        let draws: Vec<f64> = (0..2000).map(|_| rng.random_unit()).collect();
        assert!(draws.iter().all(|d| (0.0..1.0).contains(d)));
        let mean = draws.iter().sum::<f64>() / draws.len() as f64;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean} far from 0.5");
    }
}

//! Offline stand-in for `serde`.
//!
//! The build environment cannot reach crates.io, so the workspace vendors
//! a compact serialization framework with the same *user-facing shape* as
//! serde — `#[derive(Serialize, Deserialize)]`, `#[serde(transparent)]`,
//! externally-tagged enums — built over an explicit [`Value`] tree
//! instead of upstream's visitor architecture. `serde_json` (also
//! vendored) prints and parses that tree. Only what the workspace uses is
//! implemented; the derive macro lives in `serde_derive`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::collections::{BTreeMap, HashMap};
use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A self-describing data tree, the interchange format between
/// [`Serialize`]/[`Deserialize`] impls and data formats like the vendored
/// `serde_json`.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// Any number (all integers used in the workspace fit `f64` exactly).
    Num(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Arr(Vec<Value>),
    /// An ordered map (insertion order preserved so output is stable).
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Short description of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Num(_) => "number",
            Value::Str(_) => "string",
            Value::Arr(_) => "array",
            Value::Obj(_) => "object",
        }
    }

    /// The number as `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as `u64`, if this is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The string slice, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The fields in insertion order, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// Looks up a value by RFC 6901 JSON Pointer (`"/meta/world"`).
    /// Array tokens must be decimal indices; `~1`/`~0` unescape to
    /// `/`/`~`. The empty pointer returns `self`; any missing step
    /// returns `None`.
    pub fn pointer(&self, pointer: &str) -> Option<&Value> {
        if pointer.is_empty() {
            return Some(self);
        }
        let rest = pointer.strip_prefix('/')?;
        rest.split('/').try_fold(self, |v, token| {
            let token = token.replace("~1", "/").replace("~0", "~");
            match v {
                Value::Obj(_) => v.get(&token),
                Value::Arr(items) => token.parse::<usize>().ok().and_then(|i| items.get(i)),
                _ => None,
            }
        })
    }
}

/// Deserialization failure.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError(pub String);

impl DeError {
    /// Builds an error from anything printable.
    pub fn msg(m: impl fmt::Display) -> Self {
        DeError(m.to_string())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can render themselves as a [`Value`].
pub trait Serialize {
    /// Converts `self` to the interchange tree.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds `Self`, failing with a description on shape mismatch.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------- numbers

macro_rules! impl_serde_num {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Num(n) => Ok(*n as $t),
                    other => Err(DeError::msg(format!(
                        "expected number, found {}",
                        other.kind()
                    ))),
                }
            }
        }
    )*};
}

impl_serde_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

// ------------------------------------------------------- bool and strings

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::msg(format!(
                "expected bool, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::msg(format!(
                "expected string, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for &str {
    fn to_value(&self) -> Value {
        Value::Str((*self).to_owned())
    }
}

// ----------------------------------------------------------- containers

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Arr(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::msg(format!(
                "expected array, found {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Obj(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Obj(fields) => fields
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(DeError::msg(format!(
                "expected object, found {}",
                other.kind()
            ))),
        }
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sort keys so output is deterministic.
        let mut pairs: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Obj(pairs)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Obj(fields) => fields
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(DeError::msg(format!(
                "expected object, found {}",
                other.kind()
            ))),
        }
    }
}

// --------------------------------------------------------------- tuples

macro_rules! impl_serde_tuple {
    ($(($($t:ident : $idx:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Arr(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let expected = [$(stringify!($idx)),+].len();
                match v {
                    Value::Arr(items) if items.len() == expected => {
                        Ok(($($t::from_value(&items[$idx])?,)+))
                    }
                    Value::Arr(items) => Err(DeError::msg(format!(
                        "expected {expected}-tuple, found array of {}",
                        items.len()
                    ))),
                    other => Err(DeError::msg(format!(
                        "expected array, found {}",
                        other.kind()
                    ))),
                }
            }
        }
    )*};
}

impl_serde_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_value(&5u32.to_value()).unwrap(), 5);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![(1.0f64, 2.0f64), (3.0, 4.0)];
        assert_eq!(Vec::<(f64, f64)>::from_value(&v.to_value()).unwrap(), v);
        let none: Option<String> = None;
        assert_eq!(
            Option::<String>::from_value(&none.to_value()).unwrap(),
            None
        );
        let mut m = BTreeMap::new();
        m.insert("a".to_string(), 1u32);
        assert_eq!(
            BTreeMap::<String, u32>::from_value(&m.to_value()).unwrap(),
            m
        );
    }

    #[test]
    fn shape_mismatch_errors() {
        assert!(u32::from_value(&Value::Str("x".into())).is_err());
        assert!(Vec::<u32>::from_value(&Value::Num(1.0)).is_err());
        assert!(<(f64, f64)>::from_value(&Value::Arr(vec![Value::Num(1.0)])).is_err());
    }
}

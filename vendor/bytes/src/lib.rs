//! Offline stand-in for the `bytes` crate.
//!
//! Provides [`Bytes`], [`BytesMut`], [`Buf`] and [`BufMut`] with the
//! little-endian accessors the workspace's snapshot codec uses. Backed by
//! plain `Vec<u8>`/slices — no refcounted views, which the workspace does
//! not need.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::ops::Deref;

/// An immutable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes(Vec<u8>);

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copies the bytes into a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.clone()
    }

    /// Buffer length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(v)
    }
}

/// A growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut(Vec::with_capacity(cap))
    }

    /// Freezes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes(self.0)
    }

    /// Buffer length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

/// Read cursor over a byte source.
///
/// Implemented for `&[u8]`: reads advance the slice itself, exactly like
/// upstream. Accessors panic when fewer bytes remain than requested —
/// callers must check [`Buf::remaining`] first.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Copies `dst.len()` bytes out and advances.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(
            self.len() >= dst.len(),
            "Buf::copy_to_slice: {} bytes requested, {} remain",
            dst.len(),
            self.len()
        );
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

/// Write cursor over a growable byte sink.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_round_trips() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_slice(b"HDR");
        buf.put_u8(7);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u64_le(u64::MAX - 1);
        buf.put_f64_le(3.25);
        let frozen = buf.freeze();
        let mut cursor: &[u8] = &frozen;
        let mut hdr = [0u8; 3];
        cursor.copy_to_slice(&mut hdr);
        assert_eq!(&hdr, b"HDR");
        assert_eq!(cursor.get_u8(), 7);
        assert_eq!(cursor.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(cursor.get_u64_le(), u64::MAX - 1);
        assert_eq!(cursor.get_f64_le(), 3.25);
        assert_eq!(cursor.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "copy_to_slice")]
    fn short_read_panics() {
        let mut cursor: &[u8] = &[1, 2];
        let _ = cursor.get_u32_le();
    }
}

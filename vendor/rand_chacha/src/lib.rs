//! Offline stand-in for `rand_chacha`, providing [`ChaCha8Rng`].
//!
//! This is a genuine ChaCha8 block function (Bernstein's ChaCha with 8
//! rounds), so streams have cryptographic-quality statistics — the
//! simulated-user studies lean on that. Seeding via
//! [`SeedableRng::seed_from_u64`] expands the 64-bit seed with SplitMix64
//! into the 256-bit key, like upstream. Byte streams are **not**
//! bit-compatible with the real crate (word extraction order differs);
//! within this workspace only determinism-per-seed matters.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use rand::{Rng, SeedableRng};

const ROUNDS: usize = 8;

/// A ChaCha8 random number generator.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// 4x4 input state: constants, key, counter, nonce.
    state: [u32; 16],
    /// Current output block.
    block: [u32; 16],
    /// Next word to emit from `block`.
    cursor: usize,
}

#[inline(always)]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut w = self.state;
        for _ in 0..ROUNDS / 2 {
            // Column round.
            quarter_round(&mut w, 0, 4, 8, 12);
            quarter_round(&mut w, 1, 5, 9, 13);
            quarter_round(&mut w, 2, 6, 10, 14);
            quarter_round(&mut w, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut w, 0, 5, 10, 15);
            quarter_round(&mut w, 1, 6, 11, 12);
            quarter_round(&mut w, 2, 7, 8, 13);
            quarter_round(&mut w, 3, 4, 9, 14);
        }
        for (out, (x, y)) in self.block.iter_mut().zip(w.iter().zip(&self.state)) {
            *out = x.wrapping_add(*y);
        }
        // 64-bit block counter in words 12–13.
        let counter = (self.state[12] as u64 | ((self.state[13] as u64) << 32)).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.cursor = 0;
    }

    #[inline]
    fn next_word(&mut self) -> u32 {
        if self.cursor >= 16 {
            self.refill();
        }
        let w = self.block[self.cursor];
        self.cursor += 1;
        w
    }
}

impl Rng for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        let lo = self.next_word() as u64;
        let hi = self.next_word() as u64;
        lo | (hi << 32)
    }

    fn next_u32(&mut self) -> u32 {
        self.next_word()
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion of the seed into the 8-word key.
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut state = [0u32; 16];
        // "expand 32-byte k" constants.
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646E;
        state[2] = 0x7962_2D32;
        state[3] = 0x6B20_6574;
        for k in 0..4 {
            let w = next();
            state[4 + 2 * k] = w as u32;
            state[5 + 2 * k] = (w >> 32) as u32;
        }
        // Counter and nonce start at zero.
        let mut rng = Self {
            state,
            block: [0; 16],
            cursor: 16,
        };
        rng.refill();
        rng.cursor = 0;
        rng
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngExt;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn draws_look_uniform() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let n = 10_000;
        let mut buckets = [0usize; 10];
        for _ in 0..n {
            buckets[rng.random_range(0..10usize)] += 1;
        }
        for (k, &count) in buckets.iter().enumerate() {
            let expected = n / 10;
            assert!(
                count > expected / 2 && count < expected * 2,
                "bucket {k} count {count} far from {expected}"
            );
        }
    }

    #[test]
    fn clone_forks_the_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(9);
        let _ = a.next_u64();
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }
}

//! Offline stand-in for `serde_json`: prints and parses the vendored
//! `serde` stub's [`Value`] tree as JSON.
//!
//! Floats print via Rust's shortest-round-trip formatting (the
//! `float_roundtrip` feature upstream), integers without a trailing
//! `.0`. Only the API surface the workspace uses is provided:
//! [`to_string`], [`to_string_pretty`], [`to_value`], [`from_str`] and
//! [`from_value`].

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use serde::Value;
use serde::{DeError, Deserialize, Serialize};
use std::fmt;

/// Serialization or parse failure.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(pub String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.0)
    }
}

/// Converts any serializable type to its [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Rebuilds a deserializable type from a [`Value`] tree.
///
/// # Errors
///
/// Returns [`Error`] when the tree's shape does not match `T`.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T, Error> {
    Ok(T::from_value(value)?)
}

/// Serializes to compact JSON.
///
/// # Errors
///
/// Infallible for the vendored model; the `Result` mirrors upstream.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes to pretty-printed JSON (two-space indent, like upstream).
///
/// # Errors
///
/// Infallible for the vendored model; the `Result` mirrors upstream.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some("  "), 0);
    Ok(out)
}

/// Parses JSON text and rebuilds `T`.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", parser.pos)));
    }
    Ok(T::from_value(&value)?)
}

// --------------------------------------------------------------- printer

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_num(out: &mut String, n: f64) {
    if !n.is_finite() {
        // JSON has no NaN/Inf; upstream errors, we emit null.
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 1e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_value(out: &mut String, v: &Value, indent: Option<&str>, depth: usize) {
    let (nl, pad, pad_inner) = match indent {
        Some(unit) => ("\n".to_string(), unit.repeat(depth), unit.repeat(depth + 1)),
        None => (String::new(), String::new(), String::new()),
    };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Num(n) => write_num(out, *n),
        Value::Str(s) => write_escaped(out, s),
        Value::Arr(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (k, item) in items.iter().enumerate() {
                if k > 0 {
                    out.push(',');
                }
                out.push_str(&nl);
                out.push_str(&pad_inner);
                write_value(out, item, indent, depth + 1);
            }
            out.push_str(&nl);
            out.push_str(&pad);
            out.push(']');
        }
        Value::Obj(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (k, (key, val)) in fields.iter().enumerate() {
                if k > 0 {
                    out.push(',');
                }
                out.push_str(&nl);
                out.push_str(&pad_inner);
                write_escaped(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            out.push_str(&nl);
            out.push_str(&pad);
            out.push('}');
        }
    }
}

// ---------------------------------------------------------------- parser

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || c == b'.' || c == b'e' || c == b'E' || c == b'+' || c == b'-')
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid utf-8 in number".to_string()))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| Error(format!("invalid number `{text}` at byte {start}")))
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast-forward over plain UTF-8 until a quote or escape.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error("invalid utf-8 in string".to_string()))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".to_string()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("invalid \\u escape".to_string()))?,
                                16,
                            )
                            .map_err(|_| Error("invalid \\u escape".to_string()))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("invalid codepoint".to_string()))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error(format!("invalid escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                _ => return Err(Error("unterminated string".to_string())),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(Error(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(Error(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_values() {
        let v = Value::Obj(vec![
            ("name".to_string(), Value::Str("E-PERS".to_string())),
            (
                "points".to_string(),
                Value::Arr(vec![
                    Value::Arr(vec![Value::Num(1.0), Value::Num(0.25)]),
                    Value::Arr(vec![Value::Num(2.0), Value::Num(0.5)]),
                ]),
            ),
            ("ok".to_string(), Value::Bool(true)),
            ("none".to_string(), Value::Null),
        ]);
        let compact = to_string(&v).unwrap();
        let back: Value = from_str(&compact).unwrap();
        assert_eq!(back, v);
        let pretty = to_string_pretty(&v).unwrap();
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(back, v);
        assert!(pretty.contains("\n  \"name\": \"E-PERS\""));
    }

    #[test]
    fn numbers_round_trip() {
        for n in [0.0, -1.5, 42.0, 1e-9, 123456789.123, f64::MAX] {
            let text = to_string(&n).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(back, n, "{text}");
        }
        assert_eq!(to_string(&5u32).unwrap(), "5");
    }

    #[test]
    fn strings_escape() {
        let s = "a \"quoted\"\nline\twith \\ and é".to_string();
        let text = to_string(&s).unwrap();
        let back: String = from_str(&text).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn malformed_input_errors() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1, 2,]").is_err());
        assert!(from_str::<Value>("\"open").is_err());
        assert!(from_str::<Value>("12 34").is_err());
        assert!(from_str::<u32>("\"not a number\"").is_err());
    }
}

//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Keeps the same authoring surface — [`Criterion`], benchmark groups,
//! [`Bencher::iter`], `criterion_group!`/`criterion_main!` — but measures
//! with a simple wall-clock loop and prints one line per benchmark instead
//! of doing statistical analysis. Good enough to keep `cargo bench`
//! compiling and producing comparable relative numbers offline.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::time::{Duration, Instant};

/// Top-level benchmark driver, handed to each registered bench function.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            _criterion: self,
            sample_size: 20,
        }
    }
}

/// A named collection of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    _criterion: &'c mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples to take per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark and prints its mean per-iteration time.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            iters: self.sample_size as u64,
            elapsed: Duration::ZERO,
        };
        // One untimed pass to warm caches, then the timed run.
        f(&mut b);
        b.elapsed = Duration::ZERO;
        f(&mut b);
        let per_iter = b.elapsed.as_nanos() / u128::from(b.iters.max(1));
        println!("  {name}: {per_iter} ns/iter ({} iters)", b.iters);
        self
    }

    /// Ends the group. Present for API parity; prints nothing.
    pub fn finish(&mut self) {}
}

/// Timer handle passed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it a fixed number of iterations.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            let out = routine();
            std::hint::black_box(&out);
        }
        self.elapsed = start.elapsed();
    }
}

/// Declares a benchmark group: a function that runs each listed bench.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, invoking each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(5);
        let mut calls = 0u64;
        g.bench_function("count", |b| b.iter(|| calls += 1));
        g.finish();
        // Warm-up pass + timed pass, 5 iterations each.
        assert_eq!(calls, 10);
    }
}

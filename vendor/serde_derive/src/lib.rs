//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` against
//! the vendored `serde` stub's `Value` model. Because crates.io (and
//! therefore `syn`/`quote`) is unreachable, the item is parsed directly
//! from the `proc_macro` token stream. Supported shapes — the full set
//! used by this workspace:
//!
//! * structs with named fields;
//! * tuple structs (newtypes serialize as their inner value, matching
//!   serde; `#[serde(transparent)]` is accepted and equivalent);
//! * enums with unit, tuple and struct variants (externally tagged).
//!
//! Generics are not supported and produce a compile error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Shape {
    NamedStruct { fields: Vec<String> },
    TupleStruct { arity: usize },
    Enum { variants: Vec<Variant> },
}

#[derive(Debug)]
struct Variant {
    name: String,
    kind: VariantKind,
}

#[derive(Debug)]
enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

struct Model {
    name: String,
    shape: Shape,
}

/// Skips one `#[...]` attribute if present; returns whether one was eaten.
fn skip_attr(tokens: &[TokenTree], pos: &mut usize) -> bool {
    if let Some(TokenTree::Punct(p)) = tokens.get(*pos) {
        if p.as_char() == '#' {
            if let Some(TokenTree::Group(g)) = tokens.get(*pos + 1) {
                if g.delimiter() == Delimiter::Bracket {
                    *pos += 2;
                    return true;
                }
            }
        }
    }
    false
}

/// Skips a visibility qualifier (`pub`, `pub(crate)`, …) if present.
fn skip_vis(tokens: &[TokenTree], pos: &mut usize) {
    if let Some(TokenTree::Ident(id)) = tokens.get(*pos) {
        if id.to_string() == "pub" {
            *pos += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(*pos) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *pos += 1;
                }
            }
        }
    }
}

/// Counts the top-level comma-separated chunks of a token sequence,
/// treating `<`…`>` pairs as nesting (for `Vec<(A, B)>` and friends).
fn count_chunks(tokens: &[TokenTree]) -> usize {
    let mut depth = 0i32;
    let mut chunks = 0usize;
    let mut in_chunk = false;
    for t in tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                depth += 1;
                in_chunk = true;
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                depth -= 1;
                in_chunk = true;
            }
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                if in_chunk {
                    chunks += 1;
                }
                in_chunk = false;
            }
            _ => in_chunk = true,
        }
    }
    if in_chunk {
        chunks += 1;
    }
    chunks
}

/// Parses `field: Type, …` (named-field bodies of structs and variants).
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        while skip_attr(&tokens, &mut pos) {}
        skip_vis(&tokens, &mut pos);
        let Some(TokenTree::Ident(name)) = tokens.get(pos) else {
            break;
        };
        fields.push(name.to_string());
        pos += 1;
        // Expect `:`, then consume the type up to a top-level comma.
        assert!(
            matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == ':'),
            "serde_derive stub: expected `:` after field `{}`",
            fields.last().unwrap()
        );
        pos += 1;
        let mut depth = 0i32;
        while pos < tokens.len() {
            match &tokens[pos] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    pos += 1;
                    break;
                }
                _ => {}
            }
            pos += 1;
        }
    }
    fields
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        while skip_attr(&tokens, &mut pos) {}
        let Some(TokenTree::Ident(name)) = tokens.get(pos) else {
            break;
        };
        let name = name.to_string();
        pos += 1;
        let kind = match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_chunks(&g.stream().into_iter().collect::<Vec<_>>());
                pos += 1;
                VariantKind::Tuple(arity)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                pos += 1;
                VariantKind::Named(fields)
            }
            _ => VariantKind::Unit,
        };
        variants.push(Variant { name, kind });
        // Skip to past the next top-level comma.
        while pos < tokens.len() {
            if matches!(&tokens[pos], TokenTree::Punct(p) if p.as_char() == ',') {
                pos += 1;
                break;
            }
            pos += 1;
        }
    }
    variants
}

fn parse_model(input: TokenStream) -> Model {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;
    while skip_attr(&tokens, &mut pos) {}
    skip_vis(&tokens, &mut pos);
    let keyword = match tokens.get(pos) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive stub: expected `struct` or `enum`, found {other:?}"),
    };
    pos += 1;
    let name = match tokens.get(pos) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive stub: expected type name, found {other:?}"),
    };
    pos += 1;
    if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive stub: generic type `{name}` is not supported");
    }
    let shape = match (keyword.as_str(), tokens.get(pos)) {
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Shape::NamedStruct {
                fields: parse_named_fields(g.stream()),
            }
        }
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Parenthesis => {
            Shape::TupleStruct {
                arity: count_chunks(&g.stream().into_iter().collect::<Vec<_>>()),
            }
        }
        ("struct", _) => Shape::TupleStruct { arity: 0 },
        ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => Shape::Enum {
            variants: parse_variants(g.stream()),
        },
        other => panic!("serde_derive stub: unsupported item shape for `{name}`: {other:?}"),
    };
    Model { name, shape }
}

// --------------------------------------------------------------- codegen

fn gen_serialize(m: &Model) -> String {
    let name = &m.name;
    let body = match &m.shape {
        Shape::NamedStruct { fields } => {
            let pairs: Vec<String> = fields
                .iter()
                .map(|f| format!("({f:?}.to_string(), ::serde::Serialize::to_value(&self.{f}))"))
                .collect();
            format!("::serde::Value::Obj(vec![{}])", pairs.join(", "))
        }
        Shape::TupleStruct { arity: 0 } => "::serde::Value::Null".to_string(),
        Shape::TupleStruct { arity: 1 } => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::TupleStruct { arity } => {
            let items: Vec<String> = (0..*arity)
                .map(|k| format!("::serde::Serialize::to_value(&self.{k})"))
                .collect();
            format!("::serde::Value::Arr(vec![{}])", items.join(", "))
        }
        Shape::Enum { variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vn} => ::serde::Value::Str({vn:?}.to_string()),"
                        ),
                        VariantKind::Tuple(arity) => {
                            let binds: Vec<String> =
                                (0..*arity).map(|k| format!("f{k}")).collect();
                            let inner = if *arity == 1 {
                                "::serde::Serialize::to_value(f0)".to_string()
                            } else {
                                let items: Vec<String> = binds
                                    .iter()
                                    .map(|b| format!("::serde::Serialize::to_value({b})"))
                                    .collect();
                                format!("::serde::Value::Arr(vec![{}])", items.join(", "))
                            };
                            format!(
                                "{name}::{vn}({binds}) => ::serde::Value::Obj(vec![({vn:?}.to_string(), {inner})]),",
                                binds = binds.join(", ")
                            )
                        }
                        VariantKind::Named(fields) => {
                            let pairs: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "({f:?}.to_string(), ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {fields} }} => ::serde::Value::Obj(vec![({vn:?}.to_string(), ::serde::Value::Obj(vec![{pairs}]))]),",
                                fields = fields.join(", "),
                                pairs = pairs.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
            fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn named_fields_from_obj(type_and_variant: &str, fields: &[String], source: &str) -> String {
    let inits: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "{f}: ::serde::Deserialize::from_value({source}.get({f:?}).unwrap_or(&::serde::Value::Null))\
                 .map_err(|e| ::serde::DeError(format!(\"{type_and_variant}.{f}: {{}}\", e.0)))?"
            )
        })
        .collect();
    inits.join(", ")
}

fn gen_deserialize(m: &Model) -> String {
    let name = &m.name;
    let body = match &m.shape {
        Shape::NamedStruct { fields } => {
            let inits = named_fields_from_obj(name, fields, "v");
            format!(
                "match v {{\n\
                    ::serde::Value::Obj(_) => Ok({name} {{ {inits} }}),\n\
                    other => Err(::serde::DeError::msg(format!(\n\
                        \"expected object for {name}, found {{}}\", other.kind()))),\n\
                 }}"
            )
        }
        Shape::TupleStruct { arity: 0 } => format!("{{ let _ = v; Ok({name}) }}"),
        Shape::TupleStruct { arity: 1 } => {
            format!("Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Shape::TupleStruct { arity } => {
            let items: Vec<String> = (0..*arity)
                .map(|k| format!("::serde::Deserialize::from_value(&items[{k}])?"))
                .collect();
            format!(
                "match v {{\n\
                    ::serde::Value::Arr(items) if items.len() == {arity} =>\n\
                        Ok({name}({items})),\n\
                    other => Err(::serde::DeError::msg(format!(\n\
                        \"expected {arity}-element array for {name}, found {{}}\", other.kind()))),\n\
                 }}",
                items = items.join(", ")
            )
        }
        Shape::Enum { variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| format!("{vn:?} => Ok({name}::{vn}),", vn = v.name))
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => None,
                        VariantKind::Tuple(1) => Some(format!(
                            "{vn:?} => Ok({name}::{vn}(::serde::Deserialize::from_value(inner)?)),"
                        )),
                        VariantKind::Tuple(arity) => {
                            let items: Vec<String> = (0..*arity)
                                .map(|k| {
                                    format!("::serde::Deserialize::from_value(&items[{k}])?")
                                })
                                .collect();
                            Some(format!(
                                "{vn:?} => match inner {{\n\
                                    ::serde::Value::Arr(items) if items.len() == {arity} =>\n\
                                        Ok({name}::{vn}({items})),\n\
                                    other => Err(::serde::DeError::msg(format!(\n\
                                        \"expected {arity}-element array for {name}::{vn}, found {{}}\",\n\
                                        other.kind()))),\n\
                                 }},",
                                items = items.join(", ")
                            ))
                        }
                        VariantKind::Named(fields) => {
                            let inits = named_fields_from_obj(
                                &format!("{name}::{vn}"),
                                fields,
                                "inner",
                            );
                            Some(format!(
                                "{vn:?} => match inner {{\n\
                                    ::serde::Value::Obj(_) => Ok({name}::{vn} {{ {inits} }}),\n\
                                    other => Err(::serde::DeError::msg(format!(\n\
                                        \"expected object for {name}::{vn}, found {{}}\",\n\
                                        other.kind()))),\n\
                                 }},"
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "match v {{\n\
                    ::serde::Value::Str(s) => match s.as_str() {{\n\
                        {unit_arms}\n\
                        other => Err(::serde::DeError::msg(format!(\n\
                            \"unknown unit variant {{other}} for {name}\"))),\n\
                    }},\n\
                    ::serde::Value::Obj(fields) if fields.len() == 1 => {{\n\
                        let (tag, inner) = &fields[0];\n\
                        match tag.as_str() {{\n\
                            {tagged_arms}\n\
                            other => Err(::serde::DeError::msg(format!(\n\
                                \"unknown variant {{other}} for {name}\"))),\n\
                        }}\n\
                    }}\n\
                    other => Err(::serde::DeError::msg(format!(\n\
                        \"expected string or single-key object for {name}, found {{}}\",\n\
                        other.kind()))),\n\
                 }}",
                unit_arms = unit_arms.join("\n"),
                tagged_arms = tagged_arms.join("\n")
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
            fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                {body}\n\
            }}\n\
         }}"
    )
}

/// Derives `serde::Serialize` (stub).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let model = parse_model(input);
    gen_serialize(&model)
        .parse()
        .expect("serde_derive stub generated invalid Serialize impl")
}

/// Derives `serde::Deserialize` (stub).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let model = parse_model(input);
    gen_deserialize(&model)
        .parse()
        .expect("serde_derive stub generated invalid Deserialize impl")
}

//! Similarity lab: the survey's two future-work directions, running.
//!
//! 1. **User-adapted, user-readable similarity** — the same item pair
//!    scores differently for a genre-driven viewer and a star-struck one,
//!    and every score explains itself in plain language.
//! 2. **Text/visual complementarity** — a chart explained by its caption,
//!    with the modality mix analysed.
//! 3. Bonus: Ziegler-style topic diversification of a recommendation
//!    list, with before/after intra-list diversity.
//!
//! ```text
//! cargo run --example similarity_lab
//! ```

use exrec::algo::metrics::intra_list_diversity;
use exrec::core::modality::{analyze, complement, restrict, Modality};
use exrec::core::similexp::ExplainableSimilarity;
use exrec::prelude::*;
use exrec::present::diversify::diversify;

fn main() {
    let mut world = exrec::data::synth::movies::generate(&WorldConfig {
        n_users: 40,
        n_items: 50,
        density: 0.3,
        ..WorldConfig::default()
    });

    // ---- 1. user-adapted similarity --------------------------------
    // Viewer A: rates purely by genre. Viewer B: rates purely by lead
    // actor. Shape both users' histories accordingly.
    let viewer_a = UserId::new(0);
    let viewer_b = UserId::new(1);
    let items: Vec<_> = world.catalog.iter().map(|it| it.id).collect();
    for &viewer in &[viewer_a, viewer_b] {
        let rated: Vec<ItemId> = world
            .ratings
            .user_ratings(viewer)
            .iter()
            .map(|&(i, _)| i)
            .collect();
        for i in rated {
            world.ratings.unrate(viewer, i).unwrap();
        }
    }
    let fav_lead = world
        .catalog
        .get(items[0])
        .unwrap()
        .attrs
        .cat("lead")
        .unwrap()
        .to_owned();
    for &item in items.iter().take(24) {
        let it = world.catalog.get(item).unwrap();
        let a_score = if it.attrs.cat("genre") == Some("comedy") {
            5.0
        } else {
            1.0
        };
        let b_score = if it.attrs.cat("lead") == Some(fav_lead.as_str()) {
            5.0
        } else {
            2.0
        };
        world.ratings.rate(viewer_a, item, a_score).unwrap();
        world.ratings.rate(viewer_b, item, b_score).unwrap();
    }

    let ctx = Ctx::new(&world.ratings, &world.catalog);
    let sim_a = ExplainableSimilarity::fit(&ctx, viewer_a).unwrap();
    let sim_b = ExplainableSimilarity::fit(&ctx, viewer_b).unwrap();
    println!("learned attribute weights:");
    for attr in ["genre", "lead", "director", "year"] {
        println!(
            "  {attr:9}  genre-fan {:.2}   star-fan {:.2}",
            sim_a.weight_of(attr),
            sim_b.weight_of(attr)
        );
    }

    let x = world.catalog.get(items[30]).unwrap();
    let y = world.catalog.get(items[31]).unwrap();
    println!("\nthe same pair, explained to each viewer:");
    println!("  A: {}", sim_a.explain_pair(x, y, world.catalog.schema()));
    println!("  B: {}", sim_b.explain_pair(x, y, world.catalog.schema()));

    // ---- 2. modality complementarity --------------------------------
    let knn = UserKnn::default();
    let explainer = Explainer::new(&knn, InterfaceId::ClusteredHistogram);
    if let Some((_, base)) = explainer
        .recommend_explained(&ctx, viewer_a, 1)
        .into_iter()
        .next()
    {
        let chart = restrict(&base, Modality::Visual);
        let composed = complement(&chart);
        println!(
            "\nmodality mix: chart alone {:?} → complementary {:?}",
            analyze(&chart),
            analyze(&composed)
        );
        println!("{}", PlainRenderer.render(&composed));
    }

    // ---- 3. topic diversification ------------------------------------
    let candidates = knn.recommend(&ctx, viewer_a, 20);
    let genre_sim = |a: ItemId, b: ItemId| -> f64 {
        let ga = world.catalog.get(a).unwrap().attrs.cat("genre");
        let gb = world.catalog.get(b).unwrap().attrs.cat("genre");
        if ga == gb {
            0.9
        } else {
            0.1
        }
    };
    let plain: Vec<ItemId> = candidates.iter().take(6).map(|s| s.item).collect();
    let mixed: Vec<ItemId> = diversify(&candidates, 6, 0.6, genre_sim)
        .iter()
        .map(|s| s.item)
        .collect();
    println!(
        "top-6 intra-list diversity: plain {:.2} → diversified {:.2}",
        intra_list_diversity(&plain, genre_sim).unwrap_or(0.0),
        intra_list_diversity(&mixed, genre_sim).unwrap_or(0.0),
    );
    for (label, list) in [("plain", &plain), ("diversified", &mixed)] {
        let genres: Vec<&str> = list
            .iter()
            .map(|&i| {
                world
                    .catalog
                    .get(i)
                    .unwrap()
                    .attrs
                    .cat("genre")
                    .unwrap_or("?")
            })
            .collect();
        println!("  {label:11}: {}", genres.join(", "));
    }
}

//! Quickstart: generate a world, recommend, explain.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use exrec::prelude::*;

fn main() {
    // 1. A synthetic movie world (200 users × 120 movies by default)
    //    with hidden ground-truth preferences.
    let world = exrec::data::synth::movies::generate(&WorldConfig::default());
    let ctx = Ctx::new(&world.ratings, &world.catalog);
    println!(
        "world: {} users, {} movies, {} ratings ({:.1}% dense)\n",
        world.ratings.n_users(),
        world.catalog.len(),
        world.ratings.n_ratings(),
        world.ratings.density() * 100.0
    );

    // 2. User-based collaborative filtering.
    let knn = UserKnn::default();

    // 3. Pair it with the survey's best-performing explanation interface:
    //    the clustered neighbour-ratings histogram (Herlocker et al.).
    let explainer = Explainer::new(&knn, InterfaceId::ClusteredHistogram);

    let user = world
        .ratings
        .users()
        .find(|&u| world.ratings.user_ratings(u).len() >= 8)
        .expect("the default world has active users");
    println!("recommendations for user {user}:\n");

    for (scored, explanation) in explainer.recommend_explained(&ctx, user, 3) {
        let movie = world.catalog.get(scored.item).expect("catalog item");
        println!("▶ {} — predicted {}", movie.title, scored.prediction);
        println!("{}", PlainRenderer.render(&explanation));
    }

    // 4. The same recommender can justify itself through any compatible
    //    interface — explanation content is decoupled from the algorithm.
    let mut explainer = explainer;
    explainer.set_interface(InterfaceId::CanonicalCollaborative);
    if let Some((scored, explanation)) = explainer
        .recommend_explained(&ctx, user, 1)
        .into_iter()
        .next()
    {
        let movie = world.catalog.get(scored.item).expect("catalog item");
        println!("one-liner for \"{}\":", movie.title);
        println!("{}", PlainRenderer.render(&explanation));
    }
}

//! Camera shop: Qwikshop-style conversational critiquing with dynamic
//! compound critiques and a structured trade-off overview.
//!
//! ```text
//! cargo run --example camera_shop
//! ```

use exrec::algo::knowledge::{Constraint, Maut, Requirement};
use exrec::interact::critiquing::{CritiqueOutcome, CritiqueSession};
use exrec::prelude::*;
use exrec::present::structured::{build_overview, OverviewConfig};

fn main() {
    let world = exrec::data::synth::cameras::generate(&WorldConfig {
        n_items: 60,
        n_users: 5,
        ..WorldConfig::default()
    });
    let ctx = Ctx::new(&world.ratings, &world.catalog);

    let maut = Maut::new(vec![
        Requirement::soft("price", Constraint::AtMost(450.0)).with_weight(2.0),
        Requirement::soft("resolution", Constraint::AtLeast(8.0)),
        Requirement::soft("zoom", Constraint::AtLeast(5.0)),
    ])
    .expect("valid requirements");

    // The structured overview: best match + titled trade-off categories
    // (Pu & Chen, survey Section 4.5).
    let overview = build_overview(&maut, &ctx, &OverviewConfig::default())
        .expect("camera world yields an overview");
    println!("{}", overview.render_plain(&ctx));

    // A conversational session: the shopper keeps asking for cheaper
    // cameras until the pool pushes back with a repair action.
    println!("\n--- conversational critiquing ---");
    let (mut session, mut screen) =
        CritiqueSession::start(maut, &ctx, OverviewConfig::default()).expect("session starts");
    for round in 0..6 {
        let current = world.catalog.get(screen.current.item).unwrap();
        println!(
            "\ncycle {}: showing \"{}\" (${})",
            screen.cycle,
            current.title,
            current.attrs.num("price").unwrap_or_default()
        );
        for (k, (_, title)) in screen.options.iter().enumerate() {
            println!("  option {}: {}", k + 1, title);
        }
        let Some((critique, title)) = screen.options.first().cloned() else {
            println!("no further critiques available");
            break;
        };
        println!("shopper picks: {title}");
        match session
            .apply_compound(&ctx, screen.current.item, &critique)
            .expect("critique applies")
        {
            CritiqueOutcome::Continue(next) => screen = next,
            CritiqueOutcome::Repaired {
                relaxed,
                screen: next,
            } => {
                println!(
                    "(no camera satisfies that — relaxed your \"{relaxed}\" requirement instead)"
                );
                screen = next;
            }
        }
        if round == 5 {
            println!(
                "\nshopper settles after {} cycles ({} ticks of effort)",
                session.cycles(),
                session.elapsed().ticks()
            );
        }
    }
}

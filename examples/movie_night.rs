//! Movie night: the MovieLens-style pipeline, all 21 explanation
//! interfaces side by side, and the recommender-personality lens.
//!
//! ```text
//! cargo run --example movie_night
//! ```

use exrec::core::interfaces::ExplainInput;
use exrec::core::personality::{Personality, PersonalityLens};
use exrec::prelude::*;

fn main() {
    let world = exrec::data::synth::movies::generate(&WorldConfig {
        n_users: 80,
        n_items: 60,
        density: 0.25,
        ..WorldConfig::default()
    });
    let ctx = Ctx::new(&world.ratings, &world.catalog);
    let knn = UserKnn::default();
    let user = world
        .ratings
        .users()
        .find(|&u| world.ratings.user_ratings(u).len() >= 8)
        .expect("active user");

    let scored = knn
        .recommend(&ctx, user, 1)
        .into_iter()
        .next()
        .expect("a recommendation");
    let movie = world.catalog.get(scored.item).unwrap();
    println!(
        "tonight's pick for {user}: \"{}\" (predicted {})\n",
        movie.title, scored.prediction
    );

    // Every interface that can run on collaborative evidence, in catalog
    // order. Interfaces whose evidence needs aren't met are reported.
    let evidence = knn.evidence(&ctx, user, scored.item).unwrap();
    let input = ExplainInput {
        ctx: &ctx,
        user,
        item: scored.item,
        prediction: scored.prediction,
        evidence: &evidence,
    };
    for id in InterfaceId::ALL {
        println!("── {} ──", id);
        match id.generate(&input) {
            Ok(explanation) if explanation.fragments.is_empty() => {
                println!("(control: no explanation shown)\n");
            }
            Ok(explanation) => println!("{}", PlainRenderer.render(&explanation)),
            Err(e) => println!("(not applicable here: {e})\n"),
        }
    }

    // Personality: the same algorithm, angled (survey Section 4.6).
    println!("personality lens on the same prediction:");
    for personality in Personality::ALL {
        let lens = PersonalityLens::new(UserKnn::default(), personality);
        let p = lens.predict(&ctx, user, scored.item).unwrap();
        println!(
            "  {:>13}: {:.2}{}",
            personality.name(),
            p.score,
            if personality.discloses_confidence() {
                format!(" — and admits it is {}", p.confidence.label())
            } else {
                String::new()
            }
        );
    }
}

//! Book club: LIBRA-style naive-Bayes recommendations with the influence
//! explanation of the survey's Figure 3, plus the generic leave-one-out
//! influence path that works for *any* recommender.
//!
//! ```text
//! cargo run --example book_club
//! ```

use exrec::algo::content::NaiveBayesModel;
use exrec::core::influence::loo_influences;
use exrec::prelude::*;

fn main() {
    let world = exrec::data::synth::books::generate(&WorldConfig {
        n_users: 50,
        n_items: 60,
        density: 0.3,
        ..WorldConfig::default()
    });
    let ctx = Ctx::new(&world.ratings, &world.catalog);

    let model = NaiveBayesModel::default();
    let user = world
        .ratings
        .users()
        .find(|&u| world.ratings.user_ratings(u).len() >= 6)
        .expect("an established reader");

    println!("reader {user}'s shelf:");
    for &(item, rating) in world.ratings.user_ratings(user) {
        let book = world.catalog.get(item).unwrap();
        println!(
            "  {:.0}★ \"{}\" by {}",
            rating,
            book.title,
            book.attrs.cat("author").unwrap_or("?")
        );
    }

    // Figure 3: which past ratings drove the recommendation, with bars.
    let explainer = Explainer::new(&model, InterfaceId::InfluenceList);
    println!("\nrecommendations with influence explanations (Figure 3):\n");
    for (scored, explanation) in explainer.recommend_explained(&ctx, user, 2) {
        let book = world.catalog.get(scored.item).unwrap();
        println!(
            "▶ \"{}\" by {} — predicted {:.1}",
            book.title,
            book.attrs.cat("author").unwrap_or("?"),
            scored.prediction.score
        );
        println!("{}", PlainRenderer.render(&explanation));
    }

    // The same influence question answered for a *collaborative* model
    // via exact leave-one-out retraining — algorithm-agnostic.
    let knn = UserKnn::default();
    if let Some(target) = knn.recommend(&ctx, user, 1).first().map(|s| s.item) {
        println!(
            "leave-one-out influence on the user-kNN pick \"{}\":",
            world.catalog.get(target).unwrap().title
        );
        let influences = loo_influences(&knn, &world.ratings, &world.catalog, user, target)
            .expect("influences computable");
        for inf in influences.iter().take(5) {
            println!(
                "  {:>4.0}% — \"{}\" (your {:.0}★)",
                inf.share * 100.0,
                world.catalog.get(inf.item).unwrap().title,
                inf.user_rating
            );
        }
    }
}

//! Systems gallery: regenerates the survey's Tables 1–4 and runs every
//! Table 4 system as a live emulation.
//!
//! ```text
//! cargo run --example systems_gallery
//! ```

use exrec::registry::{live, tables};

fn main() {
    println!("{}", tables::table1().render_ascii());
    println!("{}", tables::table2().render_ascii());
    println!("{}", tables::table3().render_ascii());
    println!("{}", tables::table4().render_ascii());

    println!("\nlive emulations of every Table 4 row:\n");
    for emulation in live::all() {
        println!("══════ {} ══════", emulation.name);
        match (emulation.run)(0x6A11E47) {
            Ok(transcript) => println!("{transcript}"),
            Err(e) => println!("FAILED: {e}"),
        }
    }
}

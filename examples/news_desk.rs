//! News desk: the survey's running football/technology example — a
//! preference-based news stream with opinion feedback, the treemap
//! overview of Figure 2, and faceted browsing.
//!
//! ```text
//! cargo run --example news_desk
//! ```

use exrec::algo::content::{TfIdfConfig, TfIdfModel};
use exrec::interact::opinions::Opinion;
use exrec::interact::session::{RecommendationSession, SessionStyle};
use exrec::prelude::*;
use exrec::present::facets::FacetBrowser;
use exrec::present::treemap::{layout, Layout, Rect, TreemapNode};

fn main() {
    let world = exrec::data::synth::news::generate(&WorldConfig {
        n_users: 40,
        n_items: 50,
        density: 0.3,
        ..WorldConfig::default()
    });

    // --- Figure 2: the treemap front page -----------------------------
    let nodes: Vec<TreemapNode> = world
        .catalog
        .iter()
        .map(|it| TreemapNode {
            label: it.title.clone(),
            weight: it.attrs.num("popularity").unwrap_or(1.0).max(1.0),
            group: world.prototypes[it.id.index()],
            shade: it.attrs.num("recency").unwrap_or(50.0) / 100.0,
        })
        .collect();
    let map = layout(nodes, Rect::UNIT, Layout::Squarified);
    println!("front page (treemap: letter=story, area=importance):\n");
    println!("{}", map.render_ascii(68, 16));

    // --- Faceted browsing (Section 4.5) -------------------------------
    let mut facets = FacetBrowser::new(&world.catalog);
    facets.select("topic", "sport");
    println!("sport desk — subtopic counts:");
    for v in facets.values("subtopic") {
        println!("  {:10} {}", v.value, v.count);
    }

    // --- The running example: a football fan's session ----------------
    let mut ratings = world.ratings.clone();
    let model = TfIdfModel::fit(&Ctx::new(&ratings, &world.catalog), TfIdfConfig::default())
        .expect("news world fits");
    let user = ratings
        .users()
        .find(|&u| ratings.user_ratings(u).len() >= 5)
        .expect("active reader");
    let mut session = RecommendationSession::new(
        &mut ratings,
        &world.catalog,
        &model,
        user,
        SessionStyle::Conversational,
        InterfaceId::TopicProfile,
    );

    println!("\nreader {user}'s stream:");
    let recs = session.recommend(3);
    for s in &recs {
        println!("  - {}", world.catalog.get(s.item).unwrap().title);
    }

    // The Section 4.2 group explanation: what ties the list together.
    {
        let ctx2 = Ctx::new(&world.ratings, &world.catalog);
        let items: Vec<ItemId> = recs.iter().map(|s| s.item).collect();
        if let Ok(group) = exrec::core::group::group_explanation(&ctx2, user, &items) {
            println!("\nwhy this list?");
            println!("{}", PlainRenderer.render(&group));
        }
    }
    if let Some(first) = recs.first().copied() {
        let (_, explanation) = session.why(first.item).expect("explainable");
        println!("\nwhy the top story?");
        println!("{}", PlainRenderer.render(&explanation));

        // "I already know this!" then "Surprise me!"
        session.opine(first.item, Opinion::AlreadyKnow).unwrap();
        session.opine(first.item, Opinion::SurpriseMe).unwrap();
        session.opine(first.item, Opinion::SurpriseMe).unwrap();
        println!("after 'I already know this!' + 'Surprise me!':");
        for s in session.recommend(3) {
            println!("  - {}", world.catalog.get(s.item).unwrap().title);
        }
    }
    println!(
        "\nsession: {} interactions, {} ticks",
        session.interactions(),
        session.elapsed().ticks()
    );
}

//! Telemetry: watch the pipeline explain itself.
//!
//! ```text
//! cargo run --example telemetry
//! ```
//!
//! Wraps two recommenders in [`InstrumentedRecommender`], attaches a
//! telemetry handle to the [`Explainer`], runs the pipeline — including
//! one deliberately mismatched model/interface pair that aborts with
//! `MissingEvidence` — and prints the resulting [`MetricsReport`] both
//! as an ASCII table and as JSON, plus a sample of the structured span
//! events a [`JsonLinesSubscriber`] captures.

use std::sync::Arc;

use exrec::obs::{JsonLinesSubscriber, Metrics, Subscriber, Telemetry};
use exrec::prelude::*;

fn main() {
    // One registry for the whole run, with a JSON-lines subscriber
    // collecting span events into an in-memory buffer.
    let spans = Arc::new(JsonLinesSubscriber::new(Vec::new()));
    let obs = Telemetry::new(
        Arc::new(Metrics::new()),
        Arc::clone(&spans) as Arc<dyn Subscriber>,
    );

    let world = exrec::data::synth::movies::generate(&WorldConfig {
        n_users: 60,
        n_items: 60,
        ..WorldConfig::default()
    });
    let ctx = Ctx::new(&world.ratings, &world.catalog);

    // Every model call is counted and timed under `algo.*.<model>`.
    let knn = InstrumentedRecommender::new(UserKnn::default(), &obs);
    let pop = InstrumentedRecommender::new(exrec::algo::baseline::Popularity::default(), &obs);

    let users: Vec<UserId> = world
        .ratings
        .users()
        .filter(|&u| world.ratings.user_ratings(u).len() >= 5)
        .take(10)
        .collect();

    // A well-matched pairing: kNN evidence feeds the survey's
    // best-performing interface. Fires under `explain.fired.*`.
    let explainer =
        Explainer::new(&knn, InterfaceId::ClusteredHistogram).with_telemetry(obs.clone());
    let mut explained = 0;
    for &user in &users {
        explained += explainer.recommend_explained(&ctx, user, 3).len();
    }

    // Exercise the per-pair path too, so `algo.predict_ns` fills in.
    let items: Vec<ItemId> = world.catalog.ids().take(20).collect();
    let mut predictions = 0;
    for &user in &users {
        for &item in &items {
            predictions += usize::from(knn.predict(&ctx, user, item).is_ok());
        }
    }

    // A deliberately mismatched pairing: popularity evidence cannot
    // feed a neighbour histogram, so every attempt aborts and the
    // `explain.abort.missing_evidence` counter climbs.
    let mismatched = Explainer::new(&pop, InterfaceId::Histogram).with_telemetry(obs.clone());
    let mut aborted = 0;
    for &user in &users {
        let item = items[0];
        aborted += usize::from(mismatched.explain(&ctx, user, item).is_err());
    }

    println!(
        "{} explanations fired, {predictions} predictions scored, {aborted} aborts provoked\n",
        explained
    );

    // The snapshot, human-readable…
    let report = obs.report();
    println!("{}", report.render_ascii());

    // …and machine-readable (the same struct serializes with serde).
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    println!("-- MetricsReport as JSON ({} bytes) --", json.len());
    println!("{json}\n");

    // The subscriber saw every span as a structured event.
    let lines = String::from_utf8(spans.snapshot()).expect("utf-8 span log");
    let total = lines.lines().count();
    println!("-- first 3 of {total} span events --");
    for line in lines.lines().take(3) {
        println!("{line}");
    }
}

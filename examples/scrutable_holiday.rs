//! Scrutable holiday: the SASY scenario of the survey's Figure 1, plus
//! the TiVo / Mr. Iwanyk correction story from its introduction.
//!
//! ```text
//! cargo run --example scrutable_holiday
//! ```

use exrec::algo::baseline::Popularity;
use exrec::core::provenance::ProfileFact;
use exrec::interact::profile::{RuleEffect, ScrutableProfile};
use exrec::prelude::*;

fn main() {
    let world = exrec::data::synth::holidays::generate(&WorldConfig {
        n_items: 40,
        n_users: 10,
        density: 0.2,
        ..WorldConfig::default()
    });
    let ctx = Ctx::new(&world.ratings, &world.catalog);
    let model = Popularity::default();
    let user = UserId::new(0);

    // A profile mixing volunteered and inferred beliefs, Figure 1 style.
    let mut profile = ScrutableProfile::new();
    profile.set_fact(ProfileFact::volunteered(
        "travel_party",
        "family with children",
    ));
    profile.set_fact(ProfileFact::inferred(
        "budget_band",
        "premium",
        "your last three bookings were above $2000",
    ));
    profile.infer_rule(
        "style",
        "ski",
        RuleEffect::Bias(3.0),
        "you viewed 5 ski holidays last week",
    );

    println!("your scrutable profile:\n");
    println!("{}", profile.render_scrutable());

    let ranked = profile.apply(&world.catalog, model.recommend(&ctx, user, usize::MAX));
    println!("suggestions under this profile:");
    for s in ranked.iter().take(3) {
        let h = world.catalog.get(s.item).unwrap();
        println!(
            "  - {} ({}, ${})",
            h.title,
            h.attrs.cat("style").unwrap_or("?"),
            h.attrs.num("price").unwrap_or_default()
        );
    }

    // Why is the top one here? The rules that fired are the answer.
    if let Some(top) = ranked.first() {
        let fired = profile.why(&world.catalog, top.item);
        if !fired.is_empty() {
            println!("\nwhy the top suggestion?");
            for rule in fired {
                println!("  because of your rule: {}", rule.describe());
            }
        }
    }

    // The Mr. Iwanyk move: the inference was wrong; scrutinize and fix.
    println!("\nyou: \"the ski thing was research for a friend — stop it.\"");
    profile.remove_rules("style", "ski");
    profile.block("style", "ski");
    profile.correct_fact("budget_band", "mid-range");

    println!("\ncorrected profile:\n");
    println!("{}", profile.render_scrutable());
    println!("suggestions after correction:");
    for s in profile
        .apply(&world.catalog, model.recommend(&ctx, user, usize::MAX))
        .iter()
        .take(3)
    {
        let h = world.catalog.get(s.item).unwrap();
        println!("  - {} ({})", h.title, h.attrs.cat("style").unwrap_or("?"));
    }
}

//! # exrec — an explanation-aware recommender-systems toolkit
//!
//! `exrec` reproduces, as a working system, the framework of
//! **Tintarev & Masthoff, *A Survey of Explanations in Recommender
//! Systems* (WPRSIUI @ ICDE 2007)**: the seven aims an explanation can
//! pursue, the three explanation-content styles, the presentation and
//! interaction taxonomies, and the per-aim evaluation methodology —
//! each as executable code rather than prose.
//!
//! This crate is the facade: it re-exports the workspace's crates under
//! one roof and hosts the runnable examples and cross-crate integration
//! tests.
//!
//! ## Layout
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`types`] | `exrec-types` | ids, ratings, attributes, schemas, errors |
//! | [`data`] | `exrec-data` | ratings matrix, catalogs, synthetic worlds |
//! | [`algo`] | `exrec-algo` | kNN CF, content models, MAUT, Apriori, metrics |
//! | [`core`] | `exrec-core` | aims, styles, evidence → explanation engine |
//! | [`present`] | `exrec-present` | top-N, structured overview, facets, treemaps |
//! | [`interact`] | `exrec-interact` | critiquing, opinions, scrutable profiles |
//! | [`eval`] | `exrec-eval` | simulated users and the Section 3 studies |
//! | [`registry`] | `exrec-registry` | Tables 1–4 generators + live emulations |
//! | [`obs`] | `exrec-obs` | metrics registry, span tracing, telemetry reports |
//!
//! ## Quickstart
//!
//! ```
//! use exrec::prelude::*;
//!
//! // A synthetic movie world with latent ground truth.
//! let world = exrec::data::synth::movies::generate(&WorldConfig {
//!     n_users: 40,
//!     n_items: 40,
//!     ..WorldConfig::default()
//! });
//! let ctx = Ctx::new(&world.ratings, &world.catalog);
//!
//! // Collaborative filtering + the survey's best-performing interface.
//! let knn = UserKnn::default();
//! let explainer = Explainer::new(&knn, InterfaceId::ClusteredHistogram);
//! let user = world
//!     .ratings
//!     .users()
//!     .find(|&u| world.ratings.user_ratings(u).len() >= 5)
//!     .unwrap();
//! for (scored, explanation) in explainer.recommend_explained(&ctx, user, 3) {
//!     println!(
//!         "{} — {}",
//!         world.catalog.get(scored.item).unwrap().title,
//!         scored.prediction
//!     );
//!     println!("{}", PlainRenderer.render(&explanation));
//! }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use exrec_algo as algo;
pub use exrec_core as core;
pub use exrec_data as data;
pub use exrec_eval as eval;
pub use exrec_interact as interact;
pub use exrec_obs as obs;
pub use exrec_present as present;
pub use exrec_registry as registry;
pub use exrec_types as types;

/// The most common imports in one place.
pub mod prelude {
    pub use exrec_algo::{
        Ctx, InstrumentedRecommender, ModelEvidence, Recommender, Scored, UserKnn,
    };
    pub use exrec_core::engine::Explainer;
    pub use exrec_core::interfaces::InterfaceId;
    pub use exrec_core::render::{PlainRenderer, Render};
    pub use exrec_core::{Aim, AimProfile, Explanation, ExplanationStyle};
    pub use exrec_data::synth::WorldConfig;
    pub use exrec_data::{Catalog, RatingsMatrix, World};
    pub use exrec_obs::{MetricsReport, Telemetry};
    pub use exrec_types::{ItemId, Prediction, Rating, RatingScale, UserId};
}

//! Integration tests for the `/debug/*` introspection surface, the
//! always-on phase profiler and the request flight recorder, over real
//! loopback sockets: gating, profile completeness (phases must account
//! for ≥90% of measured wall time), collapsed-stack export, and flight
//! records surviving the tail sampler's drop decisions.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use exrec_obs::{CountingSubscriber, Subscriber, TailConfig, TailSamplingSubscriber, Telemetry};
use exrec_serve::app::{AppConfig, ExplainApp};
use exrec_serve::proto::{DebugProfileBody, DebugRequestsBody, DebugWorldBody, HealthResponse};
use exrec_serve::server::{self, ServerConfig, ServerHandle};

/// A parsed client-side response.
struct ClientResponse {
    status: u16,
    headers: Vec<(String, String)>,
    body: String,
}

impl ClientResponse {
    fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// A keep-alive test client over one connection.
struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(20)))
            .unwrap();
        Client {
            reader: BufReader::new(stream.try_clone().unwrap()),
            writer: stream,
        }
    }

    fn send(&mut self, method: &str, path: &str, extra_headers: &str, body: Option<&str>) {
        let body = body.unwrap_or("");
        let request = format!(
            "{method} {path} HTTP/1.1\r\nhost: test\r\n{extra_headers}content-length: {}\r\n\r\n{body}",
            body.len(),
        );
        self.writer.write_all(request.as_bytes()).expect("send");
    }

    fn read_response(&mut self) -> Option<ClientResponse> {
        let mut status_line = String::new();
        if self.reader.read_line(&mut status_line).ok()? == 0 {
            return None;
        }
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .expect("status code")
            .parse()
            .expect("numeric status");
        let mut headers = Vec::new();
        let mut content_length = 0usize;
        loop {
            let mut line = String::new();
            self.reader.read_line(&mut line).ok()?;
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            let (name, value) = line.split_once(':').expect("header");
            let (name, value) = (name.trim().to_ascii_lowercase(), value.trim().to_owned());
            if name == "content-length" {
                content_length = value.parse().expect("content-length");
            }
            headers.push((name, value));
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body).ok()?;
        Some(ClientResponse {
            status,
            headers,
            body: String::from_utf8(body).expect("utf-8 body"),
        })
    }

    fn roundtrip(&mut self, method: &str, path: &str, body: Option<&str>) -> ClientResponse {
        self.send(method, path, "", body);
        self.read_response().expect("response")
    }
}

/// One request on a *fresh* connection: the first request on a
/// connection is the one whose wall clock runs from admission, so
/// queue wait and parse time are attributed to its profile.
fn fresh_roundtrip(
    addr: std::net::SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> ClientResponse {
    let mut client = Client::connect(addr);
    client.roundtrip(method, path, body)
}

/// Starts a server over a small world with the given edge tuning.
fn start_server_with_telemetry(
    telemetry: Telemetry,
    configure: impl FnOnce(&mut ServerConfig, &mut AppConfig),
) -> ServerHandle {
    let mut server_config = ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 2,
        queue_bound: 16,
        default_deadline_ms: 10_000,
        max_deadline_ms: 30_000,
        idle_timeout_ms: 5_000,
        ..ServerConfig::default()
    };
    let mut app_config = AppConfig {
        n_users: 60,
        n_items: 40,
        density: 0.3,
        ..AppConfig::default()
    };
    configure(&mut server_config, &mut app_config);
    let app = ExplainApp::new(app_config, telemetry.clone());
    server::start(app, server_config, telemetry).expect("start server")
}

fn start_server(configure: impl FnOnce(&mut ServerConfig, &mut AppConfig)) -> ServerHandle {
    start_server_with_telemetry(Telemetry::default(), configure)
}

#[test]
fn debug_endpoints_are_forbidden_unless_enabled() {
    let handle = start_server(|_, _| {}); // debug_endpoints defaults to off
    let mut client = Client::connect(handle.addr());
    for path in ["/debug/profile", "/debug/requests", "/debug/world"] {
        let response = client.roundtrip("GET", path, None);
        assert_eq!(response.status, 403, "{path} must be gated");
        assert!(
            response.body.contains("debug_disabled"),
            "{path}: {}",
            response.body
        );
    }
    // The routes exist even when gated: wrong method is 405, not 404.
    assert_eq!(
        client
            .roundtrip("POST", "/debug/profile", Some("{}"))
            .status,
        405
    );
    handle.shutdown();
}

#[test]
fn profile_accounts_for_ninety_percent_of_wall_time() {
    let handle = start_server(|server, _| server.debug_endpoints = true);
    let addr = handle.addr();

    // Fresh connections: the first request on a connection has queue
    // wait and parse attributed, so its phases can cover the full
    // admission-to-response wall clock.
    for _ in 0..5 {
        let response = fresh_roundtrip(
            addr,
            "POST",
            "/v1/recommend",
            Some(r#"{"users": [0, 1, 2, 3, 4, 5, 6, 7], "n": 5, "explain": true}"#),
        );
        assert_eq!(response.status, 200);
    }

    let response = fresh_roundtrip(addr, "GET", "/debug/requests", None);
    assert_eq!(response.status, 200);
    let body: DebugRequestsBody = serde_json::from_str(&response.body).unwrap();
    let recommends: Vec<_> = body
        .requests
        .iter()
        .filter(|r| r.route == "recommend")
        .collect();
    assert_eq!(recommends.len(), 5, "all five requests recorded");

    for record in recommends {
        assert!(record.duration_ns > 0);
        // Top-level phases (no `;` in the path): queue_wait, parse,
        // handle. Nested phases are *inside* handle, so summing only
        // the top level avoids double counting.
        let accounted: u64 = record
            .phases
            .iter()
            .filter(|(path, _)| !path.contains(';'))
            .map(|(_, ns)| ns)
            .sum();
        let coverage = accounted as f64 / record.duration_ns as f64;
        assert!(
            coverage >= 0.90,
            "phases cover {:.1}% of {} ns (trace {}): {:?}",
            coverage * 100.0,
            record.duration_ns,
            record.trace_id,
            record.phases,
        );
        // The nested hot path showed up under handle.
        assert!(
            record.phases.iter().any(|(p, _)| p.starts_with("handle;")),
            "handle has sub-phases: {:?}",
            record.phases
        );
    }
    handle.shutdown();
}

#[test]
fn debug_profile_exports_route_tree_and_collapsed_stacks() {
    let handle = start_server(|server, _| server.debug_endpoints = true);
    let addr = handle.addr();
    let mut client = Client::connect(addr);
    for _ in 0..3 {
        let response = client.roundtrip(
            "POST",
            "/v1/recommend",
            Some(r#"{"users": [0, 1], "n": 3, "explain": true}"#),
        );
        assert_eq!(response.status, 200);
    }

    // JSON shape: hierarchical per-route tree with self-time.
    let response = client.roundtrip("GET", "/debug/profile", None);
    assert_eq!(response.status, 200);
    assert!(response
        .header("content-type")
        .is_some_and(|ct| ct.starts_with("application/json")));
    let profile: DebugProfileBody = serde_json::from_str(&response.body).unwrap();
    let recommend = profile
        .routes
        .iter()
        .find(|r| r.name == "recommend")
        .expect("recommend route profiled");
    assert_eq!(recommend.calls, 3);
    assert!(recommend.total_ns > 0);
    let handle_phase = recommend
        .children
        .iter()
        .find(|c| c.name == "handle")
        .expect("handle phase under recommend");
    assert!(
        handle_phase.children.iter().any(|c| c.name == "scan"),
        "similarity scan profiled under handle: {:?}",
        handle_phase
            .children
            .iter()
            .map(|c| &c.name)
            .collect::<Vec<_>>()
    );
    // Self time never exceeds total time, at every level.
    fn check(node: &exrec_obs::PhaseSnapshot) {
        assert!(node.self_ns <= node.total_ns, "{}: self > total", node.name);
        node.children.iter().for_each(check);
    }
    profile.routes.iter().for_each(check);

    // Collapsed-stack export: `route;phase;subphase self_ns` per line.
    let mut client = Client::connect(addr);
    client.send("GET", "/debug/profile", "accept: text/plain\r\n", None);
    let response = client.read_response().expect("collapsed response");
    assert_eq!(response.status, 200);
    assert!(response
        .header("content-type")
        .is_some_and(|ct| ct.starts_with("text/plain")));
    let lines: Vec<&str> = response.body.lines().filter(|l| !l.is_empty()).collect();
    assert!(!lines.is_empty(), "collapsed output has frames");
    for line in &lines {
        let (stack, value) = line.rsplit_once(' ').expect("`stack value` shape");
        assert!(!stack.is_empty());
        value
            .parse::<u64>()
            .unwrap_or_else(|_| panic!("numeric self-ns in {line:?}"));
    }
    assert!(
        lines.iter().any(|l| l.starts_with("recommend;")),
        "recommend frames present: {lines:?}"
    );
    handle.shutdown();
}

#[test]
fn flight_records_survive_tail_sampler_drop() {
    // A tail sampler that drops everything: nothing is slow enough to
    // flush and head sampling is off. The flight recorder must retain
    // the requests anyway — that is its reason to exist.
    let sink = Arc::new(CountingSubscriber::new());
    let tail = TailSamplingSubscriber::new(
        Arc::clone(&sink) as Arc<dyn Subscriber>,
        TailConfig {
            slow_threshold_ns: u64::MAX,
            head_sample_every: 0,
            ..TailConfig::default()
        },
    );
    let telemetry = Telemetry::with_subscriber(Arc::new(tail));
    let handle = start_server_with_telemetry(telemetry, |server, _| server.debug_endpoints = true);
    let addr = handle.addr();

    let mut client = Client::connect(addr);
    for _ in 0..4 {
        let response = client.roundtrip("POST", "/v1/recommend", Some(r#"{"users": [0], "n": 2}"#));
        assert_eq!(response.status, 200);
    }

    // The sampler dropped every trace…
    assert!(
        sink.events().is_empty(),
        "fast clean traces should have been dropped by the tail sampler"
    );
    // …but the flight recorder kept every request, untorn.
    let response = client.roundtrip("GET", "/debug/requests", None);
    assert_eq!(response.status, 200);
    let body: DebugRequestsBody = serde_json::from_str(&response.body).unwrap();
    let recommends: Vec<_> = body
        .requests
        .iter()
        .filter(|r| r.route == "recommend")
        .collect();
    assert_eq!(recommends.len(), 4);
    for record in recommends {
        assert_eq!(record.status, 200);
        assert_eq!(record.outcome, "ok");
        assert!(!record.trace_id.is_empty(), "trace id retained after drop");
        assert!(record.duration_ns > 0);
    }
    // The in-process view agrees with the HTTP view.
    assert!(handle.flight().recorded() >= 4);
    handle.shutdown();
}

#[test]
fn debug_world_and_healthz_expose_world_shape_and_cache() {
    let handle = start_server(|server, _| server.debug_endpoints = true);
    let mut client = Client::connect(handle.addr());

    // Drive traffic so the scan engine's counters move. (The per-pair
    // similarity cache stays configured but idle: the kernel computes
    // similarities directly — see docs/kernels.md.)
    for _ in 0..2 {
        let response = client.roundtrip(
            "POST",
            "/v1/recommend",
            Some(r#"{"users": [0, 1, 2], "n": 3}"#),
        );
        assert_eq!(response.status, 200);
    }

    let response = client.roundtrip("GET", "/debug/world", None);
    assert_eq!(response.status, 200);
    let world: DebugWorldBody = serde_json::from_str(&response.body).unwrap();
    assert_eq!(world.users, 60);
    assert_eq!(world.items, 40);
    assert!(world.ratings > 0);
    assert_eq!(world.model, "user-knn");
    assert_eq!(world.workers, 2);
    assert_eq!(world.queue_capacity, 16);
    assert!(world.pool_threads > 0);
    let cache = world.cache.expect("similarity cache attached");
    assert!(cache.capacity > 0);
    assert!((0.0..=1.0).contains(&cache.occupancy));
    assert!((0.0..=1.0).contains(&cache.hit_ratio));
    let scan = world.scan.expect("scan engine attached");
    assert_eq!(scan.mode, "pruned");
    assert!(scan.csr_builds >= 1, "traffic built the CSR snapshot");
    assert!(scan.tile_users.is_some(), "autotuner picked a tile");
    // A 60-user world is far below the pruned fallback floor, so every
    // scan ran exact — and says so.
    assert!(scan.exact_scans > 0, "traffic moved the scan engine");
    assert!(scan.exact_fallbacks > 0, "tiny world falls back to exact");
    assert_eq!(scan.pruned_scans, 0);
    assert!((0.0..=1.0).contains(&scan.prune_ratio));

    // The same cache block rides along on /healthz (not debug-gated).
    let response = client.roundtrip("GET", "/healthz", None);
    assert_eq!(response.status, 200);
    let health: HealthResponse = serde_json::from_str(&response.body).unwrap();
    let cache = health.cache.expect("cache stats in healthz");
    assert!(cache.capacity > 0);
    handle.shutdown();
}

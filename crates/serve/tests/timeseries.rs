//! Integration tests for the continuous-telemetry surface over real
//! loopback sockets: the cooperative time-series sampler retaining
//! windowed per-interval digests, the anomaly watchdog latching exactly
//! one incident for an induced regression, and the build/incident
//! blocks folded into `/healthz` and `/debug/world`.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use exrec_obs::{Telemetry, TsSnapshot};
use exrec_serve::app::{AppConfig, ExplainApp};
use exrec_serve::proto::{DebugIncidentsBody, DebugWorldBody, HealthResponse};
use exrec_serve::server::{self, ServerConfig, ServerHandle};

/// A parsed client-side response.
struct ClientResponse {
    status: u16,
    body: String,
}

/// A keep-alive test client over one connection.
struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(20)))
            .unwrap();
        Client {
            reader: BufReader::new(stream.try_clone().unwrap()),
            writer: stream,
        }
    }

    fn roundtrip(&mut self, method: &str, path: &str, body: Option<&str>) -> ClientResponse {
        let body = body.unwrap_or("");
        let request = format!(
            "{method} {path} HTTP/1.1\r\nhost: test\r\ncontent-length: {}\r\n\r\n{body}",
            body.len(),
        );
        self.writer.write_all(request.as_bytes()).expect("send");
        let mut status_line = String::new();
        self.reader.read_line(&mut status_line).expect("status");
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .expect("status code")
            .parse()
            .expect("numeric status");
        let mut content_length = 0usize;
        loop {
            let mut line = String::new();
            self.reader.read_line(&mut line).expect("header");
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            if let Some((name, value)) = line.split_once(':') {
                if name.trim().eq_ignore_ascii_case("content-length") {
                    content_length = value.trim().parse().expect("content-length");
                }
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body).expect("body");
        ClientResponse {
            status,
            body: String::from_utf8(body).expect("utf-8 body"),
        }
    }
}

/// Starts a server over a small world with a fast sampler tick and the
/// debug surface on.
fn start_server(configure: impl FnOnce(&mut ServerConfig, &mut AppConfig)) -> ServerHandle {
    let mut server_config = ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 2,
        queue_bound: 32,
        default_deadline_ms: 10_000,
        max_deadline_ms: 30_000,
        idle_timeout_ms: 5_000,
        debug_endpoints: true,
        ..ServerConfig::default()
    };
    server_config.ts.interval_ns = 25_000_000; // 25ms ticks
    server_config.ts.retention = 256;
    let mut app_config = AppConfig {
        n_users: 60,
        n_items: 40,
        density: 0.3,
        ..AppConfig::default()
    };
    configure(&mut server_config, &mut app_config);
    let app = ExplainApp::new(app_config, Telemetry::default());
    server::start(app, server_config, Telemetry::default()).expect("start server")
}

/// Neuters every watchdog rule that ambient test traffic could trip,
/// so a test can arm exactly the rule it intends to regress.
fn disarm_watchdog(server: &mut ServerConfig) {
    server.watch.latency_zscore = 1e12;
    server.watch.error_rate_max = f64::INFINITY;
    server.watch.shed_rate_max = f64::INFINITY;
    server.watch.quality_min = -1.0;
    server.watch.hit_ratio_min = -1.0;
    server.watch.revision_lag_max = f64::INFINITY;
    server.watch.prune_ratio_min = -1.0;
    // The SLO external path never arms with a zero target.
    server.slo.target = 0.0;
}

#[test]
fn sampler_retains_windowed_digests_under_steady_traffic() {
    let handle = start_server(|server, app| {
        disarm_watchdog(server);
        app.quality_sample_every = 0;
    });
    let mut client = Client::connect(handle.addr());

    // ~1.2s of steady traffic across ≥40 25ms tick windows; every
    // request drives the cooperative sampler from `record()`.
    let deadline = Instant::now() + Duration::from_millis(1_200);
    let mut requests = 0u64;
    while Instant::now() < deadline {
        let response = client.roundtrip("POST", "/v1/recommend", Some(r#"{"users": [3], "n": 4}"#));
        assert_eq!(response.status, 200);
        requests += 1;
        std::thread::sleep(Duration::from_millis(2));
    }

    let snap: TsSnapshot = {
        let response = client.roundtrip("GET", "/debug/timeseries", None);
        assert_eq!(response.status, 200);
        serde_json::from_str(&response.body).expect("timeseries body")
    };
    assert!(snap.ticks >= 30, "only {} ticks in 1.2s", snap.ticks);
    assert_eq!(snap.interval_ns, 25_000_000);

    // Tracked families each retain ≥30 per-interval samples.
    let accepted = &snap.counters["serve.accepted"];
    assert!(accepted.len() >= 30, "{} rate points", accepted.len());
    let latency = &snap.histograms["serve.latency_ns.recommend"];
    assert!(latency.len() >= 30, "{} latency points", latency.len());

    // Windowed, not cumulative: per-interval counts must be fractions
    // of the total, quantiles ordered, and deltas conserve the total.
    let mut windowed_total = 0u64;
    for point in latency {
        assert!(point.count < requests, "cumulative leak: {point:?}");
        assert!(point.p50_ns <= point.p95_ns && point.p95_ns <= point.p99_ns);
        windowed_total += point.count;
    }
    assert!(windowed_total > 0 && windowed_total <= requests);
    assert!(latency.iter().any(|p| p.count > 0));
    let accepted_total: u64 = accepted.iter().map(|p| p.delta).sum();
    assert!(accepted_total <= requests + 8); // + debug/health requests
    for pair in accepted.windows(2) {
        assert!(pair[0].epoch < pair[1].epoch, "epochs must increase");
    }

    handle.shutdown();
}

#[test]
fn induced_error_burst_latches_exactly_one_incident() {
    let handle = start_server(|server, app| {
        disarm_watchdog(server);
        app.fault_injection = true;
        app.quality_sample_every = 0;
        // Re-arm only the 5xx-rate rule; an effectively-infinite clear
        // threshold keeps the incident latched for the assertions.
        server.watch.error_rate_max = 0.5;
        server.watch.trip_after = 2;
        server.watch.clear_after = 1_000_000;
    });
    let mut client = Client::connect(handle.addr());

    // Warm up with clean traffic over a few ticks.
    for _ in 0..20 {
        let response = client.roundtrip("POST", "/v1/recommend", Some(r#"{"users": [1], "n": 2}"#));
        assert_eq!(response.status, 200);
        std::thread::sleep(Duration::from_millis(3));
    }

    // The regression: a panic burst spanning several 25ms tick windows.
    let burst_start_ns = exrec_obs::trace::process_offset_ns();
    let burst_deadline = Instant::now() + Duration::from_millis(300);
    while Instant::now() < burst_deadline {
        let response = client.roundtrip(
            "POST",
            "/v1/recommend",
            Some(r#"{"users": [1], "inject_panic": true}"#),
        );
        assert_eq!(response.status, 500);
        std::thread::sleep(Duration::from_millis(3));
    }
    let burst_end_ns = exrec_obs::trace::process_offset_ns();

    // Clean traffic afterwards: the latch must hold (clear_after is
    // effectively infinite), and no second incident may open.
    for _ in 0..30 {
        let response = client.roundtrip("POST", "/v1/recommend", Some(r#"{"users": [1], "n": 2}"#));
        assert_eq!(response.status, 200);
        std::thread::sleep(Duration::from_millis(3));
    }

    let incidents: DebugIncidentsBody = {
        let response = client.roundtrip("GET", "/debug/incidents", None);
        assert_eq!(response.status, 200);
        serde_json::from_str(&response.body).expect("incidents body")
    };
    assert_eq!(incidents.opened, 1, "{:?}", incidents.incidents);
    assert_eq!(incidents.active, 1);
    assert_eq!(incidents.flight_dumps, 1, "flight dump must fire once");
    let incident = &incidents.incidents[0];
    assert_eq!(incident.rule, "error_rate");
    assert_eq!(incident.kind, "above");
    assert!(incident.closed_epoch.is_none(), "latch must hold");
    assert!(
        incident.opened_offset_ns >= burst_start_ns && incident.opened_offset_ns <= burst_end_ns,
        "incident at t+{}ns outside burst [{burst_start_ns}, {burst_end_ns}]",
        incident.opened_offset_ns
    );

    // The standing incident degrades /healthz.
    let health: HealthResponse = {
        let response = client.roundtrip("GET", "/healthz", None);
        serde_json::from_str(&response.body).expect("health body")
    };
    assert_eq!(health.status, "degraded");
    let standing = health.incidents.expect("incident standing");
    assert_eq!(standing.active, 1);
    assert_eq!(standing.flight_dumps, 1);
    assert_eq!(standing.last_rule.as_deref(), Some("error_rate"));

    handle.shutdown();
}

#[test]
fn build_info_reports_schemas_in_health_and_world() {
    let handle = start_server(|server, app| {
        disarm_watchdog(server);
        app.quality_sample_every = 0;
    });
    let mut client = Client::connect(handle.addr());

    let health: HealthResponse = {
        let response = client.roundtrip("GET", "/healthz", None);
        assert_eq!(response.status, 200);
        serde_json::from_str(&response.body).expect("health body")
    };
    let build = health.build.expect("build info in /healthz");
    assert!(!build.git_rev.is_empty());
    assert!(build.world.contains('x'), "world {:?}", build.world);
    assert_eq!(build.flight_schema, exrec_obs::flight::RECORD_SCHEMA);
    assert_eq!(build.ts_schema, exrec_obs::timeseries::TS_SCHEMA);
    assert_eq!(build.watch_schema, exrec_obs::watch::WATCH_SCHEMA);

    let world: DebugWorldBody = {
        let response = client.roundtrip("GET", "/debug/world", None);
        assert_eq!(response.status, 200);
        serde_json::from_str(&response.body).expect("world body")
    };
    let world_build = world.build.expect("build info in /debug/world");
    assert_eq!(world_build.git_rev, build.git_rev);
    assert_eq!(world_build.threads, 2);

    handle.shutdown();
}

//! Integration tests for the explanation-quality surface: measured
//! aim-fit interface selection over HTTP (`?aim=` / body `aim`), the
//! gated `GET /debug/quality` endpoint, `quality.*` metric families in
//! the Prometheus exposition, quality standing in `/healthz`, sampled
//! quality scores riding along in flight records, and the online
//! estimator agreeing with the offline fidelity measurement on the
//! same world.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use exrec_obs::Telemetry;
use exrec_serve::app::{AppConfig, Deadline, ExplainApp};
use exrec_serve::proto::{
    DebugQualityBody, DebugRequestsBody, ExplainRequest, ExplainResponse, HealthResponse,
};
use exrec_serve::server::{self, ServerConfig, ServerHandle};

/// A parsed client-side response.
struct ClientResponse {
    status: u16,
    body: String,
}

/// A keep-alive test client over one connection.
struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(20)))
            .unwrap();
        Client {
            reader: BufReader::new(stream.try_clone().unwrap()),
            writer: stream,
        }
    }

    fn send(&mut self, method: &str, path: &str, extra_headers: &str, body: Option<&str>) {
        let body = body.unwrap_or("");
        let request = format!(
            "{method} {path} HTTP/1.1\r\nhost: test\r\n{extra_headers}content-length: {}\r\n\r\n{body}",
            body.len(),
        );
        self.writer.write_all(request.as_bytes()).expect("send");
    }

    fn read_response(&mut self) -> Option<ClientResponse> {
        let mut status_line = String::new();
        if self.reader.read_line(&mut status_line).ok()? == 0 {
            return None;
        }
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .expect("status code")
            .parse()
            .expect("numeric status");
        let mut content_length = 0usize;
        loop {
            let mut line = String::new();
            self.reader.read_line(&mut line).ok()?;
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            let (name, value) = line.split_once(':').expect("header");
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().expect("content-length");
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body).ok()?;
        Some(ClientResponse {
            status,
            body: String::from_utf8(body).expect("utf-8 body"),
        })
    }

    fn roundtrip(&mut self, method: &str, path: &str, body: Option<&str>) -> ClientResponse {
        self.send(method, path, "", body);
        self.read_response().expect("response")
    }
}

/// Starts a server over a small world with the given edge tuning.
fn start_server(configure: impl FnOnce(&mut ServerConfig, &mut AppConfig)) -> ServerHandle {
    let mut server_config = ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 2,
        queue_bound: 16,
        default_deadline_ms: 10_000,
        max_deadline_ms: 30_000,
        ..ServerConfig::default()
    };
    let mut app_config = AppConfig {
        n_users: 60,
        n_items: 40,
        density: 0.3,
        ..AppConfig::default()
    };
    configure(&mut server_config, &mut app_config);
    let telemetry = Telemetry::default();
    let app = ExplainApp::new(app_config, telemetry.clone());
    server::start(app, server_config, telemetry).expect("start server")
}

#[test]
fn debug_quality_is_gated_like_the_other_debug_endpoints() {
    let handle = start_server(|_, _| {}); // debug_endpoints defaults to off
    let mut client = Client::connect(handle.addr());
    let response = client.roundtrip("GET", "/debug/quality", None);
    assert_eq!(response.status, 403);
    assert!(
        response.body.contains("debug_disabled"),
        "{}",
        response.body
    );
    // The route exists even when gated: wrong method is 405, not 404.
    assert_eq!(
        client
            .roundtrip("POST", "/debug/quality", Some("{}"))
            .status,
        405
    );
    handle.shutdown();
}

#[test]
fn aim_fit_selection_beats_the_static_default_over_http() {
    let handle = start_server(|server, _| server.debug_endpoints = true);
    let mut client = Client::connect(handle.addr());

    let response = client.roundtrip("GET", "/debug/quality", None);
    assert_eq!(response.status, 200);
    let body: DebugQualityBody = serde_json::from_str(&response.body).unwrap();
    assert!(
        !body.offline.is_empty(),
        "startup scoring pass seeded the book"
    );
    assert!(
        body.offline.iter().any(|q| q.samples > 0),
        "at least one interface measurable on the served world"
    );
    assert_eq!(body.selection.len(), 7, "one selection row per aim");

    // At least one aim must select a different, strictly
    // higher-scoring interface than the static default (the first
    // catalog interface declaring the aim).
    let improved = body
        .selection
        .iter()
        .find(|row| {
            row.static_default.as_deref() != Some(row.selected.as_str())
                && row.score > row.static_score
        })
        .expect("measured selection beats the static default for some aim");

    // Asking for that aim (body field) returns the measured winner,
    // not the static default.
    let request = format!(r#"{{"user": 0, "item": 1, "aim": "{}"}}"#, improved.aim);
    let response = client.roundtrip("POST", "/v1/explain", Some(&request));
    assert_eq!(response.status, 200, "{}", response.body);
    let explained: ExplainResponse = serde_json::from_str(&response.body).unwrap();
    assert_eq!(explained.explanation.interface, improved.selected);
    assert_eq!(explained.aim.as_deref(), Some(improved.aim.as_str()));

    // `?aim=` on the URL is an equivalent spelling.
    let path = format!("/v1/explain?aim={}", improved.aim);
    let response = client.roundtrip("POST", &path, Some(r#"{"user": 0, "item": 1}"#));
    assert_eq!(response.status, 200, "{}", response.body);
    let explained: ExplainResponse = serde_json::from_str(&response.body).unwrap();
    assert_eq!(explained.explanation.interface, improved.selected);
    assert_eq!(explained.aim.as_deref(), Some(improved.aim.as_str()));

    // An explicit interface always wins over the aim's selection.
    let request = format!(
        r#"{{"user": 0, "item": 1, "aim": "{}", "interface": "item_average"}}"#,
        improved.aim
    );
    let response = client.roundtrip("POST", "/v1/explain", Some(&request));
    assert_eq!(response.status, 200, "{}", response.body);
    let explained: ExplainResponse = serde_json::from_str(&response.body).unwrap();
    assert_eq!(explained.explanation.interface, "item_average");

    // Unknown aims are a client error, with the offending name echoed.
    let response = client.roundtrip(
        "POST",
        "/v1/explain",
        Some(r#"{"user": 0, "item": 1, "aim": "speed"}"#),
    );
    assert_eq!(response.status, 400);
    assert!(response.body.contains("speed"), "{}", response.body);
    handle.shutdown();
}

#[test]
fn sampled_quality_flows_to_metrics_healthz_and_flight_records() {
    let handle = start_server(|server, app| {
        server.debug_endpoints = true;
        app.quality_sample_every = 1; // sample every explain request
    });
    let mut client = Client::connect(handle.addr());

    let mut served = 0usize;
    for user in 0..10u32 {
        for item in 0..4u32 {
            let request = format!(r#"{{"user": {user}, "item": {item}}}"#);
            let response = client.roundtrip("POST", "/v1/explain", Some(&request));
            // Cold pairs are a legitimate 422; everything else is a bug.
            assert!(
                response.status == 200 || response.status == 422,
                "{}: {}",
                response.status,
                response.body
            );
            if response.status == 200 {
                served += 1;
            }
        }
    }
    assert!(served >= 5, "enough explainable pairs: {served}");

    // quality.* families render through the Prometheus exposition
    // (dots become underscores).
    let mut prom = Client::connect(handle.addr());
    prom.send("GET", "/metrics", "accept: text/plain\r\n", None);
    let response = prom.read_response().expect("metrics response");
    assert_eq!(response.status, 200);
    for family in ["quality_samples", "quality_score", "quality_fidelity"] {
        assert!(
            response.body.contains(family),
            "{family} family in exposition"
        );
    }

    // /healthz carries the quality standing (not debug-gated).
    let response = client.roundtrip("GET", "/healthz", None);
    assert_eq!(response.status, 200);
    let health: HealthResponse = serde_json::from_str(&response.body).unwrap();
    let quality = health.quality.expect("quality standing in healthz");
    assert_eq!(quality.sample_every, 1);
    assert!(quality.samples >= served as u64);
    assert!((0.0..=1.0).contains(&quality.mean_score));

    // Sampled requests carry their quality score into the flight ring.
    let response = client.roundtrip("GET", "/debug/requests", None);
    assert_eq!(response.status, 200);
    let body: DebugRequestsBody = serde_json::from_str(&response.body).unwrap();
    let scored: Vec<_> = body
        .requests
        .iter()
        .filter(|r| r.route == "explain" && r.status == 200)
        .collect();
    assert!(!scored.is_empty());
    assert!(
        scored.iter().all(|r| r.quality.is_some()),
        "every sampled 200 explain carries its quality score"
    );
    assert!(scored
        .iter()
        .all(|r| (0.0..=1.0).contains(&r.quality.unwrap())));

    // The live estimator agrees with the debug surface.
    let response = client.roundtrip("GET", "/debug/quality", None);
    let debug: DebugQualityBody = serde_json::from_str(&response.body).unwrap();
    assert!(debug.online.samples >= served as u64);
    handle.shutdown();
}

#[test]
fn online_estimator_agrees_with_offline_fidelity_on_the_same_world() {
    // App-level (no sockets): sample every request, pin the interface,
    // and compare the online rolling fidelity against the offline
    // startup measurement of the same interface on the same world.
    let app = ExplainApp::new(
        AppConfig {
            n_users: 60,
            n_items: 40,
            density: 0.3,
            quality_sample_every: 1,
            quality_pairs: 40,
            ..AppConfig::default()
        },
        Telemetry::default(),
    );
    let interface = "clustered_histogram";
    let offline = app
        .quality_book()
        .measured(interface)
        .expect("measured at startup");
    assert!(offline.samples > 0, "interface measurable offline");

    let mut served = 0usize;
    for user in 0..30u32 {
        for item in 0..6u32 {
            let req = ExplainRequest {
                user,
                item,
                interface: Some(interface.to_owned()),
                aim: None,
                deadline_ms: None,
                inject_panic: None,
                inject_delay_ms: None,
            };
            if app.explain(&req, Deadline::after_ms(60_000)).is_ok() {
                served += 1;
            }
        }
    }
    assert!(served >= 20, "enough sampled explanations: {served}");

    let snapshot = app.quality_monitor().snapshot();
    let online = snapshot
        .interfaces
        .iter()
        .find(|s| s.name == interface)
        .expect("online stats for the pinned interface");
    assert!(online.samples >= served as u64);

    // Stated tolerance: the two estimators sample different pair sets
    // of the same (world, model, interface) population, so their mean
    // ablation fidelities must land within 0.2 of each other.
    let gap = (online.fidelity - offline.fidelity).abs();
    assert!(
        gap <= 0.2,
        "online fidelity {:.3} vs offline {:.3} (gap {gap:.3})",
        online.fidelity,
        offline.fidelity
    );
}

//! Integration tests for the write path over real loopback sockets:
//! `POST /v1/rate` + `/v1/rate/batch` semantics (validation, batch
//! atomicity), reads observing writes, `/debug/ingest`, and the
//! journal round trip — a cleanly drained server compacts, and its
//! successor warm-restarts into a bit-identical serving world.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::Duration;

use exrec_obs::Telemetry;
use exrec_serve::app::{AppConfig, ExplainApp};
use exrec_serve::proto::{DebugIngestBody, DebugWorldBody, RateResponse, RecommendResponse};
use exrec_serve::server::{self, ServerConfig, ServerHandle};

/// A parsed client-side response.
struct ClientResponse {
    status: u16,
    body: String,
}

/// A keep-alive test client over one connection.
struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(20)))
            .unwrap();
        Client {
            reader: BufReader::new(stream.try_clone().unwrap()),
            writer: stream,
        }
    }

    fn roundtrip(&mut self, method: &str, path: &str, body: Option<&str>) -> ClientResponse {
        let body = body.unwrap_or("");
        let request = format!(
            "{method} {path} HTTP/1.1\r\nhost: test\r\ncontent-length: {}\r\n\r\n{body}",
            body.len(),
        );
        self.writer.write_all(request.as_bytes()).expect("send");
        let mut status_line = String::new();
        self.reader.read_line(&mut status_line).expect("status");
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .expect("status code")
            .parse()
            .expect("numeric status");
        let mut content_length = 0usize;
        loop {
            let mut line = String::new();
            self.reader.read_line(&mut line).expect("header");
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            if let Some((name, value)) = line.split_once(':') {
                if name.trim().eq_ignore_ascii_case("content-length") {
                    content_length = value.trim().parse().expect("content-length");
                }
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body).expect("body");
        ClientResponse {
            status,
            body: String::from_utf8(body).expect("utf-8 body"),
        }
    }
}

/// Starts a server over a small world with the given edge tuning.
fn start_server(configure: impl FnOnce(&mut ServerConfig, &mut AppConfig)) -> ServerHandle {
    let mut server_config = ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 2,
        queue_bound: 16,
        default_deadline_ms: 10_000,
        debug_endpoints: true,
        ..ServerConfig::default()
    };
    let mut app_config = AppConfig {
        n_users: 60,
        n_items: 40,
        density: 0.3,
        ..AppConfig::default()
    };
    configure(&mut server_config, &mut app_config);
    let telemetry = Telemetry::default();
    let app = ExplainApp::new(app_config, telemetry.clone());
    server::start(app, server_config, telemetry).expect("start server")
}

/// A unique journal path under the OS temp dir.
fn temp_wal(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("exrec-serve-ingest-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir.join("serve.wal")
}

#[test]
fn rate_applies_and_reads_observe_the_write() {
    let handle = start_server(|_, _| {});
    let mut client = Client::connect(handle.addr());

    let before = client.roundtrip("GET", "/debug/world", None);
    let before: DebugWorldBody = serde_json::from_str(&before.body).unwrap();

    let response = client.roundtrip(
        "POST",
        "/v1/rate",
        Some(r#"{"user": 3, "item": 5, "value": 5.0}"#),
    );
    assert_eq!(response.status, 200, "{}", response.body);
    let rated: RateResponse = serde_json::from_str(&response.body).unwrap();
    assert_eq!(rated.applied, 1);
    assert_eq!(rated.ops, 1);
    assert!(rated.revision > before.ratings_revision);
    assert_eq!(rated.wal_size_bytes, None, "no --wal-path, no journal");

    // A retract of an absent rating applies nothing but still succeeds.
    let response = client.roundtrip("POST", "/v1/rate", Some(r#"{"user": 3, "item": 5}"#));
    assert_eq!(response.status, 200, "{}", response.body);
    let unrated: RateResponse = serde_json::from_str(&response.body).unwrap();
    assert_eq!(unrated.applied, 1, "the rating just written comes back out");
    let response = client.roundtrip("POST", "/v1/rate", Some(r#"{"user": 3, "item": 5}"#));
    let noop: RateResponse = serde_json::from_str(&response.body).unwrap();
    assert_eq!(noop.applied, 0, "absent rating: nothing to retract");
    assert_eq!(
        noop.revision, unrated.revision,
        "no-op writes bump no revision"
    );

    // Reads keep flowing after writes, on the updated world.
    let response = client.roundtrip("POST", "/v1/recommend", Some(r#"{"users": [3], "n": 5}"#));
    assert_eq!(response.status, 200, "{}", response.body);
    let recs: RecommendResponse = serde_json::from_str(&response.body).unwrap();
    assert_eq!(recs.results.len(), 1);

    let debug = client.roundtrip("GET", "/debug/ingest", None);
    assert_eq!(debug.status, 200);
    let ingest: DebugIngestBody = serde_json::from_str(&debug.body).unwrap();
    assert_eq!(ingest.requests, 3);
    assert_eq!(ingest.applied, 2);
    assert_eq!(ingest.rejected, 0);
    assert!(ingest.wal.is_none());
    assert!(!ingest.snapshot_loaded);

    handle.shutdown();
}

#[test]
fn writes_are_validated_and_batches_are_atomic() {
    let handle = start_server(|_, _| {});
    let mut client = Client::connect(handle.addr());

    // Off-scale value → 422; unknown ids → 404; junk → 400.
    let response = client.roundtrip(
        "POST",
        "/v1/rate",
        Some(r#"{"user": 0, "item": 0, "value": 99.0}"#),
    );
    assert_eq!(response.status, 422, "{}", response.body);
    let response = client.roundtrip(
        "POST",
        "/v1/rate",
        Some(r#"{"user": 9999, "item": 0, "value": 3.0}"#),
    );
    assert_eq!(response.status, 404, "{}", response.body);
    let response = client.roundtrip("POST", "/v1/rate", Some(r#"{"user": 0}"#));
    assert_eq!(response.status, 400, "{}", response.body);

    // Empty batch → 400; a batch with one bad op applies nothing.
    let response = client.roundtrip("POST", "/v1/rate/batch", Some(r#"{"ops": []}"#));
    assert_eq!(response.status, 400, "{}", response.body);
    let revision_before: DebugIngestBody =
        serde_json::from_str(&client.roundtrip("GET", "/debug/ingest", None).body).unwrap();
    let response = client.roundtrip(
        "POST",
        "/v1/rate/batch",
        Some(
            r#"{"ops": [
                {"user": 0, "item": 1, "value": 4.0},
                {"user": 9999, "item": 1, "value": 4.0}
            ]}"#,
        ),
    );
    assert_eq!(response.status, 404, "{}", response.body);
    let after: DebugIngestBody =
        serde_json::from_str(&client.roundtrip("GET", "/debug/ingest", None).body).unwrap();
    assert_eq!(
        after.revision, revision_before.revision,
        "rejected batch must apply none of its ops"
    );
    assert!(after.rejected >= 3);

    // A good batch lands whole.
    let response = client.roundtrip(
        "POST",
        "/v1/rate/batch",
        Some(
            r#"{"ops": [
                {"user": 0, "item": 1, "value": 4.0},
                {"user": 1, "item": 2, "value": 2.0},
                {"user": 2, "item": 3}
            ]}"#,
        ),
    );
    assert_eq!(response.status, 200, "{}", response.body);
    let batch: RateResponse = serde_json::from_str(&response.body).unwrap();
    assert_eq!(batch.ops, 3);

    handle.shutdown();
}

#[test]
fn clean_restart_over_the_journal_serves_identical_recommendations() {
    let wal = temp_wal("restart");
    let recommend_body = r#"{"users": [0, 1, 2, 3], "n": 8}"#;

    // First life: journaled writes, then a clean drain (which compacts).
    let first = {
        let wal = wal.clone();
        let handle = start_server(move |_, app| app.wal_path = Some(wal));
        let mut client = Client::connect(handle.addr());
        for (user, item, value) in [(0, 1, 5.0), (1, 2, 1.0), (2, 3, 4.0), (0, 7, 2.0)] {
            let body = format!(r#"{{"user": {user}, "item": {item}, "value": {value:?}}}"#);
            let response = client.roundtrip("POST", "/v1/rate", Some(&body));
            assert_eq!(response.status, 200, "{}", response.body);
            let rated: RateResponse = serde_json::from_str(&response.body).unwrap();
            assert!(rated.wal_size_bytes.unwrap() > 0, "writes are journaled");
        }
        let response = client.roundtrip("POST", "/v1/rate", Some(r#"{"user": 1, "item": 2}"#));
        assert_eq!(response.status, 200, "{}", response.body);
        let response = client.roundtrip("POST", "/v1/recommend", Some(recommend_body));
        assert_eq!(response.status, 200, "{}", response.body);
        let body = response.body;
        handle.shutdown();
        body
    };
    assert!(
        exrec_data::wal::snapshot_path(&wal).exists(),
        "clean drain must compact the journal"
    );

    // Second life: warm restart from the compaction snapshot.
    let handle = start_server(move |_, app| app.wal_path = Some(wal));
    let mut client = Client::connect(handle.addr());
    let ingest: DebugIngestBody =
        serde_json::from_str(&client.roundtrip("GET", "/debug/ingest", None).body).unwrap();
    assert!(ingest.snapshot_loaded, "restart must load the snapshot");
    assert_eq!(
        ingest.wal.as_ref().unwrap().replayed,
        0,
        "log was compacted"
    );
    let response = client.roundtrip("POST", "/v1/recommend", Some(recommend_body));
    assert_eq!(response.status, 200, "{}", response.body);
    assert_eq!(
        response.body, first,
        "the restarted world must serve bit-identical recommendations"
    );
    handle.shutdown();
}

//! Integration tests for the serving edge, over real loopback sockets:
//! every endpoint, load-shedding, deadlines, panic isolation and
//! graceful drain — the acceptance behaviours of the subsystem.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use exrec_obs::Telemetry;
use exrec_serve::app::{AppConfig, ExplainApp};
use exrec_serve::proto::{ExplainResponse, HealthResponse, RecommendResponse};
use exrec_serve::server::{self, ServerConfig, ServerHandle};

/// A parsed client-side response.
struct ClientResponse {
    status: u16,
    headers: Vec<(String, String)>,
    body: String,
}

impl ClientResponse {
    fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// A keep-alive test client over one connection.
struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(20)))
            .unwrap();
        Client {
            reader: BufReader::new(stream.try_clone().unwrap()),
            writer: stream,
        }
    }

    fn send(&mut self, method: &str, path: &str, body: Option<&str>) {
        let body = body.unwrap_or("");
        let request = format!(
            "{method} {path} HTTP/1.1\r\nhost: test\r\ncontent-length: {}\r\n\r\n{body}",
            body.len(),
        );
        self.writer.write_all(request.as_bytes()).expect("send");
    }

    /// Reads one response; `None` when the server closed the connection.
    fn read_response(&mut self) -> Option<ClientResponse> {
        let mut status_line = String::new();
        if self.reader.read_line(&mut status_line).ok()? == 0 {
            return None;
        }
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .expect("status code")
            .parse()
            .expect("numeric status");
        let mut headers = Vec::new();
        let mut content_length = 0usize;
        loop {
            let mut line = String::new();
            self.reader.read_line(&mut line).ok()?;
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            let (name, value) = line.split_once(':').expect("header");
            let (name, value) = (name.trim().to_ascii_lowercase(), value.trim().to_owned());
            if name == "content-length" {
                content_length = value.parse().expect("content-length");
            }
            headers.push((name, value));
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body).ok()?;
        Some(ClientResponse {
            status,
            headers,
            body: String::from_utf8(body).expect("utf-8 body"),
        })
    }

    fn roundtrip(&mut self, method: &str, path: &str, body: Option<&str>) -> ClientResponse {
        self.send(method, path, body);
        self.read_response().expect("response")
    }
}

/// Starts a server over a small world with the given edge tuning.
fn start_server(configure: impl FnOnce(&mut ServerConfig, &mut AppConfig)) -> ServerHandle {
    let mut server_config = ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 2,
        queue_bound: 16,
        default_deadline_ms: 10_000,
        max_deadline_ms: 30_000,
        idle_timeout_ms: 5_000,
        ..ServerConfig::default()
    };
    let mut app_config = AppConfig {
        n_users: 60,
        n_items: 40,
        density: 0.3,
        ..AppConfig::default()
    };
    configure(&mut server_config, &mut app_config);
    let telemetry = Telemetry::default();
    let app = ExplainApp::new(app_config, telemetry.clone());
    server::start(app, server_config, telemetry).expect("start server")
}

#[test]
fn all_four_endpoints_answer_on_loopback() {
    let handle = start_server(|_, _| {});
    let mut client = Client::connect(handle.addr());

    // GET /healthz
    let health = client.roundtrip("GET", "/healthz", None);
    assert_eq!(health.status, 200);
    let health: HealthResponse = serde_json::from_str(&health.body).unwrap();
    assert_eq!(health.status, "ok");
    assert_eq!(health.workers, 2);
    assert_eq!(health.queue_capacity, 16);

    // POST /v1/recommend — content checked, not just status.
    let response = client.roundtrip(
        "POST",
        "/v1/recommend",
        Some(r#"{"users": [0, 1, 2], "n": 3, "explain": true}"#),
    );
    assert_eq!(response.status, 200);
    let recs: RecommendResponse = serde_json::from_str(&response.body).unwrap();
    assert_eq!(recs.results.len(), 3);
    for (idx, per_user) in recs.results.iter().enumerate() {
        assert_eq!(per_user.user, idx as u32);
        assert!(per_user.items.len() <= 3);
        for item in &per_user.items {
            assert!((item.item as usize) < 40, "item id in catalog");
            assert!(item.confidence >= 0.0 && item.confidence <= 1.0);
            let explanation = item.explanation.as_ref().expect("explain=true");
            assert_eq!(explanation.interface, "clustered_histogram");
            assert!(!explanation.text.is_empty());
        }
    }

    // POST /v1/explain
    let response = client.roundtrip(
        "POST",
        "/v1/explain",
        Some(r#"{"user": 0, "item": 1, "interface": "item_average"}"#),
    );
    assert_eq!(response.status, 200);
    let explain: ExplainResponse = serde_json::from_str(&response.body).unwrap();
    assert_eq!((explain.user, explain.item), (0, 1));
    assert_eq!(explain.explanation.interface, "item_average");
    assert!(!explain.explanation.aims.is_empty());

    // GET /metrics — reflects the traffic above.
    let metrics = client.roundtrip("GET", "/metrics", None);
    assert_eq!(metrics.status, 200);
    assert!(metrics.body.contains("serve.requests"));
    assert!(metrics.body.contains("serve.latency_ns.recommend"));
    assert!(metrics.body.contains("serve.aims."));

    // Routing errors.
    assert_eq!(client.roundtrip("GET", "/nope", None).status, 404);
    assert_eq!(client.roundtrip("GET", "/v1/recommend", None).status, 405);
    assert_eq!(
        client
            .roundtrip("POST", "/v1/recommend", Some("{not json"))
            .status,
        400
    );
    assert_eq!(
        client
            .roundtrip("POST", "/v1/recommend", Some(r#"{"users": [9999]}"#))
            .status,
        404
    );

    handle.shutdown();
}

#[test]
fn full_queue_sheds_with_429_and_retry_after() {
    let handle = start_server(|server, app| {
        server.workers = 1;
        server.queue_bound = 1;
        app.fault_injection = true;
    });

    // A occupies the single worker for a while.
    let mut a = Client::connect(handle.addr());
    a.send(
        "POST",
        "/v1/recommend",
        Some(r#"{"users": [0], "inject_delay_ms": 600, "deadline_ms": 10000}"#),
    );
    std::thread::sleep(Duration::from_millis(150));

    // B fills the queue's only slot.
    let mut b = Client::connect(handle.addr());
    b.send("POST", "/v1/recommend", Some(r#"{"users": [1], "n": 2}"#));
    std::thread::sleep(Duration::from_millis(150));

    // C finds the queue full and is shed at the door.
    let mut c = Client::connect(handle.addr());
    let shed = c.read_response().expect("shed response");
    assert_eq!(shed.status, 429);
    assert_eq!(shed.header("retry-after"), Some("1"));
    assert!(shed.body.contains("shed"));

    // The shed didn't corrupt admitted work: A and B complete correctly.
    let a_response = a.read_response().expect("a response");
    assert_eq!(a_response.status, 200);
    let recs: RecommendResponse = serde_json::from_str(&a_response.body).unwrap();
    assert_eq!(recs.results[0].user, 0);
    let b_response = b.read_response().expect("b response");
    assert_eq!(b_response.status, 200);
    let recs: RecommendResponse = serde_json::from_str(&b_response.body).unwrap();
    assert_eq!(recs.results[0].user, 1);

    let report = handle.telemetry().report();
    assert_eq!(report.counters["serve.shed"], 1);
    handle.shutdown();
}

#[test]
fn spent_deadline_yields_504() {
    let handle = start_server(|_, app| app.fault_injection = true);
    let mut client = Client::connect(handle.addr());

    // The handler's delay overruns the request's own deadline.
    let response = client.roundtrip(
        "POST",
        "/v1/recommend",
        Some(r#"{"users": [0], "inject_delay_ms": 500, "deadline_ms": 40}"#),
    );
    assert_eq!(response.status, 504);
    assert!(response.body.contains("deadline_exceeded"));

    // A zero budget is rejected before any work happens.
    let response = client.roundtrip(
        "POST",
        "/v1/explain",
        Some(r#"{"user": 0, "item": 1, "deadline_ms": 0}"#),
    );
    assert_eq!(response.status, 504);

    // The server still answers fresh, in-budget requests.
    let response = client.roundtrip("POST", "/v1/explain", Some(r#"{"user": 0, "item": 1}"#));
    assert_eq!(response.status, 200);

    let report = handle.telemetry().report();
    assert!(report.counters["serve.timeout"] >= 2);
    handle.shutdown();
}

#[test]
fn handler_panic_costs_one_request_not_the_pool() {
    // A single worker: if the panic killed it, nothing would answer.
    let handle = start_server(|server, app| {
        server.workers = 1;
        app.fault_injection = true;
    });
    let mut client = Client::connect(handle.addr());

    let response = client.roundtrip(
        "POST",
        "/v1/recommend",
        Some(r#"{"users": [0], "inject_panic": true}"#),
    );
    assert_eq!(response.status, 500);
    assert!(response.body.contains("panic"));

    // Same connection still serves…
    let response = client.roundtrip("POST", "/v1/recommend", Some(r#"{"users": [0], "n": 2}"#));
    assert_eq!(response.status, 200);

    // …and so does a fresh one through the same (sole) worker.
    let mut fresh = Client::connect(handle.addr());
    let response = fresh.roundtrip("POST", "/v1/explain", Some(r#"{"user": 1, "item": 2}"#));
    assert!(response.status == 200 || response.status == 422);

    assert_eq!(handle.telemetry().report().counters["serve.panic"], 1);
    handle.shutdown();
}

#[test]
fn graceful_shutdown_drains_in_flight_requests() {
    let handle = start_server(|server, app| {
        server.workers = 1;
        app.fault_injection = true;
    });
    let addr = handle.addr();

    // A long-running request is in flight when shutdown begins.
    let mut client = Client::connect(addr);
    client.send(
        "POST",
        "/v1/recommend",
        Some(r#"{"users": [0], "inject_delay_ms": 400, "deadline_ms": 10000}"#),
    );
    std::thread::sleep(Duration::from_millis(100));

    let drainer = std::thread::spawn(move || handle.shutdown());

    // The in-flight request completes with a full, correct response…
    let response = client.read_response().expect("drained response");
    assert_eq!(response.status, 200);
    let recs: RecommendResponse = serde_json::from_str(&response.body).unwrap();
    assert_eq!(recs.results[0].user, 0);
    // …and the server marked the connection for close while draining.
    assert_eq!(response.header("connection"), Some("close"));

    drainer.join().expect("shutdown completes");

    // The listener is closed: new connections are refused (or reset
    // before a response arrives on slow loopbacks).
    match TcpStream::connect(addr) {
        Err(_) => {}
        Ok(stream) => {
            stream
                .set_read_timeout(Some(Duration::from_millis(500)))
                .unwrap();
            let mut reader = BufReader::new(stream);
            let mut line = String::new();
            assert_eq!(
                reader.read_line(&mut line).unwrap_or(0),
                0,
                "post-shutdown connection must not be served, got {line:?}"
            );
        }
    }
}

#[test]
fn idle_keepalive_connections_are_reaped() {
    let handle = start_server(|server, _| server.idle_timeout_ms = 150);
    let mut client = Client::connect(handle.addr());
    assert_eq!(client.roundtrip("GET", "/healthz", None).status, 200);

    // Sit idle past the reap timeout; the server closes the connection.
    std::thread::sleep(Duration::from_millis(450));
    client.send("GET", "/healthz", None);
    assert!(
        client.read_response().is_none(),
        "idle connection should have been reaped"
    );

    let report = handle.telemetry().report();
    assert!(report.counters["serve.idle_reaped"] >= 1);
    handle.shutdown();
}

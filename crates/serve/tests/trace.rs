//! Tracing and SLO integration tests over real loopback sockets: the
//! acceptance behaviours of the request-scoped tracing layer.
//!
//! * A traced `POST /v1/recommend` reconstructs as a complete span tree
//!   (edge → queue → batch worker → explainer) from the flushed trace,
//!   and the `x-exrec-trace-id` response header carries the tree's id.
//! * A fast request below the tail threshold flushes nothing while the
//!   `slo.*` window gauges still advance.
//! * `/healthz` exposes backpressure (queue/worker saturation) and the
//!   per-route SLO standing, turning `degraded` when a fast-burn
//!   window trips.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use exrec_obs::{
    CountingSubscriber, Metrics, SloConfig, SpanEvent, Subscriber, TailConfig,
    TailSamplingSubscriber, Telemetry,
};
use exrec_serve::app::{AppConfig, ExplainApp};
use exrec_serve::proto::HealthResponse;
use exrec_serve::server::{self, ServerConfig, ServerHandle};

/// A parsed client-side response.
struct ClientResponse {
    status: u16,
    headers: Vec<(String, String)>,
    body: String,
}

impl ClientResponse {
    fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// One-shot request over a fresh connection (each request is then the
/// "first on its connection", so it gets a `serve.queue_wait` span).
fn roundtrip(
    addr: std::net::SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
    accept: Option<&str>,
) -> ClientResponse {
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(20)))
        .unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    let body = body.unwrap_or("");
    let accept = accept
        .map(|a| format!("accept: {a}\r\n"))
        .unwrap_or_default();
    let request = format!(
        "{method} {path} HTTP/1.1\r\nhost: test\r\n{accept}content-length: {}\r\nconnection: close\r\n\r\n{body}",
        body.len(),
    );
    writer.write_all(request.as_bytes()).expect("send");

    let mut status_line = String::new();
    reader.read_line(&mut status_line).expect("status line");
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let mut headers = Vec::new();
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("header line");
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        let (name, value) = line.split_once(':').expect("header");
        let (name, value) = (name.trim().to_ascii_lowercase(), value.trim().to_owned());
        if name == "content-length" {
            content_length = value.parse().expect("content-length");
        }
        headers.push((name, value));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).expect("body");
    ClientResponse {
        status,
        headers,
        body: String::from_utf8(body).expect("utf-8 body"),
    }
}

/// Starts a server whose subscriber is a tail sampler in front of a
/// collector, returning both.
fn start_traced(
    tail: TailConfig,
    configure: impl FnOnce(&mut ServerConfig),
) -> (ServerHandle, Arc<CountingSubscriber>, Telemetry) {
    let collector = Arc::new(CountingSubscriber::new());
    let metrics = Arc::new(Metrics::new());
    let sampler = TailSamplingSubscriber::new(Arc::clone(&collector) as Arc<dyn Subscriber>, tail)
        .with_metrics(&metrics);
    let telemetry = Telemetry::new(metrics, Arc::new(sampler));
    let mut server_config = ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 2,
        queue_bound: 16,
        default_deadline_ms: 10_000,
        trace_seed: Some(42),
        ..ServerConfig::default()
    };
    configure(&mut server_config);
    let app_config = AppConfig {
        n_users: 60,
        n_items: 40,
        density: 0.3,
        pool_threads: 2,
        ..AppConfig::default()
    };
    let app = ExplainApp::new(app_config, telemetry.clone());
    let handle = server::start(app, server_config, telemetry.clone()).expect("start server");
    (handle, collector, telemetry)
}

/// The spans of one trace, keyed for tree checks.
fn trace_spans(events: &[SpanEvent], trace_hex: &str) -> Vec<SpanEvent> {
    events
        .iter()
        .filter(|e| e.trace_id.as_deref() == Some(trace_hex))
        .cloned()
        .collect()
}

#[test]
fn recommend_request_reconstructs_as_one_span_tree() {
    // Threshold 0: every completed trace flushes.
    let (handle, collector, _telemetry) = start_traced(
        TailConfig {
            slow_threshold_ns: 0,
            ..TailConfig::default()
        },
        |_| {},
    );

    let response = roundtrip(
        handle.addr(),
        "POST",
        "/v1/recommend",
        Some(r#"{"users": [0, 1, 2, 3], "n": 3, "explain": true}"#),
        None,
    );
    assert_eq!(response.status, 200, "body: {}", response.body);
    let trace_hex = response
        .header("x-exrec-trace-id")
        .expect("every routed response carries its trace id")
        .to_owned();
    assert_eq!(trace_hex.len(), 32, "128-bit id as 32 hex chars");
    assert!(trace_hex.chars().all(|c| c.is_ascii_hexdigit()));

    let spans = trace_spans(&collector.events(), &trace_hex);
    assert!(
        !spans.is_empty(),
        "trace must have flushed before the response"
    );

    // Exactly one root, and it is the edge's request span.
    let roots: Vec<&SpanEvent> = spans.iter().filter(|s| s.parent_id.is_none()).collect();
    assert_eq!(roots.len(), 1, "one root span per request");
    let root = roots[0];
    assert_eq!(root.name, "serve.request");
    assert!(root
        .fields
        .iter()
        .any(|(k, v)| k == "endpoint" && v == "recommend"));
    assert!(root.fields.iter().any(|(k, v)| k == "status" && v == "200"));

    // Parent links form a tree rooted at the root span: every non-root
    // parent id resolves to a span in the same trace.
    let ids: std::collections::BTreeSet<&str> =
        spans.iter().filter_map(|s| s.span_id.as_deref()).collect();
    assert_eq!(ids.len(), spans.len(), "span ids are unique");
    for span in &spans {
        if let Some(parent) = span.parent_id.as_deref() {
            assert!(
                ids.contains(parent),
                "span {} has dangling parent {parent}",
                span.name
            );
        }
    }

    // The tree covers every pipeline stage: edge → queue → batch
    // worker → explainer evidence.
    let by_name =
        |name: &str| -> Vec<&SpanEvent> { spans.iter().filter(|s| s.name == name).collect() };
    let queue_wait = by_name("serve.queue_wait");
    assert_eq!(queue_wait.len(), 1, "first request on the connection");
    assert_eq!(queue_wait[0].parent_id, root.span_id);
    let batch = by_name("batch");
    assert!(!batch.is_empty(), "batch span under the request");
    for b in &batch {
        assert_eq!(b.parent_id, root.span_id, "batch hangs off the edge span");
    }
    let explained = by_name("recommend_explained");
    assert!(
        !explained.is_empty(),
        "explainer spans crossed the worker-thread boundary"
    );
    let batch_ids: std::collections::BTreeSet<&str> =
        batch.iter().filter_map(|s| s.span_id.as_deref()).collect();
    for e in &explained {
        assert!(
            batch_ids.contains(e.parent_id.as_deref().unwrap()),
            "recommend_explained parents onto a batch span"
        );
    }
    let evidence = by_name("explain.evidence");
    assert!(
        !evidence.is_empty(),
        "evidence gathering appears in the tree"
    );

    // Timeline: children start at or after the root's start offset.
    for span in &spans {
        assert!(
            span.start_offset_ns >= root.start_offset_ns,
            "{} starts before its root",
            span.name
        );
    }

    // The root flushes last (tail sampling forwards buffered children
    // first), so a consumer can key the flush on root arrival.
    assert_eq!(spans.last().unwrap().name, "serve.request");

    handle.shutdown();
}

#[test]
fn fast_request_below_threshold_flushes_nothing_but_slo_advances() {
    // Threshold effectively infinite, head sampling off: nothing earns
    // a flush.
    let (handle, collector, telemetry) = start_traced(
        TailConfig {
            slow_threshold_ns: u64::MAX,
            head_sample_every: 0,
            ..TailConfig::default()
        },
        |_| {},
    );

    let response = roundtrip(
        handle.addr(),
        "POST",
        "/v1/recommend",
        Some(r#"{"users": [0, 1], "n": 2}"#),
        None,
    );
    assert_eq!(response.status, 200, "body: {}", response.body);
    // The trace id is still minted and returned even when the trace is
    // ultimately dropped — clients can always correlate.
    let trace_hex = response.header("x-exrec-trace-id").unwrap().to_owned();

    // No traced span reached the subscriber behind the sampler.
    let events = collector.events();
    assert!(
        events.iter().all(|e| e.trace_id.is_none()),
        "fast clean traces are dropped wholesale"
    );
    assert!(events
        .iter()
        .all(|e| e.trace_id.as_deref() != Some(trace_hex.as_str())));

    // But the SLO window and the drop counter both advanced.
    let report = telemetry.report();
    assert!(
        report.gauges["slo.window_total.recommend"] >= 1.0,
        "slo window gauges advance on every request"
    );
    assert!(report.gauges.contains_key("slo.good_ratio.recommend"));
    assert!(report.gauges.contains_key("slo.burn_rate.recommend"));
    assert!(report.counters["trace.dropped"] >= 1);
    assert_eq!(report.counters.get("trace.flushed").copied(), Some(0));

    handle.shutdown();
}

#[test]
fn healthz_reports_backpressure_and_degrades_on_fast_burn() {
    // An impossible objective (0ns) with a hair-trigger fast-burn
    // window: every request is bad, so the SLO degrades immediately.
    let (handle, _collector, _telemetry) = start_traced(TailConfig::default(), |server| {
        server.slo = SloConfig {
            objective_ns: 0,
            min_events: 1,
            fast_burn_threshold: 1.0,
            ..SloConfig::default()
        };
    });

    // Before any traffic: healthy, empty SLO map, zero saturation.
    let before: HealthResponse =
        serde_json::from_str(&roundtrip(handle.addr(), "GET", "/healthz", None, None).body)
            .expect("healthz JSON");
    assert_eq!(before.workers, 2);
    assert!(before.queue_saturation >= 0.0 && before.queue_saturation <= 1.0);
    assert!(
        before.busy_workers >= 1,
        "the health check itself occupies a worker"
    );
    assert!(before.worker_saturation > 0.0 && before.worker_saturation <= 1.0);

    // Serve a request (it will miss the 0ns objective), then re-check.
    let ok = roundtrip(
        handle.addr(),
        "POST",
        "/v1/recommend",
        Some(r#"{"users": [0], "n": 2}"#),
        None,
    );
    assert_eq!(ok.status, 200);
    let after: HealthResponse =
        serde_json::from_str(&roundtrip(handle.addr(), "GET", "/healthz", None, None).body)
            .expect("healthz JSON");
    assert_eq!(after.status, "degraded");
    let rec = after.slo.get("recommend").expect("recommend route tracked");
    assert_eq!(rec.total, 1);
    assert_eq!(rec.good, 0, "nothing meets a 0ns objective");
    assert!(rec.degraded);
    assert!(rec.burn_rate >= 1.0);

    handle.shutdown();
}

#[test]
fn metrics_negotiates_prometheus_text_alongside_json() {
    let (handle, _collector, _telemetry) = start_traced(TailConfig::default(), |_| {});
    // Generate some traffic so the families exist.
    let ok = roundtrip(
        handle.addr(),
        "POST",
        "/v1/recommend",
        Some(r#"{"users": [0, 1], "n": 2}"#),
        None,
    );
    assert_eq!(ok.status, 200);

    // Default: the JSON report, as before.
    let json = roundtrip(handle.addr(), "GET", "/metrics", None, None);
    assert_eq!(json.header("content-type"), Some("application/json"));
    assert!(json.body.contains("\"counters\""));

    // Accept: text/plain → exposition 0.0.4.
    let text = roundtrip(handle.addr(), "GET", "/metrics", None, Some("text/plain"));
    assert_eq!(
        text.header("content-type"),
        Some("text/plain; version=0.0.4")
    );
    assert!(text.body.contains("# TYPE serve_requests counter\n"));
    assert!(text
        .body
        .contains("# TYPE serve_latency_ns_recommend histogram\n"));
    assert!(text
        .body
        .contains("serve_latency_ns_recommend_bucket{le=\"+Inf\"}"));
    assert!(text.body.contains("serve_latency_ns_recommend_count"));
    // Histogram buckets are cumulative: parse one family and check
    // monotonicity end to end.
    let mut last = 0u64;
    let mut saw_bucket = false;
    for line in text.body.lines() {
        if let Some(rest) = line.strip_prefix("serve_latency_ns_recommend_bucket{le=") {
            let value: u64 = rest
                .split_whitespace()
                .next_back()
                .unwrap()
                .parse()
                .expect("bucket count");
            assert!(value >= last, "buckets must be cumulative: {line}");
            last = value;
            saw_bucket = true;
        }
    }
    assert!(saw_bucket);

    handle.shutdown();
}

#[test]
fn trace_ids_are_unique_across_requests() {
    let (handle, _collector, _telemetry) = start_traced(TailConfig::default(), |_| {});
    let mut seen: BTreeMap<String, usize> = BTreeMap::new();
    for i in 0..8 {
        let response = roundtrip(
            handle.addr(),
            "POST",
            "/v1/explain",
            Some(r#"{"user": 0, "item": 1}"#),
            None,
        );
        let id = response
            .header("x-exrec-trace-id")
            .expect("trace header")
            .to_owned();
        *seen.entry(id).or_default() += 1;
        let _ = i;
    }
    assert_eq!(seen.len(), 8, "every request gets a distinct trace id");
    handle.shutdown();
}

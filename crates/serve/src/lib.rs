//! # exrec-serve
//!
//! The networked serving edge of the explanation toolkit: a
//! dependency-free (std::net + the workspace's vendored crates)
//! threaded HTTP/1.1 server that puts the explanation pipeline —
//! `Explainer` over a cached `UserKnn`, fanned out through the
//! `exrec_algo::batch` machinery — behind four endpoints:
//!
//! | endpoint            | method | purpose                                  |
//! |---------------------|--------|------------------------------------------|
//! | `/v1/recommend`     | POST   | ranked (optionally explained) top-k      |
//! | `/v1/explain`       | POST   | one `(user, item)` explanation           |
//! | `/healthz`          | GET    | liveness + drain state + queue depth     |
//! | `/metrics`          | GET    | the full `exrec-obs` report as JSON      |
//!
//! The survey's position is that explanation aims are only realized at
//! the point of *delivery*; this crate is that point, so it is built
//! production-shaped rather than as a demo: bounded-queue admission
//! control with 429 load-shedding, per-request deadlines (504),
//! panic-isolated workers (500 without pool loss), keep-alive with idle
//! reaping, graceful drain on shutdown, and counters/histograms for
//! every one of those events through `exrec-obs` — including per-aim
//! explanation counts observed at the edge (`serve.aims.*`).
//!
//! Architecture, wire protocol and tuning guidance: `docs/serving.md`.
//!
//! ```no_run
//! use exrec_obs::Telemetry;
//! use exrec_serve::app::{AppConfig, ExplainApp};
//! use exrec_serve::server::{self, ServerConfig};
//!
//! let telemetry = Telemetry::default();
//! let app = ExplainApp::new(AppConfig::default(), telemetry.clone());
//! let config = ServerConfig {
//!     addr: "127.0.0.1:0".to_owned(),
//!     ..ServerConfig::default()
//! };
//! let handle = server::start(app, config, telemetry).unwrap();
//! println!("serving on {}", handle.addr());
//! handle.shutdown();
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod app;
pub mod http;
pub mod proto;
pub mod queue;
pub mod server;

pub use app::{AppConfig, Deadline, ExplainApp};
pub use server::{start, ServerConfig, ServerHandle};

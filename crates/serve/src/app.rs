//! The application behind the HTTP edge: a synthetic world, a cached
//! k-NN model and the explanation engine, shaped into wire responses.
//!
//! Everything the handlers do is a thin adapter over existing pipeline
//! pieces: ranking goes through `BatchPool::recommend_batch`, explained
//! ranking through [`Explainer::recommend_explained_batch`], single-pair
//! explanations through [`Explainer::explain`]. The app adds the
//! serving-boundary concerns those APIs deliberately do not have:
//! request validation, deadline checks between work units, per-aim edge
//! telemetry, and (test-gated) fault injection.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use exrec_algo::batch::BatchPool;
use exrec_algo::cache::{CacheConfig, SimilarityCache};
use exrec_algo::{
    Ctx, IndexConfig, KernelConfig, ScanEngine, ScanMode, ScanStats, Scored, UserKnn,
};
use exrec_core::aims::Aim;
use exrec_core::engine::Explainer;
use exrec_core::explanation::Explanation;
use exrec_core::interfaces::InterfaceId;
use exrec_core::render::{PlainRenderer, Render};
use exrec_core::QualityProbe;
use exrec_data::synth::{movies, WorldConfig};
use exrec_data::wal::{self, WalStats};
use exrec_data::{FsyncPolicy, MutableWorld, RatingsMatrix, Wal, WalOp, WalRecord, World};
use exrec_obs::{QualityMonitor, QualitySample, Telemetry};
use exrec_registry::QualityBook;
use exrec_types::{Error, ItemId, UserId};

use crate::proto::{
    ExplainRequest, ExplainResponse, ExplanationBody, RateBatchRequest, RateRequest, RateResponse,
    RecommendRequest, RecommendResponse, ScoredItem, UserRecommendations,
};

/// A per-request time budget, measured from admission.
#[derive(Debug, Clone, Copy)]
pub struct Deadline {
    at: Instant,
}

impl Deadline {
    /// A deadline `ms` milliseconds after `start`.
    pub fn from(start: Instant, ms: u64) -> Self {
        Deadline {
            at: start + Duration::from_millis(ms),
        }
    }

    /// A deadline `ms` milliseconds from now.
    pub fn after_ms(ms: u64) -> Self {
        Deadline::from(Instant::now(), ms)
    }

    /// Whether the budget is spent.
    pub fn exceeded(&self) -> bool {
        Instant::now() >= self.at
    }
}

/// How a request failed inside the app; the server maps these onto HTTP
/// status codes (see `docs/serving.md`).
#[derive(Debug)]
pub enum AppError {
    /// Malformed or out-of-policy request → 400.
    BadRequest(String),
    /// A referenced user or item does not exist → 404.
    NotFound(String),
    /// The pair is valid but no explanation/prediction can be produced
    /// (e.g. the interface's evidence needs are unmet) → 422.
    Unprocessable(String),
    /// The per-request deadline elapsed before completion → 504.
    DeadlineExceeded,
    /// The server itself failed (journal I/O, snapshot write) → 500.
    Internal(String),
}

/// Configuration of the serving application.
#[derive(Debug, Clone)]
pub struct AppConfig {
    /// Synthetic-world user count.
    pub n_users: usize,
    /// Synthetic-world item count.
    pub n_items: usize,
    /// Synthetic-world rating density.
    pub density: f64,
    /// World RNG seed (equal seeds serve identical answers).
    pub seed: u64,
    /// Interface used when a request does not name one.
    pub default_interface: InterfaceId,
    /// Top-k size when a request does not name one.
    pub default_n: usize,
    /// Per-request caps: most users per recommend call…
    pub max_batch_users: usize,
    /// …and largest top-k size.
    pub max_n: usize,
    /// Threads in the shared intra-request batch pool (`0` = cores).
    pub pool_threads: usize,
    /// Honour `inject_panic` / `inject_delay_ms` request fields. Test
    /// harnesses only; off by default.
    pub fault_injection: bool,
    /// Quality-sample one `/v1/explain` request in this many (`0`
    /// disables live quality estimation, `1` samples every request).
    pub quality_sample_every: u64,
    /// Explanation pairs sampled per interface by the startup scoring
    /// pass that seeds the aim-fit quality book.
    pub quality_pairs: usize,
    /// Serve every request through the exact tiled scan instead of the
    /// pruned candidate index (the `--exact` flag; see
    /// `docs/kernels.md#pruned-probing`).
    pub exact: bool,
    /// Write-ahead-log path (the `--wal-path` flag). When set, writes
    /// are journaled before they apply, and startup warm-restarts from
    /// `<path>.snap` plus the WAL tail. `None` keeps writes volatile.
    pub wal_path: Option<PathBuf>,
    /// Fsync the WAL on every append (the `--fsync` flag). Durable
    /// against power loss, at a per-write latency cost.
    pub fsync: bool,
    /// Most ops accepted in one `POST /v1/rate/batch` body.
    pub max_batch_ops: usize,
}

impl Default for AppConfig {
    fn default() -> Self {
        AppConfig {
            n_users: 2_000,
            n_items: 300,
            density: 0.05,
            seed: 0xEC,
            default_interface: InterfaceId::ClusteredHistogram,
            default_n: 10,
            max_batch_users: 256,
            max_n: 100,
            pool_threads: 0,
            fault_injection: false,
            quality_sample_every: 8,
            quality_pairs: 16,
            exact: false,
            wal_path: None,
            fsync: false,
            max_batch_ops: 1_024,
        }
    }
}

/// The serving application: owns the data, model and batch pool the
/// worker threads share.
pub struct ExplainApp {
    config: AppConfig,
    world: MutableWorld,
    model: UserKnn,
    pool: BatchPool,
    telemetry: Telemetry,
    /// Measured per-interface quality on the served world, seeded by a
    /// startup scoring pass and refreshed by the live estimator.
    book: QualityBook,
    /// The 1-in-N online quality estimator behind `quality.*` metrics.
    monitor: QualityMonitor,
    /// Whether startup found (and loaded) a compaction snapshot.
    snapshot_loaded: bool,
    /// Write requests admitted (`POST /v1/rate` + `/v1/rate/batch`).
    ingest_requests: AtomicU64,
    /// Rating deltas actually applied to the matrix.
    ingest_applied: AtomicU64,
    /// Write requests rejected by validation.
    ingest_rejected: AtomicU64,
}

impl ExplainApp {
    /// Generates the world and builds the cached model. Expensive
    /// (world generation); call once at startup. Panics on journal
    /// I/O failures — use [`ExplainApp::try_new`] to handle them.
    pub fn new(config: AppConfig, telemetry: Telemetry) -> Self {
        Self::try_new(config, telemetry).expect("app startup")
    }

    /// [`ExplainApp::new`], surfacing WAL open/replay failures.
    ///
    /// # Errors
    ///
    /// [`Error::Io`] when the journal (or its snapshot) cannot be
    /// opened, and [`Error::CorruptSnapshot`] when either is damaged
    /// beyond the tolerated torn tail.
    pub fn try_new(config: AppConfig, telemetry: Telemetry) -> Result<Self, Error> {
        let mut world = movies::generate(&WorldConfig {
            n_users: config.n_users,
            n_items: config.n_items,
            density: config.density,
            seed: config.seed,
            ..WorldConfig::default()
        });
        // Warm restart: a compaction snapshot (if present) replaces the
        // generated matrix wholesale, then the WAL tail replays on top.
        // Together they reproduce the exact pre-shutdown ratings.
        let mut snapshot_loaded = false;
        let wal_handle = match &config.wal_path {
            Some(path) => {
                if let Some(matrix) = wal::load_snapshot(path)? {
                    world.ratings = matrix;
                    snapshot_loaded = true;
                }
                let policy = if config.fsync {
                    FsyncPolicy::Always
                } else {
                    FsyncPolicy::Never
                };
                let (wal_handle, tail) = Wal::open(path, policy)?;
                wal::replay_into(&mut world.ratings, &tail)?;
                Some(wal_handle)
            }
            None => None,
        };
        let cache = Arc::new(SimilarityCache::instrumented(
            CacheConfig::default(),
            telemetry.metrics(),
            "serve",
        ));
        // The scan engine replaces the seed's dense per-request user
        // sweep: pruned candidate probing by default, the exact tiled
        // kernel under `--exact` (both revision-keyed like the cache).
        let engine = Arc::new(ScanEngine::instrumented(
            KernelConfig::default(),
            IndexConfig::default(),
            telemetry.metrics(),
            "serve",
        ));
        let mode = if config.exact {
            ScanMode::Exact
        } else {
            ScanMode::Pruned
        };
        let model = UserKnn::default()
            .with_cache(cache)
            .with_engine(engine, mode);
        let pool = BatchPool::new(config.pool_threads).with_telemetry(telemetry.clone());
        // Seed the aim-fit book by scoring every interface against the
        // world and model actually served — the same pass the offline
        // suite runs, sized down by `quality_pairs`.
        let book = QualityBook::from_interfaces(exrec_eval::quality::score_interfaces(
            &world,
            &model,
            &exrec_eval::quality::QualityConfig {
                sample_pairs: config.quality_pairs,
                ..exrec_eval::quality::QualityConfig::default()
            },
        ));
        let monitor = QualityMonitor::new(
            telemetry.clone(),
            exrec_obs::quality::QualityConfig {
                sample_every: config.quality_sample_every,
                ..exrec_obs::quality::QualityConfig::default()
            },
        );
        let app = ExplainApp {
            config,
            world: MutableWorld::with_wal(world, wal_handle),
            model,
            pool,
            telemetry,
            book,
            monitor,
            snapshot_loaded,
            ingest_requests: AtomicU64::new(0),
            ingest_applied: AtomicU64::new(0),
            ingest_rejected: AtomicU64::new(0),
        };
        app.refresh_wal_gauges();
        Ok(app)
    }

    /// The app's configuration.
    pub fn config(&self) -> &AppConfig {
        &self.config
    }

    /// Number of users in the served world (valid ids are `0..n`).
    pub fn n_users(&self) -> usize {
        self.world.read().ratings.n_users()
    }

    /// Number of items in the served catalog (valid ids are `0..n`).
    pub fn n_items(&self) -> usize {
        self.world.read().catalog.len()
    }

    /// Number of observed ratings in the served world.
    pub fn n_ratings(&self) -> usize {
        self.world.read().ratings.n_ratings()
    }

    /// Current ratings-matrix revision (bumps on mutation; keys the
    /// similarity cache's validity).
    pub fn ratings_revision(&self) -> u64 {
        self.world.read().ratings.revision()
    }

    /// Resolved thread count of the shared intra-request batch pool.
    pub fn pool_threads(&self) -> usize {
        self.pool.threads()
    }

    /// Stable name of the serving model (e.g. `"user-knn"`).
    pub fn model_name(&self) -> &'static str {
        use exrec_algo::Recommender as _;
        self.model.name()
    }

    /// Similarity-cache statistics plus total capacity, for `/healthz`
    /// occupancy fields and `GET /debug/world`. `None` when the model
    /// runs uncached.
    pub fn cache_stats(&self) -> Option<(exrec_algo::cache::CacheStats, usize)> {
        self.model
            .cache()
            .map(|cache| (cache.stats(), cache.capacity()))
    }

    /// Stable name of the neighbour-scan mode actually serving
    /// (`"exact"` / `"pruned"`; `"brute"` would mean no engine).
    pub fn scan_mode(&self) -> &'static str {
        self.model.scan_mode_name()
    }

    /// Point-in-time scan-engine statistics for `GET /debug/world`;
    /// `None` when the model runs the brute per-pair path.
    pub fn scan_stats(&self) -> Option<ScanStats> {
        self.model.engine().map(|(engine, _)| engine.stats())
    }

    /// The measured per-interface quality book behind aim-fit
    /// selection and `GET /debug/quality`.
    pub fn quality_book(&self) -> &QualityBook {
        &self.book
    }

    /// The live quality estimator (`quality.*` metrics, sustained-drop
    /// detection, `GET /debug/quality`'s `online` section).
    pub fn quality_monitor(&self) -> &QualityMonitor {
        &self.monitor
    }

    /// Runs the (test-gated) fault hooks shared by both POST endpoints.
    fn fault_hooks(
        &self,
        inject_panic: Option<bool>,
        inject_delay_ms: Option<u64>,
        deadline: Deadline,
    ) -> Result<(), AppError> {
        if inject_panic.is_none() && inject_delay_ms.is_none() {
            return Ok(());
        }
        if !self.config.fault_injection {
            return Err(AppError::BadRequest(
                "fault-injection fields require the server's --fault-injection flag".to_owned(),
            ));
        }
        if inject_panic == Some(true) {
            panic!("injected handler panic (fault-injection)");
        }
        if let Some(ms) = inject_delay_ms {
            let until = Instant::now() + Duration::from_millis(ms);
            while Instant::now() < until {
                if deadline.exceeded() {
                    return Err(AppError::DeadlineExceeded);
                }
                std::thread::sleep(Duration::from_millis(2));
            }
        }
        Ok(())
    }

    /// Resolves an optional interface key against the catalog.
    fn resolve_interface(&self, key: Option<&str>) -> Result<InterfaceId, AppError> {
        match key {
            None => Ok(self.config.default_interface),
            Some(key) => InterfaceId::from_key(key)
                .ok_or_else(|| AppError::BadRequest(format!("unknown interface {key:?}"))),
        }
    }

    /// Resolves an optional lowercased aim name against the taxonomy.
    fn resolve_aim(&self, key: Option<&str>) -> Result<Option<Aim>, AppError> {
        let Some(key) = key else {
            return Ok(None);
        };
        let lowered = key.to_ascii_lowercase();
        Aim::ALL
            .into_iter()
            .find(|a| a.name().to_ascii_lowercase() == lowered)
            .map(Some)
            .ok_or_else(|| AppError::BadRequest(format!("unknown aim {key:?}")))
    }

    /// Validates a raw user id against the served world. Takes the
    /// world by reference so callers holding the read guard don't
    /// re-lock (nested read acquisition can deadlock behind a writer).
    fn user(world: &World, raw: u32) -> Result<UserId, AppError> {
        let n = world.ratings.n_users();
        if (raw as usize) < n {
            Ok(UserId::new(raw))
        } else {
            Err(AppError::NotFound(format!("user {raw} outside 0..{n}")))
        }
    }

    /// Validates a raw item id against the served catalog.
    fn item(world: &World, raw: u32) -> Result<ItemId, AppError> {
        let n = world.catalog.len();
        if (raw as usize) < n {
            Ok(ItemId::new(raw))
        } else {
            Err(AppError::NotFound(format!("item {raw} outside 0..{n}")))
        }
    }

    /// Counts one served explanation's aims at the edge
    /// (`serve.aims.<aim>` counters).
    fn count_aims(&self, explanation: &Explanation) {
        let metrics = self.telemetry.metrics();
        for aim in explanation.aims.iter() {
            metrics
                .counter(&format!("serve.aims.{}", aim.name().to_ascii_lowercase()))
                .incr();
        }
    }

    /// Flattens an explanation for the wire.
    fn shape_explanation(&self, explanation: &Explanation) -> ExplanationBody {
        // The presentation-render phase of the request profile: aims
        // accounting plus the plain-text document rendering.
        let _phase = exrec_obs::profile::phase("render");
        self.count_aims(explanation);
        ExplanationBody {
            interface: explanation.interface.to_owned(),
            style: explanation.style.name().to_owned(),
            aims: explanation
                .aims
                .iter()
                .map(|a| a.name().to_ascii_lowercase())
                .collect(),
            text: PlainRenderer.render(explanation),
        }
    }

    fn shape_scored(scored: &Scored, explanation: Option<ExplanationBody>) -> ScoredItem {
        ScoredItem {
            item: scored.item.raw(),
            score: scored.prediction.score,
            confidence: scored.prediction.confidence.value(),
            explanation,
        }
    }

    /// Handles `POST /v1/recommend`.
    ///
    /// # Errors
    ///
    /// [`AppError::BadRequest`] on empty/oversized batches, bad `n` or
    /// an unknown interface key; [`AppError::NotFound`] for out-of-world
    /// user ids; [`AppError::DeadlineExceeded`] when the budget elapses
    /// between work units.
    pub fn recommend(
        &self,
        req: &RecommendRequest,
        deadline: Deadline,
    ) -> Result<RecommendResponse, AppError> {
        self.fault_hooks(req.inject_panic, req.inject_delay_ms, deadline)?;
        if req.users.is_empty() {
            return Err(AppError::BadRequest("users must be non-empty".to_owned()));
        }
        if req.users.len() > self.config.max_batch_users {
            return Err(AppError::BadRequest(format!(
                "{} users exceeds the per-request cap of {}",
                req.users.len(),
                self.config.max_batch_users
            )));
        }
        let n = req.n.unwrap_or(self.config.default_n);
        if n == 0 || n > self.config.max_n {
            return Err(AppError::BadRequest(format!(
                "n must be in 1..={}",
                self.config.max_n
            )));
        }
        let interface = self.resolve_interface(req.interface.as_deref())?;
        // One read guard for the whole request: writes queue behind it
        // and land between requests, never inside one.
        let world = self.world.read();
        let users: Vec<UserId> = req
            .users
            .iter()
            .map(|&raw| Self::user(&world, raw))
            .collect::<Result<_, _>>()?;
        let explain = req.explain.unwrap_or(false);
        let ctx = Ctx::new(&world.ratings, &world.catalog);

        // Deadlines are checked between pool-sized chunks: a worker can
        // not abandon a user mid-score, but an overrunning batch stops
        // at the next chunk boundary instead of running to completion.
        let chunk_size = (self.pool.threads().max(1)) * 2;
        let mut results = Vec::with_capacity(users.len());
        for chunk in users.chunks(chunk_size) {
            if deadline.exceeded() {
                return Err(AppError::DeadlineExceeded);
            }
            if explain {
                let explainer =
                    Explainer::new(&self.model, interface).with_telemetry(self.telemetry.clone());
                let per_user = explainer.recommend_explained_batch(&ctx, &self.pool, chunk, n);
                for (&user, items) in chunk.iter().zip(per_user) {
                    results.push(UserRecommendations {
                        user: user.raw(),
                        items: items
                            .iter()
                            .map(|(scored, explanation)| {
                                Self::shape_scored(
                                    scored,
                                    Some(self.shape_explanation(explanation)),
                                )
                            })
                            .collect(),
                    });
                }
            } else {
                let per_user = self.pool.recommend_batch(&self.model, &ctx, chunk, n);
                for (&user, items) in chunk.iter().zip(per_user) {
                    results.push(UserRecommendations {
                        user: user.raw(),
                        items: items.iter().map(|s| Self::shape_scored(s, None)).collect(),
                    });
                }
            }
        }
        Ok(RecommendResponse { results })
    }

    /// Handles `POST /v1/explain`.
    ///
    /// # Errors
    ///
    /// [`AppError::BadRequest`] for unknown interface keys,
    /// [`AppError::NotFound`] for out-of-world ids,
    /// [`AppError::Unprocessable`] when prediction or explanation
    /// generation fails for the pair, [`AppError::DeadlineExceeded`]
    /// when the budget is already spent.
    pub fn explain(
        &self,
        req: &ExplainRequest,
        deadline: Deadline,
    ) -> Result<ExplainResponse, AppError> {
        self.fault_hooks(req.inject_panic, req.inject_delay_ms, deadline)?;
        let aim = self.resolve_aim(req.aim.as_deref())?;
        // An explicit interface always wins; an aim alone selects the
        // measurably best-fitting interface from the quality book.
        let interface = match (req.interface.as_deref(), aim) {
            (Some(key), _) => self.resolve_interface(Some(key))?,
            (None, Some(aim)) => self
                .book
                .select_or_default(aim)
                .unwrap_or(self.config.default_interface),
            (None, None) => self.config.default_interface,
        };
        let world = self.world.read();
        let user = Self::user(&world, req.user)?;
        let item = Self::item(&world, req.item)?;
        if deadline.exceeded() {
            return Err(AppError::DeadlineExceeded);
        }
        let ctx = Ctx::new(&world.ratings, &world.catalog);
        let explainer =
            Explainer::new(&self.model, interface).with_telemetry(self.telemetry.clone());
        let aim_echo = aim.map(|a| a.name().to_ascii_lowercase());
        // On sampled requests the evidence-carrying path runs so the
        // quality probe can measure coverage/fidelity on data already
        // in hand; unsampled requests keep the lean path.
        if self.monitor.should_sample() {
            match explainer.explain_with_evidence(&ctx, user, item) {
                Ok((prediction, explanation, evidence)) => {
                    self.record_quality(&world.ratings, interface, &explanation, &evidence, user);
                    Ok(ExplainResponse {
                        user: req.user,
                        item: req.item,
                        score: prediction.score,
                        confidence: prediction.confidence.value(),
                        aim: aim_echo,
                        explanation: self.shape_explanation(&explanation),
                    })
                }
                Err(e) => Err(AppError::Unprocessable(e.to_string())),
            }
        } else {
            match explainer.explain(&ctx, user, item) {
                Ok((prediction, explanation)) => Ok(ExplainResponse {
                    user: req.user,
                    item: req.item,
                    score: prediction.score,
                    confidence: prediction.confidence.value(),
                    aim: aim_echo,
                    explanation: self.shape_explanation(&explanation),
                }),
                // MissingEvidence (interface/model mismatch) and
                // NoPrediction (cold pair) are both "valid ids, no
                // answer": 422.
                Err(e) => Err(AppError::Unprocessable(e.to_string())),
            }
        }
    }

    /// Handles `POST /v1/rate`: one journaled rating write (or retract,
    /// when `value` is omitted).
    ///
    /// # Errors
    ///
    /// [`AppError::NotFound`] for out-of-world ids,
    /// [`AppError::Unprocessable`] for off-scale values,
    /// [`AppError::DeadlineExceeded`] when the budget is already spent,
    /// [`AppError::Internal`] on journal I/O failure.
    pub fn rate(&self, req: &RateRequest, deadline: Deadline) -> Result<RateResponse, AppError> {
        if deadline.exceeded() {
            return Err(AppError::DeadlineExceeded);
        }
        let user = UserId::new(req.user);
        let item = ItemId::new(req.item);
        let record = match req.value {
            Some(value) => WalRecord::Rate { user, item, value },
            None => WalRecord::Unrate { user, item },
        };
        self.apply_record(&record)
    }

    /// Handles `POST /v1/rate/batch`: many writes in one journaled,
    /// atomically-validated record.
    ///
    /// # Errors
    ///
    /// [`AppError::BadRequest`] on empty or oversized batches; any op
    /// failing validation rejects the whole batch with that op's error
    /// (see [`ExplainApp::rate`]) and nothing is applied.
    pub fn rate_batch(
        &self,
        req: &RateBatchRequest,
        deadline: Deadline,
    ) -> Result<RateResponse, AppError> {
        if req.ops.is_empty() {
            return Err(AppError::BadRequest("ops must be non-empty".to_owned()));
        }
        if req.ops.len() > self.config.max_batch_ops {
            return Err(AppError::BadRequest(format!(
                "{} ops exceeds the per-request cap of {}",
                req.ops.len(),
                self.config.max_batch_ops
            )));
        }
        if deadline.exceeded() {
            return Err(AppError::DeadlineExceeded);
        }
        let ops = req
            .ops
            .iter()
            .map(|op| {
                let user = UserId::new(op.user);
                let item = ItemId::new(op.item);
                match op.value {
                    Some(value) => WalOp::Rate { user, item, value },
                    None => WalOp::Unrate { user, item },
                }
            })
            .collect();
        self.apply_record(&WalRecord::Batch(ops))
    }

    /// The shared write path: journal + apply the record under the
    /// write lock, and — still under the lock, so readers never observe
    /// the new revision with stale derived state — surgically maintain
    /// the similarity cache and the scan engine from the deltas.
    fn apply_record(&self, record: &WalRecord) -> Result<RateResponse, AppError> {
        let _phase = exrec_obs::profile::phase("ingest_apply");
        let metrics = self.telemetry.metrics();
        self.ingest_requests.fetch_add(1, Ordering::Relaxed);
        metrics.counter("ingest.requests").incr();
        let started = Instant::now();
        let outcome = self
            .world
            .apply(record, |world, deltas| {
                if deltas.is_empty() {
                    return;
                }
                let revision = world.ratings.revision();
                let mut touched: Vec<u32> = deltas.iter().map(|d| d.user.raw()).collect();
                touched.sort_unstable();
                touched.dedup();
                // Similarity is local to its two users: only pairs
                // involving a touched user can change, so the cache
                // survives the write minus exactly those entries.
                if let Some(cache) = self.model.cache() {
                    cache.invalidate_users(&touched, revision);
                }
                // The engine buffers the deltas and patches its CSR
                // snapshot / candidate index incrementally on the next
                // scan (full rebuild only past the drift threshold).
                if let Some((engine, _)) = self.model.engine() {
                    engine.notify_deltas(deltas);
                }
            })
            .map_err(|e| {
                self.ingest_rejected.fetch_add(1, Ordering::Relaxed);
                metrics.counter("ingest.rejected").incr();
                Self::map_write_error(&e)
            })?;
        self.ingest_applied
            .fetch_add(outcome.applied, Ordering::Relaxed);
        metrics.counter("ingest.ops_applied").add(outcome.applied);
        metrics
            .histogram("ingest.apply_ns")
            .record(started.elapsed());
        let journaled = self.config.wal_path.is_some();
        if journaled {
            metrics
                .histogram("ingest.wal_append_ns")
                .record_ns(outcome.wal_append_ns);
            self.refresh_wal_gauges();
        }
        Ok(RateResponse {
            applied: outcome.applied,
            ops: outcome.ops,
            revision: outcome.revision,
            wal_append_ns: outcome.wal_append_ns,
            wal_size_bytes: journaled.then_some(outcome.wal_size_bytes),
        })
    }

    /// Maps a data-layer write failure onto the HTTP-facing error.
    fn map_write_error(e: &Error) -> AppError {
        match e {
            Error::InvalidRating { .. } => AppError::Unprocessable(e.to_string()),
            Error::UnknownUser { .. } | Error::UnknownItem { .. } => {
                AppError::NotFound(e.to_string())
            }
            other => AppError::Internal(other.to_string()),
        }
    }

    /// Publishes the journal's current shape as `wal.*` gauges.
    fn refresh_wal_gauges(&self) {
        if let Some(stats) = self.world.wal_stats() {
            let metrics = self.telemetry.metrics();
            metrics.gauge("wal.size_bytes").set(stats.size_bytes as f64);
            metrics.gauge("wal.records").set(stats.records as f64);
            metrics.gauge("wal.replayed").set(stats.replayed as f64);
            metrics
                .gauge("wal.truncated_bytes")
                .set(stats.truncated_bytes as f64);
        }
    }

    /// Compacts the journal (snapshot beside the WAL, then empty the
    /// log); the `serve` binary runs this after a clean drain. `None`
    /// without a journal.
    ///
    /// # Errors
    ///
    /// [`Error::Io`] on snapshot or truncation failure.
    pub fn compact(&self) -> Result<Option<PathBuf>, Error> {
        let compacted = self.world.compact()?;
        if compacted.is_some() {
            self.telemetry.metrics().counter("wal.compactions").incr();
            self.refresh_wal_gauges();
        }
        Ok(compacted)
    }

    /// Journal stats for `/debug/ingest`; `None` without `--wal-path`.
    pub fn wal_stats(&self) -> Option<WalStats> {
        self.world.wal_stats()
    }

    /// The journal path in effect, if any.
    pub fn wal_path(&self) -> Option<&Path> {
        self.config.wal_path.as_deref()
    }

    /// Whether startup warm-restarted from a compaction snapshot.
    pub fn snapshot_loaded(&self) -> bool {
        self.snapshot_loaded
    }

    /// Lifetime ingest counts: `(requests, deltas applied, rejected)`.
    pub fn ingest_counts(&self) -> (u64, u64, u64) {
        (
            self.ingest_requests.load(Ordering::Relaxed),
            self.ingest_applied.load(Ordering::Relaxed),
            self.ingest_rejected.load(Ordering::Relaxed),
        )
    }

    /// Measures one sampled explanation, feeds the live estimator,
    /// attributes the score to the request's phase collector, and
    /// folds the interface's rolling means back into the quality book.
    fn record_quality(
        &self,
        ratings: &RatingsMatrix,
        interface: InterfaceId,
        explanation: &Explanation,
        evidence: &exrec_algo::ModelEvidence,
        user: UserId,
    ) {
        let _phase = exrec_obs::profile::phase("quality_probe");
        let baseline = ratings
            .user_mean(user)
            .unwrap_or_else(|| ratings.global_mean());
        let span = ratings.scale().span();
        let probe = QualityProbe::measure(explanation, evidence, baseline, span);
        let sample = QualitySample {
            interface: interface.key(),
            aims: explanation
                .aims
                .iter()
                .map(|a| a.name().to_ascii_lowercase())
                .collect(),
            fidelity: probe.fidelity,
            coverage: probe.coverage,
            provenance_depth: probe.provenance_depth,
            score: probe.score(),
        };
        self.monitor.observe(&sample);
        exrec_obs::profile::quality_sample(sample.score);
        let snapshot = self.monitor.snapshot();
        if let Some(stat) = snapshot
            .interfaces
            .iter()
            .find(|s| s.name == sample.interface)
        {
            self.book.refresh(
                &stat.name,
                stat.fidelity,
                stat.coverage,
                stat.provenance_depth,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn app() -> ExplainApp {
        ExplainApp::new(
            AppConfig {
                n_users: 60,
                n_items: 40,
                density: 0.3,
                ..AppConfig::default()
            },
            Telemetry::default(),
        )
    }

    fn recommend_req(users: Vec<u32>) -> RecommendRequest {
        RecommendRequest {
            users,
            n: Some(3),
            interface: None,
            explain: Some(true),
            deadline_ms: None,
            inject_panic: None,
            inject_delay_ms: None,
        }
    }

    #[test]
    fn recommend_shapes_explained_results() {
        let app = app();
        let resp = app
            .recommend(&recommend_req(vec![0, 1, 2]), Deadline::after_ms(60_000))
            .unwrap();
        assert_eq!(resp.results.len(), 3);
        for (idx, per_user) in resp.results.iter().enumerate() {
            assert_eq!(per_user.user, idx as u32);
            for item in &per_user.items {
                assert!((item.item as usize) < app.n_items());
                assert!(item.confidence >= 0.0 && item.confidence <= 1.0);
                let explanation = item.explanation.as_ref().expect("explain=true");
                assert_eq!(explanation.interface, "clustered_histogram");
                assert!(!explanation.text.is_empty());
                assert!(!explanation.aims.is_empty());
            }
        }
    }

    #[test]
    fn recommend_validates_inputs() {
        let app = app();
        let far = Deadline::after_ms(60_000);
        assert!(matches!(
            app.recommend(&recommend_req(vec![]), far),
            Err(AppError::BadRequest(_))
        ));
        assert!(matches!(
            app.recommend(&recommend_req(vec![9_999]), far),
            Err(AppError::NotFound(_))
        ));
        let mut bad_interface = recommend_req(vec![0]);
        bad_interface.interface = Some("nope".to_owned());
        assert!(matches!(
            app.recommend(&bad_interface, far),
            Err(AppError::BadRequest(_))
        ));
        let mut bad_n = recommend_req(vec![0]);
        bad_n.n = Some(0);
        assert!(matches!(
            app.recommend(&bad_n, far),
            Err(AppError::BadRequest(_))
        ));
    }

    #[test]
    fn spent_deadline_stops_work() {
        let app = app();
        let spent = Deadline::from(Instant::now() - Duration::from_millis(10), 1);
        assert!(matches!(
            app.recommend(&recommend_req(vec![0, 1]), spent),
            Err(AppError::DeadlineExceeded)
        ));
    }

    #[test]
    fn explain_returns_rendered_explanation_and_counts_aims() {
        let telemetry = Telemetry::default();
        let app = ExplainApp::new(
            AppConfig {
                n_users: 60,
                n_items: 40,
                density: 0.3,
                ..AppConfig::default()
            },
            telemetry.clone(),
        );
        let resp = app
            .explain(
                &ExplainRequest {
                    user: 0,
                    item: 1,
                    interface: Some("item_average".to_owned()),
                    aim: None,
                    deadline_ms: None,
                    inject_panic: None,
                    inject_delay_ms: None,
                },
                Deadline::after_ms(60_000),
            )
            .unwrap();
        assert_eq!(resp.user, 0);
        assert_eq!(resp.item, 1);
        assert_eq!(resp.explanation.interface, "item_average");
        assert!(!resp.explanation.text.is_empty());
        let report = telemetry.report();
        let aim_counts: u64 = report
            .counters
            .iter()
            .filter(|(k, _)| k.starts_with("serve.aims."))
            .map(|(_, v)| v)
            .sum();
        assert!(aim_counts > 0, "edge aim counters recorded");
    }

    #[test]
    fn wal_tail_replay_restores_the_world_without_a_snapshot() {
        use crate::proto::RateOpBody;
        let dir = std::env::temp_dir().join(format!("exrec-serve-app-wal-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let config = AppConfig {
            n_users: 60,
            n_items: 40,
            density: 0.3,
            wal_path: Some(dir.join("app.wal")),
            ..AppConfig::default()
        };
        let far = Deadline::after_ms(60_000);
        let recommend = recommend_req(vec![0, 1, 5]);

        let first = ExplainApp::new(config.clone(), Telemetry::default());
        let rated = first
            .rate(
                &RateRequest {
                    user: 5,
                    item: 9,
                    value: Some(5.0),
                    deadline_ms: None,
                },
                far,
            )
            .unwrap();
        assert_eq!(rated.applied, 1);
        assert!(rated.wal_size_bytes.unwrap() > 0);
        first
            .rate_batch(
                &RateBatchRequest {
                    ops: vec![
                        RateOpBody {
                            user: 1,
                            item: 2,
                            value: Some(4.0),
                        },
                        RateOpBody {
                            user: 5,
                            item: 9,
                            value: None,
                        },
                    ],
                    deadline_ms: None,
                },
                far,
            )
            .unwrap();
        let n_ratings = first.n_ratings();
        let served = first.recommend(&recommend, far).unwrap();
        // Dropped without compaction: the crash case. Recovery must
        // come from the WAL tail alone.
        drop(first);

        let second = ExplainApp::new(config, Telemetry::default());
        assert!(!second.snapshot_loaded(), "no compaction ran");
        assert_eq!(second.wal_stats().unwrap().replayed, 2);
        assert_eq!(second.n_ratings(), n_ratings);
        let recovered = second.recommend(&recommend, far).unwrap();
        assert_eq!(
            serde_json::to_string(&recovered).unwrap(),
            serde_json::to_string(&served).unwrap(),
            "replayed world must serve bit-identical recommendations"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fault_fields_rejected_unless_enabled() {
        let app = app();
        let mut req = recommend_req(vec![0]);
        req.inject_panic = Some(true);
        assert!(matches!(
            app.recommend(&req, Deadline::after_ms(1_000)),
            Err(AppError::BadRequest(_))
        ));
    }
}

//! The application behind the HTTP edge: a synthetic world, a cached
//! k-NN model and the explanation engine, shaped into wire responses.
//!
//! Everything the handlers do is a thin adapter over existing pipeline
//! pieces: ranking goes through `BatchPool::recommend_batch`, explained
//! ranking through [`Explainer::recommend_explained_batch`], single-pair
//! explanations through [`Explainer::explain`]. The app adds the
//! serving-boundary concerns those APIs deliberately do not have:
//! request validation, deadline checks between work units, per-aim edge
//! telemetry, and (test-gated) fault injection.

use std::sync::Arc;
use std::time::{Duration, Instant};

use exrec_algo::batch::BatchPool;
use exrec_algo::cache::{CacheConfig, SimilarityCache};
use exrec_algo::{
    Ctx, IndexConfig, KernelConfig, ScanEngine, ScanMode, ScanStats, Scored, UserKnn,
};
use exrec_core::aims::Aim;
use exrec_core::engine::Explainer;
use exrec_core::explanation::Explanation;
use exrec_core::interfaces::InterfaceId;
use exrec_core::render::{PlainRenderer, Render};
use exrec_core::QualityProbe;
use exrec_data::synth::{movies, WorldConfig};
use exrec_data::World;
use exrec_obs::{QualityMonitor, QualitySample, Telemetry};
use exrec_registry::QualityBook;
use exrec_types::{ItemId, UserId};

use crate::proto::{
    ExplainRequest, ExplainResponse, ExplanationBody, RecommendRequest, RecommendResponse,
    ScoredItem, UserRecommendations,
};

/// A per-request time budget, measured from admission.
#[derive(Debug, Clone, Copy)]
pub struct Deadline {
    at: Instant,
}

impl Deadline {
    /// A deadline `ms` milliseconds after `start`.
    pub fn from(start: Instant, ms: u64) -> Self {
        Deadline {
            at: start + Duration::from_millis(ms),
        }
    }

    /// A deadline `ms` milliseconds from now.
    pub fn after_ms(ms: u64) -> Self {
        Deadline::from(Instant::now(), ms)
    }

    /// Whether the budget is spent.
    pub fn exceeded(&self) -> bool {
        Instant::now() >= self.at
    }
}

/// How a request failed inside the app; the server maps these onto HTTP
/// status codes (see `docs/serving.md`).
#[derive(Debug)]
pub enum AppError {
    /// Malformed or out-of-policy request → 400.
    BadRequest(String),
    /// A referenced user or item does not exist → 404.
    NotFound(String),
    /// The pair is valid but no explanation/prediction can be produced
    /// (e.g. the interface's evidence needs are unmet) → 422.
    Unprocessable(String),
    /// The per-request deadline elapsed before completion → 504.
    DeadlineExceeded,
}

/// Configuration of the serving application.
#[derive(Debug, Clone)]
pub struct AppConfig {
    /// Synthetic-world user count.
    pub n_users: usize,
    /// Synthetic-world item count.
    pub n_items: usize,
    /// Synthetic-world rating density.
    pub density: f64,
    /// World RNG seed (equal seeds serve identical answers).
    pub seed: u64,
    /// Interface used when a request does not name one.
    pub default_interface: InterfaceId,
    /// Top-k size when a request does not name one.
    pub default_n: usize,
    /// Per-request caps: most users per recommend call…
    pub max_batch_users: usize,
    /// …and largest top-k size.
    pub max_n: usize,
    /// Threads in the shared intra-request batch pool (`0` = cores).
    pub pool_threads: usize,
    /// Honour `inject_panic` / `inject_delay_ms` request fields. Test
    /// harnesses only; off by default.
    pub fault_injection: bool,
    /// Quality-sample one `/v1/explain` request in this many (`0`
    /// disables live quality estimation, `1` samples every request).
    pub quality_sample_every: u64,
    /// Explanation pairs sampled per interface by the startup scoring
    /// pass that seeds the aim-fit quality book.
    pub quality_pairs: usize,
    /// Serve every request through the exact tiled scan instead of the
    /// pruned candidate index (the `--exact` flag; see
    /// `docs/kernels.md#pruned-probing`).
    pub exact: bool,
}

impl Default for AppConfig {
    fn default() -> Self {
        AppConfig {
            n_users: 2_000,
            n_items: 300,
            density: 0.05,
            seed: 0xEC,
            default_interface: InterfaceId::ClusteredHistogram,
            default_n: 10,
            max_batch_users: 256,
            max_n: 100,
            pool_threads: 0,
            fault_injection: false,
            quality_sample_every: 8,
            quality_pairs: 16,
            exact: false,
        }
    }
}

/// The serving application: owns the data, model and batch pool the
/// worker threads share.
pub struct ExplainApp {
    config: AppConfig,
    world: World,
    model: UserKnn,
    pool: BatchPool,
    telemetry: Telemetry,
    /// Measured per-interface quality on the served world, seeded by a
    /// startup scoring pass and refreshed by the live estimator.
    book: QualityBook,
    /// The 1-in-N online quality estimator behind `quality.*` metrics.
    monitor: QualityMonitor,
}

impl ExplainApp {
    /// Generates the world and builds the cached model. Expensive
    /// (world generation); call once at startup.
    pub fn new(config: AppConfig, telemetry: Telemetry) -> Self {
        let world = movies::generate(&WorldConfig {
            n_users: config.n_users,
            n_items: config.n_items,
            density: config.density,
            seed: config.seed,
            ..WorldConfig::default()
        });
        let cache = Arc::new(SimilarityCache::instrumented(
            CacheConfig::default(),
            telemetry.metrics(),
            "serve",
        ));
        // The scan engine replaces the seed's dense per-request user
        // sweep: pruned candidate probing by default, the exact tiled
        // kernel under `--exact` (both revision-keyed like the cache).
        let engine = Arc::new(ScanEngine::instrumented(
            KernelConfig::default(),
            IndexConfig::default(),
            telemetry.metrics(),
            "serve",
        ));
        let mode = if config.exact {
            ScanMode::Exact
        } else {
            ScanMode::Pruned
        };
        let model = UserKnn::default()
            .with_cache(cache)
            .with_engine(engine, mode);
        let pool = BatchPool::new(config.pool_threads).with_telemetry(telemetry.clone());
        // Seed the aim-fit book by scoring every interface against the
        // world and model actually served — the same pass the offline
        // suite runs, sized down by `quality_pairs`.
        let book = QualityBook::from_interfaces(exrec_eval::quality::score_interfaces(
            &world,
            &model,
            &exrec_eval::quality::QualityConfig {
                sample_pairs: config.quality_pairs,
                ..exrec_eval::quality::QualityConfig::default()
            },
        ));
        let monitor = QualityMonitor::new(
            telemetry.clone(),
            exrec_obs::quality::QualityConfig {
                sample_every: config.quality_sample_every,
                ..exrec_obs::quality::QualityConfig::default()
            },
        );
        ExplainApp {
            config,
            world,
            model,
            pool,
            telemetry,
            book,
            monitor,
        }
    }

    /// The app's configuration.
    pub fn config(&self) -> &AppConfig {
        &self.config
    }

    /// Number of users in the served world (valid ids are `0..n`).
    pub fn n_users(&self) -> usize {
        self.world.ratings.n_users()
    }

    /// Number of items in the served catalog (valid ids are `0..n`).
    pub fn n_items(&self) -> usize {
        self.world.catalog.len()
    }

    /// Number of observed ratings in the served world.
    pub fn n_ratings(&self) -> usize {
        self.world.ratings.n_ratings()
    }

    /// Current ratings-matrix revision (bumps on mutation; keys the
    /// similarity cache's validity).
    pub fn ratings_revision(&self) -> u64 {
        self.world.ratings.revision()
    }

    /// Resolved thread count of the shared intra-request batch pool.
    pub fn pool_threads(&self) -> usize {
        self.pool.threads()
    }

    /// Stable name of the serving model (e.g. `"user-knn"`).
    pub fn model_name(&self) -> &'static str {
        use exrec_algo::Recommender as _;
        self.model.name()
    }

    /// Similarity-cache statistics plus total capacity, for `/healthz`
    /// occupancy fields and `GET /debug/world`. `None` when the model
    /// runs uncached.
    pub fn cache_stats(&self) -> Option<(exrec_algo::cache::CacheStats, usize)> {
        self.model
            .cache()
            .map(|cache| (cache.stats(), cache.capacity()))
    }

    /// Stable name of the neighbour-scan mode actually serving
    /// (`"exact"` / `"pruned"`; `"brute"` would mean no engine).
    pub fn scan_mode(&self) -> &'static str {
        self.model.scan_mode_name()
    }

    /// Point-in-time scan-engine statistics for `GET /debug/world`;
    /// `None` when the model runs the brute per-pair path.
    pub fn scan_stats(&self) -> Option<ScanStats> {
        self.model.engine().map(|(engine, _)| engine.stats())
    }

    /// The measured per-interface quality book behind aim-fit
    /// selection and `GET /debug/quality`.
    pub fn quality_book(&self) -> &QualityBook {
        &self.book
    }

    /// The live quality estimator (`quality.*` metrics, sustained-drop
    /// detection, `GET /debug/quality`'s `online` section).
    pub fn quality_monitor(&self) -> &QualityMonitor {
        &self.monitor
    }

    /// Runs the (test-gated) fault hooks shared by both POST endpoints.
    fn fault_hooks(
        &self,
        inject_panic: Option<bool>,
        inject_delay_ms: Option<u64>,
        deadline: Deadline,
    ) -> Result<(), AppError> {
        if inject_panic.is_none() && inject_delay_ms.is_none() {
            return Ok(());
        }
        if !self.config.fault_injection {
            return Err(AppError::BadRequest(
                "fault-injection fields require the server's --fault-injection flag".to_owned(),
            ));
        }
        if inject_panic == Some(true) {
            panic!("injected handler panic (fault-injection)");
        }
        if let Some(ms) = inject_delay_ms {
            let until = Instant::now() + Duration::from_millis(ms);
            while Instant::now() < until {
                if deadline.exceeded() {
                    return Err(AppError::DeadlineExceeded);
                }
                std::thread::sleep(Duration::from_millis(2));
            }
        }
        Ok(())
    }

    /// Resolves an optional interface key against the catalog.
    fn resolve_interface(&self, key: Option<&str>) -> Result<InterfaceId, AppError> {
        match key {
            None => Ok(self.config.default_interface),
            Some(key) => InterfaceId::from_key(key)
                .ok_or_else(|| AppError::BadRequest(format!("unknown interface {key:?}"))),
        }
    }

    /// Resolves an optional lowercased aim name against the taxonomy.
    fn resolve_aim(&self, key: Option<&str>) -> Result<Option<Aim>, AppError> {
        let Some(key) = key else {
            return Ok(None);
        };
        let lowered = key.to_ascii_lowercase();
        Aim::ALL
            .into_iter()
            .find(|a| a.name().to_ascii_lowercase() == lowered)
            .map(Some)
            .ok_or_else(|| AppError::BadRequest(format!("unknown aim {key:?}")))
    }

    /// Validates a raw user id against the served world.
    fn user(&self, raw: u32) -> Result<UserId, AppError> {
        if (raw as usize) < self.n_users() {
            Ok(UserId::new(raw))
        } else {
            Err(AppError::NotFound(format!(
                "user {raw} outside 0..{}",
                self.n_users()
            )))
        }
    }

    /// Validates a raw item id against the served catalog.
    fn item(&self, raw: u32) -> Result<ItemId, AppError> {
        if (raw as usize) < self.n_items() {
            Ok(ItemId::new(raw))
        } else {
            Err(AppError::NotFound(format!(
                "item {raw} outside 0..{}",
                self.n_items()
            )))
        }
    }

    /// Counts one served explanation's aims at the edge
    /// (`serve.aims.<aim>` counters).
    fn count_aims(&self, explanation: &Explanation) {
        let metrics = self.telemetry.metrics();
        for aim in explanation.aims.iter() {
            metrics
                .counter(&format!("serve.aims.{}", aim.name().to_ascii_lowercase()))
                .incr();
        }
    }

    /// Flattens an explanation for the wire.
    fn shape_explanation(&self, explanation: &Explanation) -> ExplanationBody {
        // The presentation-render phase of the request profile: aims
        // accounting plus the plain-text document rendering.
        let _phase = exrec_obs::profile::phase("render");
        self.count_aims(explanation);
        ExplanationBody {
            interface: explanation.interface.to_owned(),
            style: explanation.style.name().to_owned(),
            aims: explanation
                .aims
                .iter()
                .map(|a| a.name().to_ascii_lowercase())
                .collect(),
            text: PlainRenderer.render(explanation),
        }
    }

    fn shape_scored(scored: &Scored, explanation: Option<ExplanationBody>) -> ScoredItem {
        ScoredItem {
            item: scored.item.raw(),
            score: scored.prediction.score,
            confidence: scored.prediction.confidence.value(),
            explanation,
        }
    }

    /// Handles `POST /v1/recommend`.
    ///
    /// # Errors
    ///
    /// [`AppError::BadRequest`] on empty/oversized batches, bad `n` or
    /// an unknown interface key; [`AppError::NotFound`] for out-of-world
    /// user ids; [`AppError::DeadlineExceeded`] when the budget elapses
    /// between work units.
    pub fn recommend(
        &self,
        req: &RecommendRequest,
        deadline: Deadline,
    ) -> Result<RecommendResponse, AppError> {
        self.fault_hooks(req.inject_panic, req.inject_delay_ms, deadline)?;
        if req.users.is_empty() {
            return Err(AppError::BadRequest("users must be non-empty".to_owned()));
        }
        if req.users.len() > self.config.max_batch_users {
            return Err(AppError::BadRequest(format!(
                "{} users exceeds the per-request cap of {}",
                req.users.len(),
                self.config.max_batch_users
            )));
        }
        let n = req.n.unwrap_or(self.config.default_n);
        if n == 0 || n > self.config.max_n {
            return Err(AppError::BadRequest(format!(
                "n must be in 1..={}",
                self.config.max_n
            )));
        }
        let interface = self.resolve_interface(req.interface.as_deref())?;
        let users: Vec<UserId> = req
            .users
            .iter()
            .map(|&raw| self.user(raw))
            .collect::<Result<_, _>>()?;
        let explain = req.explain.unwrap_or(false);
        let ctx = Ctx::new(&self.world.ratings, &self.world.catalog);

        // Deadlines are checked between pool-sized chunks: a worker can
        // not abandon a user mid-score, but an overrunning batch stops
        // at the next chunk boundary instead of running to completion.
        let chunk_size = (self.pool.threads().max(1)) * 2;
        let mut results = Vec::with_capacity(users.len());
        for chunk in users.chunks(chunk_size) {
            if deadline.exceeded() {
                return Err(AppError::DeadlineExceeded);
            }
            if explain {
                let explainer =
                    Explainer::new(&self.model, interface).with_telemetry(self.telemetry.clone());
                let per_user = explainer.recommend_explained_batch(&ctx, &self.pool, chunk, n);
                for (&user, items) in chunk.iter().zip(per_user) {
                    results.push(UserRecommendations {
                        user: user.raw(),
                        items: items
                            .iter()
                            .map(|(scored, explanation)| {
                                Self::shape_scored(
                                    scored,
                                    Some(self.shape_explanation(explanation)),
                                )
                            })
                            .collect(),
                    });
                }
            } else {
                let per_user = self.pool.recommend_batch(&self.model, &ctx, chunk, n);
                for (&user, items) in chunk.iter().zip(per_user) {
                    results.push(UserRecommendations {
                        user: user.raw(),
                        items: items.iter().map(|s| Self::shape_scored(s, None)).collect(),
                    });
                }
            }
        }
        Ok(RecommendResponse { results })
    }

    /// Handles `POST /v1/explain`.
    ///
    /// # Errors
    ///
    /// [`AppError::BadRequest`] for unknown interface keys,
    /// [`AppError::NotFound`] for out-of-world ids,
    /// [`AppError::Unprocessable`] when prediction or explanation
    /// generation fails for the pair, [`AppError::DeadlineExceeded`]
    /// when the budget is already spent.
    pub fn explain(
        &self,
        req: &ExplainRequest,
        deadline: Deadline,
    ) -> Result<ExplainResponse, AppError> {
        self.fault_hooks(req.inject_panic, req.inject_delay_ms, deadline)?;
        let aim = self.resolve_aim(req.aim.as_deref())?;
        // An explicit interface always wins; an aim alone selects the
        // measurably best-fitting interface from the quality book.
        let interface = match (req.interface.as_deref(), aim) {
            (Some(key), _) => self.resolve_interface(Some(key))?,
            (None, Some(aim)) => self
                .book
                .select_or_default(aim)
                .unwrap_or(self.config.default_interface),
            (None, None) => self.config.default_interface,
        };
        let user = self.user(req.user)?;
        let item = self.item(req.item)?;
        if deadline.exceeded() {
            return Err(AppError::DeadlineExceeded);
        }
        let ctx = Ctx::new(&self.world.ratings, &self.world.catalog);
        let explainer =
            Explainer::new(&self.model, interface).with_telemetry(self.telemetry.clone());
        let aim_echo = aim.map(|a| a.name().to_ascii_lowercase());
        // On sampled requests the evidence-carrying path runs so the
        // quality probe can measure coverage/fidelity on data already
        // in hand; unsampled requests keep the lean path.
        if self.monitor.should_sample() {
            match explainer.explain_with_evidence(&ctx, user, item) {
                Ok((prediction, explanation, evidence)) => {
                    self.record_quality(interface, &explanation, &evidence, user);
                    Ok(ExplainResponse {
                        user: req.user,
                        item: req.item,
                        score: prediction.score,
                        confidence: prediction.confidence.value(),
                        aim: aim_echo,
                        explanation: self.shape_explanation(&explanation),
                    })
                }
                Err(e) => Err(AppError::Unprocessable(e.to_string())),
            }
        } else {
            match explainer.explain(&ctx, user, item) {
                Ok((prediction, explanation)) => Ok(ExplainResponse {
                    user: req.user,
                    item: req.item,
                    score: prediction.score,
                    confidence: prediction.confidence.value(),
                    aim: aim_echo,
                    explanation: self.shape_explanation(&explanation),
                }),
                // MissingEvidence (interface/model mismatch) and
                // NoPrediction (cold pair) are both "valid ids, no
                // answer": 422.
                Err(e) => Err(AppError::Unprocessable(e.to_string())),
            }
        }
    }

    /// Measures one sampled explanation, feeds the live estimator,
    /// attributes the score to the request's phase collector, and
    /// folds the interface's rolling means back into the quality book.
    fn record_quality(
        &self,
        interface: InterfaceId,
        explanation: &Explanation,
        evidence: &exrec_algo::ModelEvidence,
        user: UserId,
    ) {
        let _phase = exrec_obs::profile::phase("quality_probe");
        let baseline = self
            .world
            .ratings
            .user_mean(user)
            .unwrap_or_else(|| self.world.ratings.global_mean());
        let span = self.world.ratings.scale().span();
        let probe = QualityProbe::measure(explanation, evidence, baseline, span);
        let sample = QualitySample {
            interface: interface.key(),
            aims: explanation
                .aims
                .iter()
                .map(|a| a.name().to_ascii_lowercase())
                .collect(),
            fidelity: probe.fidelity,
            coverage: probe.coverage,
            provenance_depth: probe.provenance_depth,
            score: probe.score(),
        };
        self.monitor.observe(&sample);
        exrec_obs::profile::quality_sample(sample.score);
        let snapshot = self.monitor.snapshot();
        if let Some(stat) = snapshot
            .interfaces
            .iter()
            .find(|s| s.name == sample.interface)
        {
            self.book.refresh(
                &stat.name,
                stat.fidelity,
                stat.coverage,
                stat.provenance_depth,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn app() -> ExplainApp {
        ExplainApp::new(
            AppConfig {
                n_users: 60,
                n_items: 40,
                density: 0.3,
                ..AppConfig::default()
            },
            Telemetry::default(),
        )
    }

    fn recommend_req(users: Vec<u32>) -> RecommendRequest {
        RecommendRequest {
            users,
            n: Some(3),
            interface: None,
            explain: Some(true),
            deadline_ms: None,
            inject_panic: None,
            inject_delay_ms: None,
        }
    }

    #[test]
    fn recommend_shapes_explained_results() {
        let app = app();
        let resp = app
            .recommend(&recommend_req(vec![0, 1, 2]), Deadline::after_ms(60_000))
            .unwrap();
        assert_eq!(resp.results.len(), 3);
        for (idx, per_user) in resp.results.iter().enumerate() {
            assert_eq!(per_user.user, idx as u32);
            for item in &per_user.items {
                assert!((item.item as usize) < app.n_items());
                assert!(item.confidence >= 0.0 && item.confidence <= 1.0);
                let explanation = item.explanation.as_ref().expect("explain=true");
                assert_eq!(explanation.interface, "clustered_histogram");
                assert!(!explanation.text.is_empty());
                assert!(!explanation.aims.is_empty());
            }
        }
    }

    #[test]
    fn recommend_validates_inputs() {
        let app = app();
        let far = Deadline::after_ms(60_000);
        assert!(matches!(
            app.recommend(&recommend_req(vec![]), far),
            Err(AppError::BadRequest(_))
        ));
        assert!(matches!(
            app.recommend(&recommend_req(vec![9_999]), far),
            Err(AppError::NotFound(_))
        ));
        let mut bad_interface = recommend_req(vec![0]);
        bad_interface.interface = Some("nope".to_owned());
        assert!(matches!(
            app.recommend(&bad_interface, far),
            Err(AppError::BadRequest(_))
        ));
        let mut bad_n = recommend_req(vec![0]);
        bad_n.n = Some(0);
        assert!(matches!(
            app.recommend(&bad_n, far),
            Err(AppError::BadRequest(_))
        ));
    }

    #[test]
    fn spent_deadline_stops_work() {
        let app = app();
        let spent = Deadline::from(Instant::now() - Duration::from_millis(10), 1);
        assert!(matches!(
            app.recommend(&recommend_req(vec![0, 1]), spent),
            Err(AppError::DeadlineExceeded)
        ));
    }

    #[test]
    fn explain_returns_rendered_explanation_and_counts_aims() {
        let telemetry = Telemetry::default();
        let app = ExplainApp::new(
            AppConfig {
                n_users: 60,
                n_items: 40,
                density: 0.3,
                ..AppConfig::default()
            },
            telemetry.clone(),
        );
        let resp = app
            .explain(
                &ExplainRequest {
                    user: 0,
                    item: 1,
                    interface: Some("item_average".to_owned()),
                    aim: None,
                    deadline_ms: None,
                    inject_panic: None,
                    inject_delay_ms: None,
                },
                Deadline::after_ms(60_000),
            )
            .unwrap();
        assert_eq!(resp.user, 0);
        assert_eq!(resp.item, 1);
        assert_eq!(resp.explanation.interface, "item_average");
        assert!(!resp.explanation.text.is_empty());
        let report = telemetry.report();
        let aim_counts: u64 = report
            .counters
            .iter()
            .filter(|(k, _)| k.starts_with("serve.aims."))
            .map(|(_, v)| v)
            .sum();
        assert!(aim_counts > 0, "edge aim counters recorded");
    }

    #[test]
    fn fault_fields_rejected_unless_enabled() {
        let app = app();
        let mut req = recommend_req(vec![0]);
        req.inject_panic = Some(true);
        assert!(matches!(
            app.recommend(&req, Deadline::after_ms(1_000)),
            Err(AppError::BadRequest(_))
        ));
    }
}

//! The bounded MPMC admission queue between acceptor and workers.
//!
//! The unbounded channel in `exrec_algo::batch` is right for a batch
//! whose size is known up front; a network edge needs the opposite: a
//! *bounded* queue whose full state is the load-shedding signal. The
//! acceptor calls [`Bounded::try_push`] and turns `Full` into an HTTP
//! 429; workers block in [`Bounded::pop`]; shutdown closes the queue,
//! which lets workers drain whatever was admitted and then exit — the
//! graceful-drain half of the shutdown story.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Why [`Bounded::try_push`] rejected an item (the item is returned so
/// the caller can still respond on the connection it carries).
#[derive(Debug)]
pub enum PushError<T> {
    /// The queue is at capacity — the admission-control signal.
    Full(T),
    /// The queue was closed by shutdown; nothing is admitted anymore.
    Closed(T),
}

/// Outcome of [`Bounded::pop_timeout`].
#[derive(Debug, PartialEq, Eq)]
pub enum Popped<T> {
    /// An item was dequeued.
    Item(T),
    /// The wait elapsed with the queue still open and empty — the
    /// caller's chance to do periodic work (the cooperative sampler
    /// tick) before waiting again.
    TimedOut,
    /// Closed *and* drained: the worker's exit signal, identical to
    /// [`Bounded::pop`] returning `None`.
    Closed,
}

struct State<T> {
    queue: VecDeque<T>,
    closed: bool,
}

/// A bounded, blocking MPMC queue with explicit close semantics.
pub struct Bounded<T> {
    state: Mutex<State<T>>,
    ready: Condvar,
    capacity: usize,
}

impl<T> Bounded<T> {
    /// A queue admitting at most `capacity` items (minimum 1).
    pub fn new(capacity: usize) -> Self {
        Bounded {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current depth (racy by nature; for gauges and tests).
    pub fn len(&self) -> usize {
        self.state
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .queue
            .len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Attempts to enqueue without blocking. On success returns the new
    /// depth; a `Full` error is the signal to shed load.
    pub fn try_push(&self, item: T) -> Result<usize, PushError<T>> {
        let mut state = self.state.lock().unwrap_or_else(|p| p.into_inner());
        if state.closed {
            return Err(PushError::Closed(item));
        }
        if state.queue.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        state.queue.push_back(item);
        let depth = state.queue.len();
        drop(state);
        self.ready.notify_one();
        Ok(depth)
    }

    /// Dequeues the next item, blocking while the queue is empty.
    /// Returns `None` once the queue is closed *and* drained — the
    /// workers' exit signal.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.state.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            if let Some(item) = state.queue.pop_front() {
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.ready.wait(state).unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Like [`Bounded::pop`], but waits at most `timeout` for an item.
    /// Drain semantics are identical: while the queue holds items it
    /// returns them even after close, and [`Popped::Closed`] only fires
    /// once closed *and* empty. [`Popped::TimedOut`] is what lets an
    /// idle worker pool still drive periodic work (time-series ticks)
    /// with no free-running thread.
    pub fn pop_timeout(&self, timeout: Duration) -> Popped<T> {
        let deadline = Instant::now() + timeout;
        let mut state = self.state.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            if let Some(item) = state.queue.pop_front() {
                return Popped::Item(item);
            }
            if state.closed {
                return Popped::Closed;
            }
            let now = Instant::now();
            if now >= deadline {
                return Popped::TimedOut;
            }
            let (guard, _result) = self
                .ready
                .wait_timeout(state, deadline - now)
                .unwrap_or_else(|p| p.into_inner());
            state = guard;
        }
    }

    /// Closes the queue: future pushes fail, and blocked poppers wake to
    /// drain the remainder and observe `None`.
    pub fn close(&self) {
        let mut state = self.state.lock().unwrap_or_else(|p| p.into_inner());
        state.closed = true;
        drop(state);
        self.ready.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn rejects_when_full_and_after_close() {
        let q = Bounded::new(2);
        assert_eq!(q.try_push(1).unwrap(), 1);
        assert_eq!(q.try_push(2).unwrap(), 2);
        assert!(matches!(q.try_push(3), Err(PushError::Full(3))));
        q.close();
        assert!(matches!(q.try_push(4), Err(PushError::Closed(4))));
    }

    #[test]
    fn close_drains_then_signals_exit() {
        let q = Bounded::new(8);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        q.close();
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn blocked_poppers_wake_on_close() {
        let q = Arc::new(Bounded::<u32>::new(4));
        let waiters: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || q.pop())
            })
            .collect();
        // Give the waiters a moment to block, then close.
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        for w in waiters {
            assert_eq!(w.join().unwrap(), None);
        }
    }

    #[test]
    fn pop_timeout_times_out_drains_and_signals_close() {
        let q = Bounded::new(4);
        // Empty + open: times out (quickly).
        assert_eq!(
            q.pop_timeout(std::time::Duration::from_millis(5)),
            Popped::<u32>::TimedOut
        );
        // Items drain first, even after close.
        q.try_push(7).unwrap();
        q.close();
        assert_eq!(
            q.pop_timeout(std::time::Duration::from_millis(5)),
            Popped::Item(7)
        );
        assert_eq!(
            q.pop_timeout(std::time::Duration::from_millis(5)),
            Popped::Closed
        );
    }

    #[test]
    fn pop_timeout_wakes_on_push() {
        let q = Arc::new(Bounded::<u32>::new(4));
        let waiter = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop_timeout(std::time::Duration::from_secs(10)))
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.try_push(42).unwrap();
        assert_eq!(waiter.join().unwrap(), Popped::Item(42));
    }

    #[test]
    fn mpmc_under_contention_loses_nothing() {
        let q = Arc::new(Bounded::<u64>::new(16));
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(v) = q.pop() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for i in 0..250u64 {
                        let mut item = p * 1_000 + i;
                        // Bounded queue: spin until admitted.
                        loop {
                            match q.try_push(item) {
                                Ok(_) => break,
                                Err(PushError::Full(back)) => {
                                    item = back;
                                    std::thread::yield_now();
                                }
                                Err(PushError::Closed(_)) => panic!("closed early"),
                            }
                        }
                    }
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        q.close();
        let mut all: Vec<u64> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        let mut expected: Vec<u64> = (0..4u64)
            .flat_map(|p| (0..250).map(move |i| p * 1_000 + i))
            .collect();
        expected.sort_unstable();
        assert_eq!(all, expected);
    }
}

//! Minimal HTTP/1.1 framing over `std::net`.
//!
//! The serving edge needs exactly four things from HTTP: parse a request
//! (line + headers + `Content-Length` body), honour keep-alive, write a
//! response with correct framing, and distinguish "peer went away" from
//! "peer sent garbage" from "peer sat idle past the reaping timeout".
//! This module provides those four and nothing else — no chunked
//! encoding, no TLS, no HTTP/2 — because the wire protocol
//! (`docs/serving.md`) only ever exchanges small JSON bodies.

use std::io::{self, BufRead, BufReader, Read, Write};

use serde::Serialize;

/// Hard cap on a single header line, bytes. Longer lines are malformed.
const MAX_HEADER_LINE: usize = 8 * 1024;

/// Hard cap on the number of headers per request.
const MAX_HEADERS: usize = 64;

/// Why reading a request failed.
#[derive(Debug)]
pub enum HttpError {
    /// The socket failed or timed out; `is_timeout` distinguishes the
    /// idle-reaping case.
    Io(io::Error),
    /// The peer sent bytes that do not frame as HTTP/1.1.
    Malformed(String),
    /// The declared body exceeds the server's configured cap.
    BodyTooLarge {
        /// Declared `Content-Length`.
        declared: usize,
        /// Configured maximum.
        limit: usize,
    },
}

impl HttpError {
    /// Whether this is a read timeout — the signal the connection sat
    /// idle past the reaping deadline rather than misbehaving.
    pub fn is_timeout(&self) -> bool {
        matches!(
            self,
            HttpError::Io(e) if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut)
        )
    }
}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> Self {
        HttpError::Io(e)
    }
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Io(e) => write!(f, "i/o: {e}"),
            HttpError::Malformed(detail) => write!(f, "malformed request: {detail}"),
            HttpError::BodyTooLarge { declared, limit } => {
                write!(f, "body of {declared} bytes exceeds limit {limit}")
            }
        }
    }
}

/// A parsed HTTP/1.x request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Upper-cased method (`GET`, `POST`, …).
    pub method: String,
    /// Request target as sent (path + optional query).
    pub path: String,
    /// `1` for HTTP/1.1, `0` for HTTP/1.0.
    pub minor_version: u8,
    /// Header name/value pairs in arrival order; names lower-cased.
    pub headers: Vec<(String, String)>,
    /// Request body (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of the header named `name` (case-insensitive).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the peer wants the connection kept open after the
    /// response: HTTP/1.1 defaults to yes unless `Connection: close`,
    /// HTTP/1.0 defaults to no unless `Connection: keep-alive`.
    pub fn wants_keep_alive(&self) -> bool {
        match self.header("connection").map(str::to_ascii_lowercase) {
            Some(v) if v.contains("close") => false,
            Some(v) if v.contains("keep-alive") => true,
            _ => self.minor_version >= 1,
        }
    }
}

/// Reads one line terminated by `\n`, stripping the trailing `\r\n`.
/// Returns `Ok(None)` on clean EOF before any byte.
fn read_line<R: BufRead>(reader: &mut R) -> Result<Option<String>, HttpError> {
    let mut line = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        match reader.read(&mut byte) {
            Ok(0) => {
                if line.is_empty() {
                    return Ok(None);
                }
                return Err(HttpError::Malformed("EOF mid-line".to_owned()));
            }
            Ok(_) => {
                if byte[0] == b'\n' {
                    if line.last() == Some(&b'\r') {
                        line.pop();
                    }
                    return String::from_utf8(line)
                        .map(Some)
                        .map_err(|_| HttpError::Malformed("non-UTF-8 header line".to_owned()));
                }
                line.push(byte[0]);
                if line.len() > MAX_HEADER_LINE {
                    return Err(HttpError::Malformed("header line too long".to_owned()));
                }
            }
            Err(e) => return Err(HttpError::Io(e)),
        }
    }
}

/// Reads and parses one request off `reader`.
///
/// Returns `Ok(None)` when the peer closed the connection cleanly
/// between requests (the normal keep-alive end).
///
/// # Errors
///
/// [`HttpError::Io`] on socket failure or read timeout (see
/// [`HttpError::is_timeout`]), [`HttpError::Malformed`] on framing
/// violations, [`HttpError::BodyTooLarge`] when `Content-Length`
/// exceeds `max_body`.
pub fn read_request<R: Read>(
    reader: &mut BufReader<R>,
    max_body: usize,
) -> Result<Option<Request>, HttpError> {
    let Some(request_line) = read_line(reader)? else {
        return Ok(None);
    };
    let mut parts = request_line.split_whitespace();
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) => (m.to_ascii_uppercase(), p.to_owned(), v),
        _ => {
            return Err(HttpError::Malformed(format!(
                "bad request line {request_line:?}"
            )))
        }
    };
    let minor_version = match version {
        "HTTP/1.1" => 1,
        "HTTP/1.0" => 0,
        other => {
            return Err(HttpError::Malformed(format!(
                "unsupported version {other:?}"
            )))
        }
    };

    let mut headers = Vec::new();
    loop {
        let line =
            read_line(reader)?.ok_or_else(|| HttpError::Malformed("EOF in headers".to_owned()))?;
        if line.is_empty() {
            break;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::Malformed(format!("header without colon: {line:?}")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_owned()));
        if headers.len() > MAX_HEADERS {
            return Err(HttpError::Malformed("too many headers".to_owned()));
        }
    }

    let content_length = headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .map(|(_, v)| {
            v.parse::<usize>()
                .map_err(|_| HttpError::Malformed(format!("bad content-length {v:?}")))
        })
        .transpose()?
        .unwrap_or(0);
    if content_length > max_body {
        return Err(HttpError::BodyTooLarge {
            declared: content_length,
            limit: max_body,
        });
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).map_err(HttpError::Io)?;

    Ok(Some(Request {
        method,
        path,
        minor_version,
        headers,
        body,
    }))
}

/// An HTTP response ready for the wire.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Body bytes.
    pub body: Vec<u8>,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// `Retry-After` seconds, sent with load-shedding 429s.
    pub retry_after: Option<u64>,
    /// Additional headers, written in order (e.g. `x-exrec-trace-id`).
    pub extra_headers: Vec<(String, String)>,
}

impl Response {
    /// A JSON response serializing `body`.
    pub fn json<T: Serialize>(status: u16, body: &T) -> Response {
        let body = serde_json::to_string(body)
            .unwrap_or_else(|_| "{\"error\":\"serialization\"}".to_owned());
        Response {
            status,
            body: body.into_bytes(),
            content_type: "application/json",
            retry_after: None,
            extra_headers: Vec::new(),
        }
    }

    /// A plain-text response with an explicit content type (the
    /// Prometheus exposition endpoint needs
    /// `text/plain; version=0.0.4`).
    pub fn text(status: u16, body: String, content_type: &'static str) -> Response {
        Response {
            status,
            body: body.into_bytes(),
            content_type,
            retry_after: None,
            extra_headers: Vec::new(),
        }
    }

    /// Attaches a `Retry-After` header (seconds).
    pub fn with_retry_after(mut self, seconds: u64) -> Response {
        self.retry_after = Some(seconds);
        self
    }

    /// Attaches an arbitrary header. Names should be lower-case; values
    /// must not contain CR/LF (the caller controls both here).
    pub fn with_header(mut self, name: &str, value: impl Into<String>) -> Response {
        self.extra_headers.push((name.to_owned(), value.into()));
        self
    }

    /// The reason phrase for the status codes this server emits.
    pub fn reason(status: u16) -> &'static str {
        match status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            413 => "Payload Too Large",
            422 => "Unprocessable Entity",
            429 => "Too Many Requests",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            504 => "Gateway Timeout",
            _ => "Unknown",
        }
    }

    /// Writes the response with correct `Content-Length` framing and a
    /// `Connection` header matching `keep_alive`.
    pub fn write_to<W: Write>(&self, writer: &mut W, keep_alive: bool) -> io::Result<()> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: {}\r\n",
            self.status,
            Response::reason(self.status),
            self.content_type,
            self.body.len(),
            if keep_alive { "keep-alive" } else { "close" },
        );
        if let Some(seconds) = self.retry_after {
            head.push_str(&format!("retry-after: {seconds}\r\n"));
        }
        for (name, value) in &self.extra_headers {
            head.push_str(&format!("{name}: {value}\r\n"));
        }
        head.push_str("\r\n");
        writer.write_all(head.as_bytes())?;
        writer.write_all(&self.body)?;
        writer.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(raw: &str) -> Result<Option<Request>, HttpError> {
        read_request(&mut BufReader::new(Cursor::new(raw.as_bytes())), 1024)
    }

    #[test]
    fn parses_get_with_headers() {
        let req = parse("GET /healthz HTTP/1.1\r\nHost: x\r\nX-Tag: 7\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.header("X-TAG"), Some("7"));
        assert!(req.wants_keep_alive());
        assert!(req.body.is_empty());
    }

    #[test]
    fn parses_post_body_by_content_length() {
        let req = parse("POST /v1/explain HTTP/1.1\r\ncontent-length: 4\r\n\r\nabcd")
            .unwrap()
            .unwrap();
        assert_eq!(req.body, b"abcd");
    }

    #[test]
    fn keep_alive_defaults_by_version() {
        let v11 = parse("GET / HTTP/1.1\r\n\r\n").unwrap().unwrap();
        assert!(v11.wants_keep_alive());
        let v11_close = parse("GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(!v11_close.wants_keep_alive());
        let v10 = parse("GET / HTTP/1.0\r\n\r\n").unwrap().unwrap();
        assert!(!v10.wants_keep_alive());
        let v10_ka = parse("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(v10_ka.wants_keep_alive());
    }

    #[test]
    fn clean_eof_is_none_and_garbage_is_malformed() {
        assert!(parse("").unwrap().is_none());
        assert!(matches!(parse("ZZZ\r\n\r\n"), Err(HttpError::Malformed(_))));
        assert!(matches!(
            parse("GET / HTTP/2.0\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
    }

    #[test]
    fn oversized_body_is_rejected_before_allocation() {
        let err = parse("POST / HTTP/1.1\r\ncontent-length: 99999\r\n\r\n").unwrap_err();
        assert!(matches!(err, HttpError::BodyTooLarge { limit: 1024, .. }));
    }

    #[test]
    fn response_frames_body_and_connection() {
        let mut out = Vec::new();
        Response::json(200, &serde_json::to_value(&"ok"))
            .write_to(&mut out, true)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("content-length: 4"));
        assert!(text.contains("connection: keep-alive"));
        assert!(text.ends_with("\r\n\r\n\"ok\""));
    }

    #[test]
    fn extra_headers_and_text_responses_frame_correctly() {
        let mut out = Vec::new();
        Response::text(
            200,
            "serve_requests 1\n".to_owned(),
            "text/plain; version=0.0.4",
        )
        .with_header("x-exrec-trace-id", "00000000000000000000000000000abc")
        .write_to(&mut out, false)
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("content-type: text/plain; version=0.0.4\r\n"));
        assert!(text.contains("x-exrec-trace-id: 00000000000000000000000000000abc\r\n"));
        assert!(text.ends_with("\r\n\r\nserve_requests 1\n"));
    }

    #[test]
    fn shed_response_carries_retry_after() {
        let mut out = Vec::new();
        Response::json(429, &serde_json::to_value(&"shed"))
            .with_retry_after(1)
            .write_to(&mut out, false)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("retry-after: 1\r\n"));
        assert!(text.contains("connection: close"));
    }
}

//! The threaded serving edge: acceptor → bounded queue → worker pool.
//!
//! ```text
//!          ┌──────────┐   try_push    ┌─────────────┐   pop   ┌─────────┐
//!  TCP ───▶│ acceptor │──────────────▶│ Bounded<Conn>│────────▶│ workers │──▶ app
//!          └──────────┘  Full → 429   └─────────────┘         └─────────┘
//! ```
//!
//! * **Admission control** — the acceptor never blocks on a full queue:
//!   it answers `429 Too Many Requests` + `Retry-After` on the spot and
//!   closes the connection (`serve.shed` counter).
//! * **Deadlines** — each request's budget starts when its connection
//!   was admitted (so queue wait counts); a spent budget yields `504`
//!   (`serve.timeout` counter) without doing the work.
//! * **Panic isolation** — the app call runs under `catch_unwind`; a
//!   panicking handler costs that request a `500` (`serve.panic`
//!   counter), never the worker.
//! * **Keep-alive** — workers serve a connection's requests back to
//!   back and reap it after `idle_timeout_ms` of silence (socket read
//!   timeout).
//! * **Graceful shutdown** — [`ServerHandle::request_shutdown`] flips
//!   the drain flag; the acceptor stops admitting and exits (closing
//!   the listener), workers drain the queue and finish in-flight
//!   requests (answering `Connection: close`), then
//!   [`ServerHandle::join`] returns.

use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use exrec_obs::profile::{self, PhaseCollector, Profiler};
use exrec_obs::slo::RouteStatus;
use exrec_obs::{
    promtext, trace, FlightConfig, FlightRecorder, IdSource, IngestRecord, RequestRecord,
    SloConfig, SloMonitor, Telemetry,
};

use exrec_core::aims::Aim;
use exrec_core::interfaces::InterfaceId;

use crate::app::{AppError, Deadline, ExplainApp};
use crate::http::{read_request, HttpError, Request, Response};
use crate::proto::{
    AimSelectionBody, CacheStatsBody, DebugIngestBody, DebugProfileBody, DebugQualityBody,
    DebugRequestsBody, DebugWorldBody, ErrorBody, HealthResponse, IndexShapeBody,
    QualityStandingBody, ScanStatsBody, SloRouteBody, SweepPointBody, WalBody,
};
use crate::queue::{Bounded, PushError};

/// Tuning knobs of the serving edge.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port `0` picks a free port (tests, loadgen).
    pub addr: String,
    /// Worker threads serving admitted connections.
    pub workers: usize,
    /// Admission queue capacity; the load-shedding threshold.
    pub queue_bound: usize,
    /// Default per-request deadline, milliseconds (requests may lower
    /// or raise it via `deadline_ms`, capped at `max_deadline_ms`).
    pub default_deadline_ms: u64,
    /// Largest client-supplied deadline honoured, milliseconds.
    pub max_deadline_ms: u64,
    /// Keep-alive connections idle longer than this are reaped.
    pub idle_timeout_ms: u64,
    /// Largest accepted request body, bytes.
    pub max_body_bytes: usize,
    /// SLO objective and rolling-window shape (`/healthz` standing,
    /// `slo.*` gauges, degraded detection).
    pub slo: SloConfig,
    /// Seed for the trace id stream; `None` seeds from entropy. Fixing
    /// it makes test traces deterministic.
    pub trace_seed: Option<u64>,
    /// Serve the `GET /debug/*` introspection surface. Off by default:
    /// the endpoints expose request payloads' shape and timings.
    pub debug_endpoints: bool,
    /// Completed requests the flight recorder retains.
    pub flight_capacity: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:8787".to_owned(),
            workers: 4,
            queue_bound: 64,
            default_deadline_ms: 2_000,
            max_deadline_ms: 30_000,
            idle_timeout_ms: 5_000,
            max_body_bytes: 1 << 20,
            slo: SloConfig::default(),
            trace_seed: None,
            debug_endpoints: false,
            flight_capacity: 256,
        }
    }
}

/// An admitted connection, stamped so queue wait counts against the
/// first request's deadline.
struct Conn {
    stream: TcpStream,
    admitted_at: Instant,
}

/// State shared by acceptor, workers and the handle.
struct Shared {
    app: ExplainApp,
    config: ServerConfig,
    telemetry: Telemetry,
    queue: Bounded<Conn>,
    draining: AtomicBool,
    started_at: Instant,
    /// Source of trace/span ids for request root spans.
    ids: Arc<IdSource>,
    /// Rolling-window SLO standing per route.
    slo: SloMonitor,
    /// Workers currently executing a request (not blocked on the queue).
    busy: AtomicUsize,
    /// Always-on phase profiler (`GET /debug/profile`).
    profiler: Arc<Profiler>,
    /// Black-box ring of the last N completed requests.
    flight: Arc<FlightRecorder>,
    /// Set while an SLO fast-burn degradation is in effect, so the
    /// flight recorder dumps once per onset instead of per request.
    degraded_latch: AtomicBool,
    /// Same once-per-onset discipline for sustained low explanation
    /// quality (the live estimator's low-sample streak).
    quality_latch: AtomicBool,
}

/// A running server; dropping it without calling
/// [`ServerHandle::shutdown`] detaches the threads.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

/// Binds the listener and spawns the acceptor and worker threads.
///
/// # Errors
///
/// Propagates listener bind/configuration failures.
pub fn start(
    app: ExplainApp,
    config: ServerConfig,
    telemetry: Telemetry,
) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let shared = Arc::new(Shared {
        queue: Bounded::new(config.queue_bound),
        ids: Arc::new(match config.trace_seed {
            Some(seed) => IdSource::seeded(seed),
            None => IdSource::default(),
        }),
        slo: SloMonitor::new(config.slo),
        busy: AtomicUsize::new(0),
        profiler: Arc::new(Profiler::new()),
        flight: Arc::new(FlightRecorder::new(FlightConfig {
            capacity: config.flight_capacity,
            ..FlightConfig::default()
        })),
        degraded_latch: AtomicBool::new(false),
        quality_latch: AtomicBool::new(false),
        app,
        config,
        telemetry,
        draining: AtomicBool::new(false),
        started_at: Instant::now(),
    });

    let workers = (0..shared.config.workers.max(1))
        .map(|i| {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("serve-worker-{i}"))
                .spawn(move || worker_loop(&shared))
                .expect("spawn worker")
        })
        .collect();
    let acceptor = {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("serve-acceptor".to_owned())
            .spawn(move || accept_loop(&listener, &shared))
            .expect("spawn acceptor")
    };

    Ok(ServerHandle {
        addr,
        shared,
        acceptor: Some(acceptor),
        workers,
    })
}

impl ServerHandle {
    /// The bound address (resolves port `0` binds).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server's telemetry handle.
    pub fn telemetry(&self) -> &Telemetry {
        &self.shared.telemetry
    }

    /// Current per-route SLO standing (the `serve` binary prints this
    /// in its shutdown report).
    pub fn slo_snapshot(&self) -> std::collections::BTreeMap<String, RouteStatus> {
        self.shared.slo.snapshot()
    }

    /// The always-on phase profiler behind `GET /debug/profile`.
    pub fn profiler(&self) -> &Arc<Profiler> {
        &self.shared.profiler
    }

    /// The live quality estimator's snapshot (the `serve` binary
    /// prints per-interface quality in its shutdown report).
    pub fn quality_snapshot(&self) -> exrec_obs::QualitySnapshot {
        self.shared.app.quality_monitor().snapshot()
    }

    /// The request flight recorder behind `GET /debug/requests`. The
    /// `serve` binary chains it into the process panic hook
    /// ([`FlightRecorder::install_panic_hook`]).
    pub fn flight(&self) -> &Arc<FlightRecorder> {
        &self.shared.flight
    }

    /// Begins a graceful drain: stop admitting, let workers finish.
    /// Idempotent; returns immediately. Call [`ServerHandle::join`] to
    /// wait for completion, or [`ServerHandle::shutdown`] for both.
    pub fn request_shutdown(&self) {
        if self.shared.draining.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the acceptor's blocking accept() with a wake-up
        // connection; it observes the flag and exits.
        let _ = TcpStream::connect(self.addr);
    }

    /// Waits for the drain to complete: acceptor gone (listener
    /// closed), queue drained, in-flight requests answered. With a
    /// journal attached, the drained world is then compacted (snapshot
    /// beside the WAL, log emptied) so the next start warm-restarts
    /// from the snapshot alone; the result is returned (`None` without
    /// `--wal-path`) and safe to ignore — a failed compaction leaves
    /// the journal intact, costing the next start a replay, not data.
    pub fn join(mut self) -> Option<Result<std::path::PathBuf, exrec_types::Error>> {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        // Acceptor is gone: nothing new can be admitted. Close the
        // queue so workers drain the remainder and exit.
        self.shared.queue.close();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        // Every write is drained: the snapshot captures them all.
        self.shared.app.compact().transpose()
    }

    /// [`ServerHandle::request_shutdown`] + [`ServerHandle::join`].
    pub fn shutdown(self) {
        self.request_shutdown();
        let _ = self.join();
    }
}

/// Accepts connections, admitting them to the queue or shedding.
fn accept_loop(listener: &TcpListener, shared: &Shared) {
    let metrics = shared.telemetry.metrics();
    let accepted = metrics.counter("serve.accepted");
    let shed = metrics.counter("serve.shed");
    let depth_gauge = metrics.gauge("serve.queue_depth");
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shared.draining.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if shared.draining.load(Ordering::SeqCst) {
            // The wake-up poke (or a straggler); refuse politely.
            refuse(stream, 503, "draining", "server is shutting down", None);
            return;
        }
        accepted.incr();
        match shared.queue.try_push(Conn {
            stream,
            admitted_at: Instant::now(),
        }) {
            Ok(depth) => depth_gauge.set(depth as f64),
            Err(PushError::Full(conn)) => {
                shed.incr();
                // Shed requests never reach a worker (no trace, no
                // profile), but the black box still remembers them.
                shared.flight.record(RequestRecord {
                    seq: 0,
                    trace_id: String::new(),
                    route: "admission".to_owned(),
                    status: 429,
                    outcome: RequestRecord::outcome_of(429).to_owned(),
                    start_offset_ns: trace::offset_ns_of(conn.admitted_at),
                    duration_ns: duration_ns(conn.admitted_at.elapsed()),
                    phases: Vec::new(),
                    cache_hits: 0,
                    cache_misses: 0,
                    quality: None,
                    ingest: None,
                });
                refuse(conn.stream, 429, "shed", "admission queue is full", Some(1));
            }
            Err(PushError::Closed(conn)) => {
                refuse(
                    conn.stream,
                    503,
                    "draining",
                    "server is shutting down",
                    None,
                );
                return;
            }
        }
    }
}

/// Writes a one-shot refusal on a connection the queue never saw.
/// Best-effort: a peer that vanished mid-shed is already satisfied.
fn refuse(stream: TcpStream, status: u16, error: &str, detail: &str, retry_after: Option<u64>) {
    let _ = stream.set_write_timeout(Some(Duration::from_millis(500)));
    let mut response = Response::json(status, &ErrorBody::new(error, detail));
    if let Some(seconds) = retry_after {
        response = response.with_retry_after(seconds);
    }
    let mut stream = stream;
    let _ = response.write_to(&mut stream, false);
}

/// One worker: pop admitted connections and serve them to completion.
fn worker_loop(shared: &Shared) {
    let depth_gauge = shared.telemetry.metrics().gauge("serve.queue_depth");
    while let Some(conn) = shared.queue.pop() {
        depth_gauge.set(shared.queue.len() as f64);
        serve_connection(shared, conn);
    }
}

/// Serves every request on one connection (keep-alive loop).
fn serve_connection(shared: &Shared, conn: Conn) {
    let metrics = shared.telemetry.metrics();
    metrics.counter("serve.connections").incr();
    let stream = conn.stream;
    let idle = Duration::from_millis(shared.config.idle_timeout_ms.max(1));
    if stream.set_read_timeout(Some(idle)).is_err() || stream.set_nodelay(true).is_err() {
        return;
    }
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    // The first request's deadline starts at admission: time spent in
    // the queue is part of the latency the client observes. The wait
    // itself (admission → this worker popping the connection) is
    // captured here and reported as the first request's
    // `serve.queue_wait` child span.
    let mut request_start = Some(conn.admitted_at);
    let mut queue_wait = Some(conn.admitted_at.elapsed());

    loop {
        let read_started = Instant::now();
        let request = read_request(&mut reader, shared.config.max_body_bytes);
        let parse_took = read_started.elapsed();
        let started = request_start.take().unwrap_or_else(Instant::now);
        match request {
            Ok(None) => return, // peer closed cleanly
            Err(e) if e.is_timeout() => {
                metrics.counter("serve.idle_reaped").incr();
                return;
            }
            Err(HttpError::Io(_)) => return,
            Err(HttpError::BodyTooLarge { declared, limit }) => {
                let body = ErrorBody::new(
                    "body_too_large",
                    format!("declared {declared} bytes, limit {limit}"),
                );
                let _ = Response::json(413, &body).write_to(&mut writer, false);
                return;
            }
            Err(HttpError::Malformed(detail)) => {
                let _ = Response::json(400, &ErrorBody::new("bad_request", detail))
                    .write_to(&mut writer, false);
                return;
            }
            Ok(Some(request)) => {
                // Root span of the request's trace, backdated to
                // admission so queue wait is inside the root (and counts
                // toward the tail sampler's slow threshold).
                let root = shared
                    .telemetry
                    .root_span("serve.request", &shared.ids)
                    .started_at(started);
                let trace_hex = root.trace_id_hex().unwrap_or_default();
                let wait = queue_wait.take();
                if let Some(wait) = wait {
                    // Emitted as a zero-width child covering the queue
                    // time that already elapsed before this loop.
                    let _qw = shared
                        .telemetry
                        .span("serve.queue_wait")
                        .started_at(conn.admitted_at)
                        .with_duration(wait);
                }
                let collector = Arc::new(PhaseCollector::new());
                let busy = shared.busy.fetch_add(1, Ordering::Relaxed) + 1;
                metrics.gauge("serve.busy_workers").set(busy as f64);
                let (response, endpoint, ingest) = dispatch(shared, &request, started, &collector);
                shared.busy.fetch_sub(1, Ordering::Relaxed);
                // First request on the connection: its wall clock runs
                // from admission, so the pre-dispatch time (queue wait,
                // request read + parse) is attributable now that the
                // route is known. Later keep-alive requests start their
                // clock after the read, so only `handle` applies.
                if let Some(wait) = wait {
                    shared
                        .profiler
                        .record_external(endpoint, "queue_wait", wait);
                    collector.add("queue_wait", wait);
                    shared
                        .profiler
                        .record_external(endpoint, "parse", parse_took);
                    collector.add("parse", parse_took);
                }
                // Annotate the root so the tail sampler can keep errored
                // traces, then drop it: the full trace is flushed (or
                // discarded) before the client sees the response.
                let mut root = root
                    .field("endpoint", endpoint)
                    .field("status", response.status);
                if response.status >= 500 {
                    root = root.field("error", format!("http_{}", response.status));
                }
                drop(root);
                let response = response.with_header("x-exrec-trace-id", trace_hex.clone());
                let keep_alive =
                    request.wants_keep_alive() && !shared.draining.load(Ordering::SeqCst);
                record(
                    shared,
                    endpoint,
                    response.status,
                    started.elapsed(),
                    &trace_hex,
                    started,
                    &collector,
                    ingest,
                );
                if response.write_to(&mut writer, keep_alive).is_err() || !keep_alive {
                    return;
                }
                metrics.counter("serve.keepalive_reuse").incr();
            }
        }
    }
}

/// Saturating `Duration` → whole nanoseconds.
fn duration_ns(d: Duration) -> u64 {
    d.as_nanos().min(u128::from(u64::MAX)) as u64
}

/// Records the per-request metrics every endpoint shares, advances the
/// route's SLO window, refreshes the `slo.*` gauges, and writes the
/// request into the flight recorder. On an SLO fast-burn onset the
/// flight ring is dumped to stderr once (re-armed when every route is
/// healthy again).
#[allow(clippy::too_many_arguments)]
fn record(
    shared: &Shared,
    endpoint: &'static str,
    status: u16,
    took: Duration,
    trace_hex: &str,
    started: Instant,
    collector: &PhaseCollector,
    ingest: Option<IngestRecord>,
) {
    let metrics = shared.telemetry.metrics();
    metrics.counter("serve.requests").incr();
    metrics
        .histogram(&format!("serve.latency_ns.{endpoint}"))
        .record(took);
    metrics
        .counter(&format!("serve.status.{}xx", status / 100))
        .incr();
    shared.flight.record(RequestRecord {
        seq: 0,
        trace_id: trace_hex.to_owned(),
        route: endpoint.to_owned(),
        status,
        outcome: RequestRecord::outcome_of(status).to_owned(),
        start_offset_ns: trace::offset_ns_of(started),
        duration_ns: duration_ns(took),
        phases: collector.phases(),
        cache_hits: collector.cache_hits(),
        cache_misses: collector.cache_misses(),
        quality: collector.quality(),
        ingest,
    });
    // 4xx is the server behaving correctly under a bad request; only
    // 5xx spends error budget on top of the latency objective.
    let ok = status < 500;
    shared.slo.record(endpoint, duration_ns(took), ok);
    if let Some(st) = shared.slo.status(endpoint) {
        metrics
            .gauge(&format!("slo.good_ratio.{endpoint}"))
            .set(st.good_ratio);
        metrics
            .gauge(&format!("slo.burn_rate.{endpoint}"))
            .set(st.burn_rate);
        metrics
            .gauge(&format!("slo.window_good.{endpoint}"))
            .set(st.good as f64);
        metrics
            .gauge(&format!("slo.window_total.{endpoint}"))
            .set(st.total as f64);
        if st.degraded {
            if !shared.degraded_latch.swap(true, Ordering::SeqCst) {
                shared
                    .flight
                    .dump_stderr(&format!("slo fast-burn: {endpoint}"));
            }
        } else if shared.degraded_latch.load(Ordering::SeqCst)
            && !shared.slo.snapshot().values().any(|s| s.degraded)
        {
            shared.degraded_latch.store(false, Ordering::SeqCst);
        }
    }
    // The quality-drop latch mirrors the SLO fast-burn latch: when the
    // live estimator's low-sample streak reaches its sustained
    // threshold, dump the black box once per onset (the sampled
    // low-quality requests are still resident in the ring, scores
    // attached), and re-arm once quality recovers.
    if shared.app.quality_monitor().sustained_low() {
        if !shared.quality_latch.swap(true, Ordering::SeqCst) {
            shared
                .flight
                .dump_stderr("sustained low explanation quality");
        }
    } else {
        shared.quality_latch.store(false, Ordering::SeqCst);
    }
}

/// Routes one parsed request, isolating handler panics. The endpoint
/// name resolves first so the entire handler runs under the route's
/// profiling context ([`Profiler::route`]) inside a `handle` phase —
/// the inner phases (`admit`, `scan`, `evidence`, …) nest beneath it.
fn dispatch(
    shared: &Shared,
    request: &Request,
    started: Instant,
    collector: &Arc<PhaseCollector>,
) -> (Response, &'static str, Option<IngestRecord>) {
    // The request target may carry a query string (`?aim=trust`);
    // routes match on the bare path, handlers see the query.
    let (path, query) = match request.path.split_once('?') {
        Some((path, query)) => (path, Some(query)),
        None => (request.path.as_str(), None),
    };
    let endpoint: &'static str = match (request.method.as_str(), path) {
        ("GET", "/healthz") => "healthz",
        ("GET", "/metrics") => "metrics",
        ("GET", "/debug/profile") => "debug_profile",
        ("GET", "/debug/requests") => "debug_requests",
        ("GET", "/debug/world") => "debug_world",
        ("GET", "/debug/quality") => "debug_quality",
        ("GET", "/debug/ingest") => "debug_ingest",
        ("POST", "/v1/recommend") => "recommend",
        ("POST", "/v1/explain") => "explain",
        ("POST", "/v1/rate") => "rate",
        ("POST", "/v1/rate/batch") => "rate_batch",
        (
            _,
            "/healthz" | "/metrics" | "/v1/recommend" | "/v1/explain" | "/v1/rate"
            | "/v1/rate/batch" | "/debug/profile" | "/debug/requests" | "/debug/world"
            | "/debug/quality" | "/debug/ingest",
        ) => "method_not_allowed",
        _ => "not_found",
    };
    let _route = shared.profiler.route(endpoint, Arc::clone(collector));
    let _handle = profile::phase("handle");
    let mut ingest = None;
    let response = match endpoint {
        "healthz" => health(shared),
        "metrics" => metrics_response(shared, request),
        "debug_profile" => debug_profile(shared, request),
        "debug_requests" => debug_requests(shared),
        "debug_world" => debug_world(shared),
        "debug_quality" => debug_quality(shared),
        "debug_ingest" => debug_ingest(shared),
        "recommend" | "explain" | "rate" | "rate_batch" => {
            let (response, ingested) = handle_post(shared, request, started, endpoint, query);
            ingest = ingested;
            response
        }
        "method_not_allowed" => Response::json(
            405,
            &ErrorBody::new(
                "method_not_allowed",
                format!("{} not allowed", request.method),
            ),
        ),
        _ => Response::json(
            404,
            &ErrorBody::new("not_found", format!("no route {}", request.path)),
        ),
    };
    (response, endpoint, ingest)
}

/// The refusal every `/debug/*` handler answers when the surface is
/// off (the default): the endpoints expose payload shapes and timings.
fn debug_disabled() -> Response {
    Response::json(
        403,
        &ErrorBody::new(
            "debug_disabled",
            "debug endpoints require --debug-endpoints",
        ),
    )
}

/// `GET /debug/profile`: collapsed-stack text under `Accept:
/// text/plain` (pipe straight into flamegraph tooling), otherwise JSON
/// with both the per-route phase trees and the collapsed rendering.
fn debug_profile(shared: &Shared, request: &Request) -> Response {
    if !shared.config.debug_endpoints {
        return debug_disabled();
    }
    let wants_text = request
        .header("accept")
        .is_some_and(|accept| accept.contains("text/plain"));
    if wants_text {
        Response::text(
            200,
            shared.profiler.collapsed(),
            "text/plain; charset=utf-8",
        )
    } else {
        Response::json(
            200,
            &DebugProfileBody {
                routes: shared.profiler.snapshot().routes,
                collapsed: shared.profiler.collapsed(),
            },
        )
    }
}

/// `GET /debug/requests`: the flight recorder's resident window,
/// oldest first.
fn debug_requests(shared: &Shared) -> Response {
    if !shared.config.debug_endpoints {
        return debug_disabled();
    }
    Response::json(
        200,
        &DebugRequestsBody {
            capacity: shared.flight.capacity(),
            recorded: shared.flight.recorded(),
            requests: shared.flight.snapshot(),
        },
    )
}

/// `GET /debug/quality`: the measured quality book behind aim-fit
/// selection, the live sampled estimator's snapshot, and the selection
/// both currently imply per aim.
fn debug_quality(shared: &Shared) -> Response {
    if !shared.config.debug_endpoints {
        return debug_disabled();
    }
    let app = &shared.app;
    let book = app.quality_book();
    let offline = InterfaceId::ALL
        .into_iter()
        .filter_map(|id| book.measured(id.key()))
        .collect();
    let selection = Aim::ALL
        .into_iter()
        .map(|aim| {
            let static_default = exrec_registry::quality::static_default_for_aim(aim);
            let (selected, score) = match book.select_for_aim(aim) {
                Some((id, score)) => (id, score),
                None => (
                    static_default.unwrap_or(app.config().default_interface),
                    0.0,
                ),
            };
            AimSelectionBody {
                aim: aim.name().to_ascii_lowercase(),
                selected: selected.key().to_owned(),
                score,
                static_default: static_default.map(|id| id.key().to_owned()),
                static_score: static_default
                    .map(|id| book.aim_score(id, aim))
                    .unwrap_or(0.0),
            }
        })
        .collect();
    Response::json(
        200,
        &DebugQualityBody {
            offline,
            online: app.quality_monitor().snapshot(),
            selection,
        },
    )
}

/// `GET /debug/ingest`: the write path's standing — lifetime counts,
/// the revision they produced, and the journal's shape.
fn debug_ingest(shared: &Shared) -> Response {
    if !shared.config.debug_endpoints {
        return debug_disabled();
    }
    let app = &shared.app;
    let (requests, applied, rejected) = app.ingest_counts();
    Response::json(
        200,
        &DebugIngestBody {
            requests,
            applied,
            rejected,
            revision: app.ratings_revision(),
            snapshot_loaded: app.snapshot_loaded(),
            wal: app.wal_stats().map(|stats| WalBody {
                path: app
                    .wal_path()
                    .map(|p| p.display().to_string())
                    .unwrap_or_default(),
                fsync: app.config().fsync,
                size_bytes: stats.size_bytes,
                records: stats.records,
                replayed: stats.replayed,
                truncated_bytes: stats.truncated_bytes,
            }),
        },
    )
}

/// `GET /debug/world`: the served world's shape and effective serving
/// configuration.
fn debug_world(shared: &Shared) -> Response {
    if !shared.config.debug_endpoints {
        return debug_disabled();
    }
    let app = &shared.app;
    Response::json(
        200,
        &DebugWorldBody {
            users: app.n_users(),
            items: app.n_items(),
            ratings: app.n_ratings(),
            ratings_revision: app.ratings_revision(),
            model: app.model_name().to_owned(),
            default_interface: app.config().default_interface.key().to_owned(),
            workers: shared.config.workers.max(1),
            pool_threads: app.pool_threads(),
            queue_capacity: shared.queue.capacity(),
            cache: cache_body(app),
            scan: scan_body(app),
        },
    )
}

/// The neighbour-scan engine's standing as a wire body for
/// `/debug/world`. `None` when the model runs the brute per-pair path.
fn scan_body(app: &ExplainApp) -> Option<ScanStatsBody> {
    let matrix_revision = app.ratings_revision();
    app.scan_stats().map(|stats| ScanStatsBody {
        mode: app.scan_mode().to_owned(),
        tile_users: stats.tile_users,
        sweep: stats
            .sweep
            .iter()
            .map(|&(tile_users, elapsed_ns)| SweepPointBody {
                tile_users,
                elapsed_ns,
            })
            .collect(),
        csr_revision: stats.csr_revision,
        csr_builds: stats.csr_builds,
        index_builds: stats.index_builds,
        index: stats
            .index_shape
            .map(|(centroids, probes)| IndexShapeBody { centroids, probes }),
        exact_scans: stats.exact_scans,
        pruned_scans: stats.pruned_scans,
        exact_fallbacks: stats.exact_fallbacks,
        tiles_visited: stats.tiles_visited,
        candidates_scored: stats.candidates_scored,
        prune_ratio: stats.last_prune_ratio,
        // The divergence the old block silently hid: how far the
        // resident CSR trails the live matrix right now.
        revision_lag: stats
            .csr_revision
            .map(|csr| matrix_revision.saturating_sub(csr)),
        csr_patches: stats.csr_patches,
        index_patches: stats.index_patches,
        pending_deltas: stats.pending_deltas,
        patched_since_build: stats.patched_since_build,
    })
}

/// The similarity cache's standing as a wire body, shared by
/// `/healthz` and `/debug/world`. `None` when the model runs uncached.
fn cache_body(app: &ExplainApp) -> Option<CacheStatsBody> {
    app.cache_stats().map(|(stats, capacity)| CacheStatsBody {
        entries: stats.entries,
        capacity,
        occupancy: stats.entries as f64 / capacity.max(1) as f64,
        hits: stats.hits,
        misses: stats.misses,
        hit_ratio: stats.hit_rate(),
        evictions: stats.evictions,
        invalidations: stats.invalidations,
    })
}

/// `GET /metrics`: Prometheus text exposition when the client sends
/// `Accept: text/plain`, the JSON report otherwise.
fn metrics_response(shared: &Shared, request: &Request) -> Response {
    let wants_text = request
        .header("accept")
        .is_some_and(|accept| accept.contains("text/plain"));
    if wants_text {
        Response::text(
            200,
            promtext::render(shared.telemetry.metrics()),
            "text/plain; version=0.0.4",
        )
    } else {
        Response::json(200, &shared.telemetry.report())
    }
}

fn health(shared: &Shared) -> Response {
    let slo = shared.slo.snapshot();
    let quality = shared.app.quality_monitor().snapshot();
    let status = if shared.draining.load(Ordering::SeqCst) {
        "draining"
    } else if slo.values().any(|s| s.degraded) || quality.sustained_low {
        "degraded"
    } else {
        "ok"
    };
    let workers = shared.config.workers.max(1);
    let queue_depth = shared.queue.len();
    let queue_capacity = shared.queue.capacity();
    // This handler runs on a worker, so busy includes the health check
    // itself — truthful, if humbling.
    let busy_workers = shared.busy.load(Ordering::Relaxed).min(workers);
    Response::json(
        200,
        &HealthResponse {
            status: status.to_owned(),
            uptime_ms: shared.started_at.elapsed().as_millis() as u64,
            workers,
            queue_capacity,
            queue_depth,
            queue_saturation: queue_depth as f64 / queue_capacity.max(1) as f64,
            busy_workers,
            worker_saturation: busy_workers as f64 / workers as f64,
            slo: slo
                .into_iter()
                .map(|(route, s)| {
                    (
                        route,
                        SloRouteBody {
                            good: s.good,
                            total: s.total,
                            good_ratio: s.good_ratio,
                            burn_rate: s.burn_rate,
                            fast_burn_rate: s.fast_burn_rate,
                            degraded: s.degraded,
                        },
                    )
                })
                .collect(),
            cache: cache_body(&shared.app),
            quality: Some(QualityStandingBody {
                samples: quality.samples,
                sample_every: quality.sample_every,
                mean_score: quality.mean_score,
                low_streak: quality.low_streak,
                sustained_low: quality.sustained_low,
            }),
        },
    )
}

/// Extracts one `key=value` pair from a raw query string. Aim names
/// and interface keys are plain lowercase words, so no percent
/// decoding is attempted.
fn query_param<'a>(query: Option<&'a str>, key: &str) -> Option<&'a str> {
    query?.split('&').find_map(|kv| {
        let (k, v) = kv.split_once('=')?;
        (k == key && !v.is_empty()).then_some(v)
    })
}

/// Parses, deadline-checks and runs one POST body under `catch_unwind`.
/// Write routes also return the flight recorder's ingest detail.
fn handle_post(
    shared: &Shared,
    request: &Request,
    started: Instant,
    endpoint: &'static str,
    query: Option<&str>,
) -> (Response, Option<IngestRecord>) {
    // Admission: body decode, JSON parse, deadline arithmetic — all
    // before the model runs.
    let admit = profile::phase("admit");
    let body = match std::str::from_utf8(&request.body) {
        Ok(body) => body,
        Err(_) => {
            return (
                Response::json(400, &ErrorBody::new("bad_request", "body is not UTF-8")),
                None,
            );
        }
    };
    let metrics = shared.telemetry.metrics();

    // Parse first so the deadline can honour the request's own budget.
    enum Parsed {
        Recommend(crate::proto::RecommendRequest),
        Explain(crate::proto::ExplainRequest),
        Rate(crate::proto::RateRequest),
        RateBatch(crate::proto::RateBatchRequest),
    }
    fn bad_json(e: &serde_json::Error) -> (Response, Option<IngestRecord>) {
        (
            Response::json(
                400,
                &ErrorBody::new("bad_request", format!("invalid JSON body: {e:?}")),
            ),
            None,
        )
    }
    let (parsed, deadline_ms) = match endpoint {
        "recommend" => match serde_json::from_str::<crate::proto::RecommendRequest>(body) {
            Ok(req) => {
                let ms = req.deadline_ms;
                (Parsed::Recommend(req), ms)
            }
            Err(e) => return bad_json(&e),
        },
        "rate" => match serde_json::from_str::<crate::proto::RateRequest>(body) {
            Ok(req) => {
                let ms = req.deadline_ms;
                (Parsed::Rate(req), ms)
            }
            Err(e) => return bad_json(&e),
        },
        "rate_batch" => match serde_json::from_str::<crate::proto::RateBatchRequest>(body) {
            Ok(req) => {
                let ms = req.deadline_ms;
                (Parsed::RateBatch(req), ms)
            }
            Err(e) => return bad_json(&e),
        },
        _ => match serde_json::from_str::<crate::proto::ExplainRequest>(body) {
            Ok(mut req) => {
                // `?aim=` on the URL is an equivalent spelling of the
                // body field; the body wins when both are present.
                if req.aim.is_none() {
                    req.aim = query_param(query, "aim").map(str::to_owned);
                }
                let ms = req.deadline_ms;
                (Parsed::Explain(req), ms)
            }
            Err(e) => return bad_json(&e),
        },
    };
    let budget_ms = deadline_ms
        .unwrap_or(shared.config.default_deadline_ms)
        .min(shared.config.max_deadline_ms);
    let deadline = Deadline::from(started, budget_ms);
    if deadline.exceeded() {
        metrics.counter("serve.timeout").incr();
        return (
            Response::json(
                504,
                &ErrorBody::new("deadline_exceeded", "deadline elapsed before handling"),
            ),
            None,
        );
    }

    drop(admit);
    let outcome = panic::catch_unwind(AssertUnwindSafe(|| match &parsed {
        Parsed::Recommend(req) => shared
            .app
            .recommend(req, deadline)
            .map(|resp| (Response::json(200, &resp), None)),
        Parsed::Explain(req) => shared
            .app
            .explain(req, deadline)
            .map(|resp| (Response::json(200, &resp), None)),
        Parsed::Rate(req) => shared.app.rate(req, deadline).map(|resp| {
            let ingest = IngestRecord {
                applied: resp.applied,
                wal_append_ns: resp.wal_append_ns,
            };
            (Response::json(200, &resp), Some(ingest))
        }),
        Parsed::RateBatch(req) => shared.app.rate_batch(req, deadline).map(|resp| {
            let ingest = IngestRecord {
                applied: resp.applied,
                wal_append_ns: resp.wal_append_ns,
            };
            (Response::json(200, &resp), Some(ingest))
        }),
    }));
    match outcome {
        Ok(Ok((response, ingest))) => (response, ingest),
        Ok(Err(app_error)) => {
            if matches!(app_error, AppError::DeadlineExceeded) {
                metrics.counter("serve.timeout").incr();
            }
            let (status, class, detail) = match app_error {
                AppError::BadRequest(d) => (400, "bad_request", d),
                AppError::NotFound(d) => (404, "not_found", d),
                AppError::Unprocessable(d) => (422, "unprocessable", d),
                AppError::DeadlineExceeded => (
                    504,
                    "deadline_exceeded",
                    format!("deadline of {budget_ms}ms elapsed"),
                ),
                AppError::Internal(d) => (500, "internal", d),
            };
            (Response::json(status, &ErrorBody::new(class, detail)), None)
        }
        Err(_) => {
            metrics.counter("serve.panic").incr();
            (
                Response::json(
                    500,
                    &ErrorBody::new("panic", "handler panicked; worker recovered"),
                ),
                None,
            )
        }
    }
}

//! The threaded serving edge: acceptor → bounded queue → worker pool.
//!
//! ```text
//!          ┌──────────┐   try_push    ┌─────────────┐   pop   ┌─────────┐
//!  TCP ───▶│ acceptor │──────────────▶│ Bounded<Conn>│────────▶│ workers │──▶ app
//!          └──────────┘  Full → 429   └─────────────┘         └─────────┘
//! ```
//!
//! * **Admission control** — the acceptor never blocks on a full queue:
//!   it answers `429 Too Many Requests` + `Retry-After` on the spot and
//!   closes the connection (`serve.shed` counter).
//! * **Deadlines** — each request's budget starts when its connection
//!   was admitted (so queue wait counts); a spent budget yields `504`
//!   (`serve.timeout` counter) without doing the work.
//! * **Panic isolation** — the app call runs under `catch_unwind`; a
//!   panicking handler costs that request a `500` (`serve.panic`
//!   counter), never the worker.
//! * **Keep-alive** — workers serve a connection's requests back to
//!   back and reap it after `idle_timeout_ms` of silence (socket read
//!   timeout).
//! * **Graceful shutdown** — [`ServerHandle::request_shutdown`] flips
//!   the drain flag; the acceptor stops admitting and exits (closing
//!   the listener), workers drain the queue and finish in-flight
//!   requests (answering `Connection: close`), then
//!   [`ServerHandle::join`] returns.

use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use exrec_obs::Telemetry;

use crate::app::{AppError, Deadline, ExplainApp};
use crate::http::{read_request, HttpError, Request, Response};
use crate::proto::{ErrorBody, HealthResponse};
use crate::queue::{Bounded, PushError};

/// Tuning knobs of the serving edge.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port `0` picks a free port (tests, loadgen).
    pub addr: String,
    /// Worker threads serving admitted connections.
    pub workers: usize,
    /// Admission queue capacity; the load-shedding threshold.
    pub queue_bound: usize,
    /// Default per-request deadline, milliseconds (requests may lower
    /// or raise it via `deadline_ms`, capped at `max_deadline_ms`).
    pub default_deadline_ms: u64,
    /// Largest client-supplied deadline honoured, milliseconds.
    pub max_deadline_ms: u64,
    /// Keep-alive connections idle longer than this are reaped.
    pub idle_timeout_ms: u64,
    /// Largest accepted request body, bytes.
    pub max_body_bytes: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:8787".to_owned(),
            workers: 4,
            queue_bound: 64,
            default_deadline_ms: 2_000,
            max_deadline_ms: 30_000,
            idle_timeout_ms: 5_000,
            max_body_bytes: 1 << 20,
        }
    }
}

/// An admitted connection, stamped so queue wait counts against the
/// first request's deadline.
struct Conn {
    stream: TcpStream,
    admitted_at: Instant,
}

/// State shared by acceptor, workers and the handle.
struct Shared {
    app: ExplainApp,
    config: ServerConfig,
    telemetry: Telemetry,
    queue: Bounded<Conn>,
    draining: AtomicBool,
    started_at: Instant,
}

/// A running server; dropping it without calling
/// [`ServerHandle::shutdown`] detaches the threads.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

/// Binds the listener and spawns the acceptor and worker threads.
///
/// # Errors
///
/// Propagates listener bind/configuration failures.
pub fn start(
    app: ExplainApp,
    config: ServerConfig,
    telemetry: Telemetry,
) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let shared = Arc::new(Shared {
        queue: Bounded::new(config.queue_bound),
        app,
        config,
        telemetry,
        draining: AtomicBool::new(false),
        started_at: Instant::now(),
    });

    let workers = (0..shared.config.workers.max(1))
        .map(|i| {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("serve-worker-{i}"))
                .spawn(move || worker_loop(&shared))
                .expect("spawn worker")
        })
        .collect();
    let acceptor = {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("serve-acceptor".to_owned())
            .spawn(move || accept_loop(&listener, &shared))
            .expect("spawn acceptor")
    };

    Ok(ServerHandle {
        addr,
        shared,
        acceptor: Some(acceptor),
        workers,
    })
}

impl ServerHandle {
    /// The bound address (resolves port `0` binds).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server's telemetry handle.
    pub fn telemetry(&self) -> &Telemetry {
        &self.shared.telemetry
    }

    /// Begins a graceful drain: stop admitting, let workers finish.
    /// Idempotent; returns immediately. Call [`ServerHandle::join`] to
    /// wait for completion, or [`ServerHandle::shutdown`] for both.
    pub fn request_shutdown(&self) {
        if self.shared.draining.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the acceptor's blocking accept() with a wake-up
        // connection; it observes the flag and exits.
        let _ = TcpStream::connect(self.addr);
    }

    /// Waits for the drain to complete: acceptor gone (listener
    /// closed), queue drained, in-flight requests answered.
    pub fn join(mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        // Acceptor is gone: nothing new can be admitted. Close the
        // queue so workers drain the remainder and exit.
        self.shared.queue.close();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }

    /// [`ServerHandle::request_shutdown`] + [`ServerHandle::join`].
    pub fn shutdown(self) {
        self.request_shutdown();
        self.join();
    }
}

/// Accepts connections, admitting them to the queue or shedding.
fn accept_loop(listener: &TcpListener, shared: &Shared) {
    let metrics = shared.telemetry.metrics();
    let accepted = metrics.counter("serve.accepted");
    let shed = metrics.counter("serve.shed");
    let depth_gauge = metrics.gauge("serve.queue_depth");
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shared.draining.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if shared.draining.load(Ordering::SeqCst) {
            // The wake-up poke (or a straggler); refuse politely.
            refuse(stream, 503, "draining", "server is shutting down", None);
            return;
        }
        accepted.incr();
        match shared.queue.try_push(Conn {
            stream,
            admitted_at: Instant::now(),
        }) {
            Ok(depth) => depth_gauge.set(depth as f64),
            Err(PushError::Full(conn)) => {
                shed.incr();
                refuse(conn.stream, 429, "shed", "admission queue is full", Some(1));
            }
            Err(PushError::Closed(conn)) => {
                refuse(
                    conn.stream,
                    503,
                    "draining",
                    "server is shutting down",
                    None,
                );
                return;
            }
        }
    }
}

/// Writes a one-shot refusal on a connection the queue never saw.
/// Best-effort: a peer that vanished mid-shed is already satisfied.
fn refuse(stream: TcpStream, status: u16, error: &str, detail: &str, retry_after: Option<u64>) {
    let _ = stream.set_write_timeout(Some(Duration::from_millis(500)));
    let mut response = Response::json(status, &ErrorBody::new(error, detail));
    if let Some(seconds) = retry_after {
        response = response.with_retry_after(seconds);
    }
    let mut stream = stream;
    let _ = response.write_to(&mut stream, false);
}

/// One worker: pop admitted connections and serve them to completion.
fn worker_loop(shared: &Shared) {
    let depth_gauge = shared.telemetry.metrics().gauge("serve.queue_depth");
    while let Some(conn) = shared.queue.pop() {
        depth_gauge.set(shared.queue.len() as f64);
        serve_connection(shared, conn);
    }
}

/// Serves every request on one connection (keep-alive loop).
fn serve_connection(shared: &Shared, conn: Conn) {
    let metrics = shared.telemetry.metrics();
    metrics.counter("serve.connections").incr();
    let stream = conn.stream;
    let idle = Duration::from_millis(shared.config.idle_timeout_ms.max(1));
    if stream.set_read_timeout(Some(idle)).is_err() || stream.set_nodelay(true).is_err() {
        return;
    }
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    // The first request's deadline starts at admission: time spent in
    // the queue is part of the latency the client observes.
    let mut request_start = Some(conn.admitted_at);

    loop {
        let request = read_request(&mut reader, shared.config.max_body_bytes);
        let started = request_start.take().unwrap_or_else(Instant::now);
        match request {
            Ok(None) => return, // peer closed cleanly
            Err(e) if e.is_timeout() => {
                metrics.counter("serve.idle_reaped").incr();
                return;
            }
            Err(HttpError::Io(_)) => return,
            Err(HttpError::BodyTooLarge { declared, limit }) => {
                let body = ErrorBody::new(
                    "body_too_large",
                    format!("declared {declared} bytes, limit {limit}"),
                );
                let _ = Response::json(413, &body).write_to(&mut writer, false);
                return;
            }
            Err(HttpError::Malformed(detail)) => {
                let _ = Response::json(400, &ErrorBody::new("bad_request", detail))
                    .write_to(&mut writer, false);
                return;
            }
            Ok(Some(request)) => {
                let (response, endpoint) = dispatch(shared, &request, started);
                let keep_alive =
                    request.wants_keep_alive() && !shared.draining.load(Ordering::SeqCst);
                record(metrics, endpoint, response.status, started.elapsed());
                if response.write_to(&mut writer, keep_alive).is_err() || !keep_alive {
                    return;
                }
                metrics.counter("serve.keepalive_reuse").incr();
            }
        }
    }
}

/// Records the per-request metrics every endpoint shares.
fn record(metrics: &exrec_obs::Metrics, endpoint: &'static str, status: u16, took: Duration) {
    metrics.counter("serve.requests").incr();
    metrics
        .histogram(&format!("serve.latency_ns.{endpoint}"))
        .record(took);
    metrics
        .counter(&format!("serve.status.{}xx", status / 100))
        .incr();
}

/// Routes one parsed request, isolating handler panics.
fn dispatch(shared: &Shared, request: &Request, started: Instant) -> (Response, &'static str) {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => (health(shared), "healthz"),
        ("GET", "/metrics") => (Response::json(200, &shared.telemetry.report()), "metrics"),
        ("POST", "/v1/recommend") => (
            handle_post(shared, request, started, "recommend"),
            "recommend",
        ),
        ("POST", "/v1/explain") => (handle_post(shared, request, started, "explain"), "explain"),
        (_, "/healthz" | "/metrics" | "/v1/recommend" | "/v1/explain") => (
            Response::json(
                405,
                &ErrorBody::new(
                    "method_not_allowed",
                    format!("{} not allowed", request.method),
                ),
            ),
            "method_not_allowed",
        ),
        (_, path) => (
            Response::json(
                404,
                &ErrorBody::new("not_found", format!("no route {path}")),
            ),
            "not_found",
        ),
    }
}

fn health(shared: &Shared) -> Response {
    let status = if shared.draining.load(Ordering::SeqCst) {
        "draining"
    } else {
        "ok"
    };
    Response::json(
        200,
        &HealthResponse {
            status: status.to_owned(),
            uptime_ms: shared.started_at.elapsed().as_millis() as u64,
            workers: shared.config.workers.max(1),
            queue_capacity: shared.queue.capacity(),
            queue_depth: shared.queue.len(),
        },
    )
}

/// Parses, deadline-checks and runs one POST body under `catch_unwind`.
fn handle_post(
    shared: &Shared,
    request: &Request,
    started: Instant,
    endpoint: &'static str,
) -> Response {
    let body = match std::str::from_utf8(&request.body) {
        Ok(body) => body,
        Err(_) => {
            return Response::json(400, &ErrorBody::new("bad_request", "body is not UTF-8"));
        }
    };
    let metrics = shared.telemetry.metrics();

    // Parse first so the deadline can honour the request's own budget.
    enum Parsed {
        Recommend(crate::proto::RecommendRequest),
        Explain(crate::proto::ExplainRequest),
    }
    let (parsed, deadline_ms) = match endpoint {
        "recommend" => match serde_json::from_str::<crate::proto::RecommendRequest>(body) {
            Ok(req) => {
                let ms = req.deadline_ms;
                (Parsed::Recommend(req), ms)
            }
            Err(e) => {
                return Response::json(
                    400,
                    &ErrorBody::new("bad_request", format!("invalid JSON body: {e:?}")),
                )
            }
        },
        _ => match serde_json::from_str::<crate::proto::ExplainRequest>(body) {
            Ok(req) => {
                let ms = req.deadline_ms;
                (Parsed::Explain(req), ms)
            }
            Err(e) => {
                return Response::json(
                    400,
                    &ErrorBody::new("bad_request", format!("invalid JSON body: {e:?}")),
                )
            }
        },
    };
    let budget_ms = deadline_ms
        .unwrap_or(shared.config.default_deadline_ms)
        .min(shared.config.max_deadline_ms);
    let deadline = Deadline::from(started, budget_ms);
    if deadline.exceeded() {
        metrics.counter("serve.timeout").incr();
        return Response::json(
            504,
            &ErrorBody::new("deadline_exceeded", "deadline elapsed before handling"),
        );
    }

    let outcome = panic::catch_unwind(AssertUnwindSafe(|| match &parsed {
        Parsed::Recommend(req) => shared
            .app
            .recommend(req, deadline)
            .map(|resp| Response::json(200, &resp)),
        Parsed::Explain(req) => shared
            .app
            .explain(req, deadline)
            .map(|resp| Response::json(200, &resp)),
    }));
    match outcome {
        Ok(Ok(response)) => response,
        Ok(Err(app_error)) => {
            if matches!(app_error, AppError::DeadlineExceeded) {
                metrics.counter("serve.timeout").incr();
            }
            let (status, class, detail) = match app_error {
                AppError::BadRequest(d) => (400, "bad_request", d),
                AppError::NotFound(d) => (404, "not_found", d),
                AppError::Unprocessable(d) => (422, "unprocessable", d),
                AppError::DeadlineExceeded => (
                    504,
                    "deadline_exceeded",
                    format!("deadline of {budget_ms}ms elapsed"),
                ),
            };
            Response::json(status, &ErrorBody::new(class, detail))
        }
        Err(_) => {
            metrics.counter("serve.panic").incr();
            Response::json(
                500,
                &ErrorBody::new("panic", "handler panicked; worker recovered"),
            )
        }
    }
}

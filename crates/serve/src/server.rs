//! The threaded serving edge: acceptor → bounded queue → worker pool.
//!
//! ```text
//!          ┌──────────┐   try_push    ┌─────────────┐   pop   ┌─────────┐
//!  TCP ───▶│ acceptor │──────────────▶│ Bounded<Conn>│────────▶│ workers │──▶ app
//!          └──────────┘  Full → 429   └─────────────┘         └─────────┘
//! ```
//!
//! * **Admission control** — the acceptor never blocks on a full queue:
//!   it answers `429 Too Many Requests` + `Retry-After` on the spot and
//!   closes the connection (`serve.shed` counter).
//! * **Deadlines** — each request's budget starts when its connection
//!   was admitted (so queue wait counts); a spent budget yields `504`
//!   (`serve.timeout` counter) without doing the work.
//! * **Panic isolation** — the app call runs under `catch_unwind`; a
//!   panicking handler costs that request a `500` (`serve.panic`
//!   counter), never the worker.
//! * **Keep-alive** — workers serve a connection's requests back to
//!   back and reap it after `idle_timeout_ms` of silence (socket read
//!   timeout).
//! * **Graceful shutdown** — [`ServerHandle::request_shutdown`] flips
//!   the drain flag; the acceptor stops admitting and exits (closing
//!   the listener), workers drain the queue and finish in-flight
//!   requests (answering `Connection: close`), then
//!   [`ServerHandle::join`] returns.

use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use exrec_obs::profile::{self, PhaseCollector, Profiler};
use exrec_obs::slo::RouteStatus;
use exrec_obs::timeseries::Stat;
use exrec_obs::watch::{Detector, Rule, WatchConfig, Watchdog};
use exrec_obs::{
    promtext, trace, FlightConfig, FlightRecorder, IdSource, IngestRecord, RequestRecord, RunMeta,
    SloConfig, SloMonitor, Telemetry, TimeSeries, TsConfig,
};

use exrec_core::aims::Aim;
use exrec_core::interfaces::InterfaceId;

use crate::app::{AppError, Deadline, ExplainApp};
use crate::http::{read_request, HttpError, Request, Response};
use crate::proto::{
    AimSelectionBody, BuildInfoBody, CacheStatsBody, DebugIncidentsBody, DebugIngestBody,
    DebugProfileBody, DebugQualityBody, DebugRequestsBody, DebugWorldBody, ErrorBody,
    HealthResponse, IncidentStandingBody, IndexShapeBody, QualityStandingBody, ScanStatsBody,
    SloRouteBody, SweepPointBody, WalBody,
};
use crate::queue::{Bounded, Popped, PushError};

/// Tuning knobs of the serving edge.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port `0` picks a free port (tests, loadgen).
    pub addr: String,
    /// Worker threads serving admitted connections.
    pub workers: usize,
    /// Admission queue capacity; the load-shedding threshold.
    pub queue_bound: usize,
    /// Default per-request deadline, milliseconds (requests may lower
    /// or raise it via `deadline_ms`, capped at `max_deadline_ms`).
    pub default_deadline_ms: u64,
    /// Largest client-supplied deadline honoured, milliseconds.
    pub max_deadline_ms: u64,
    /// Keep-alive connections idle longer than this are reaped.
    pub idle_timeout_ms: u64,
    /// Largest accepted request body, bytes.
    pub max_body_bytes: usize,
    /// SLO objective and rolling-window shape (`/healthz` standing,
    /// `slo.*` gauges, degraded detection).
    pub slo: SloConfig,
    /// Seed for the trace id stream; `None` seeds from entropy. Fixing
    /// it makes test traces deterministic.
    pub trace_seed: Option<u64>,
    /// Serve the `GET /debug/*` introspection surface. Off by default:
    /// the endpoints expose request payloads' shape and timings.
    pub debug_endpoints: bool,
    /// Completed requests the flight recorder retains.
    pub flight_capacity: usize,
    /// Time-series sampling interval and per-series retention. The
    /// sampler is always on (it costs two atomic reads per request when
    /// no tick is due); tune the interval with `--ts-interval`.
    pub ts: TsConfig,
    /// Anomaly-watchdog thresholds over the sampled series.
    pub watch: WatchTuning,
}

/// Thresholds for the watchdog's default rule set. Every rule reads a
/// series the edge already publishes; crossing a threshold for
/// `trip_after` consecutive ticks opens one latched incident (and one
/// flight dump), cleared after `clear_after` normal ticks.
#[derive(Debug, Clone)]
pub struct WatchTuning {
    /// Consecutive anomalous ticks before an incident opens.
    pub trip_after: u32,
    /// Consecutive normal ticks before a latched incident closes.
    pub clear_after: u32,
    /// z-score factor for p99 latency drift on read routes.
    pub latency_zscore: f64,
    /// Ticks of EWMA warmup before drift detection arms.
    pub zscore_warmup: u64,
    /// Ceiling on `serve.status.5xx` per second.
    pub error_rate_max: f64,
    /// Ceiling on `serve.shed` per second.
    pub shed_rate_max: f64,
    /// Floor under the live `quality.fidelity` gauge.
    pub quality_min: f64,
    /// Floor under the similarity-cache hit ratio.
    pub hit_ratio_min: f64,
    /// Ceiling on the scan engine's `revision_lag` (matrix revisions
    /// the resident CSR trails the live world by).
    pub revision_lag_max: f64,
    /// Floor under the pruned scan's `prune_ratio`.
    pub prune_ratio_min: f64,
    /// Ticks of warmup before floor (`Below`) rules arm — ratios sit at
    /// zero before traffic exists.
    pub warmup_ticks: u64,
    /// Incidents retained in the bounded log.
    pub incident_capacity: usize,
}

impl Default for WatchTuning {
    fn default() -> Self {
        WatchTuning {
            trip_after: 2,
            clear_after: 3,
            latency_zscore: 6.0,
            zscore_warmup: 12,
            error_rate_max: 1.0,
            shed_rate_max: 100.0,
            quality_min: 0.15,
            hit_ratio_min: 0.02,
            revision_lag_max: 512.0,
            prune_ratio_min: 0.02,
            warmup_ticks: 10,
            incident_capacity: 64,
        }
    }
}

impl WatchTuning {
    /// The default rule set over the edge's sampled series.
    fn rules(&self) -> Vec<Rule> {
        let mut rules = Vec::new();
        for route in ["recommend", "explain"] {
            rules.push(Rule {
                name: format!("latency_drift.{route}"),
                metric: format!("serve.latency_ns.{route}"),
                stat: Stat::P99,
                detector: Detector::ZScore {
                    factor: self.latency_zscore,
                    min_samples: self.zscore_warmup,
                },
            });
        }
        rules.push(Rule {
            name: "error_rate".to_owned(),
            metric: "serve.status.5xx".to_owned(),
            stat: Stat::Rate,
            detector: Detector::Above {
                max: self.error_rate_max,
            },
        });
        rules.push(Rule {
            name: "shed_rate".to_owned(),
            metric: "serve.shed".to_owned(),
            stat: Stat::Rate,
            detector: Detector::Above {
                max: self.shed_rate_max,
            },
        });
        rules.push(Rule {
            name: "quality_fidelity_drop".to_owned(),
            metric: "quality.fidelity".to_owned(),
            stat: Stat::Value,
            detector: Detector::Below {
                min: self.quality_min,
                min_samples: self.warmup_ticks,
            },
        });
        rules.push(Rule {
            name: "cache_hit_ratio_collapse".to_owned(),
            metric: "serve.cache.hit_ratio".to_owned(),
            stat: Stat::Value,
            detector: Detector::Below {
                min: self.hit_ratio_min,
                min_samples: self.warmup_ticks,
            },
        });
        rules.push(Rule {
            name: "ingest_revision_lag".to_owned(),
            metric: "serve.ingest.revision_lag".to_owned(),
            stat: Stat::Value,
            detector: Detector::Above {
                max: self.revision_lag_max,
            },
        });
        rules.push(Rule {
            name: "scan_prune_ratio_collapse".to_owned(),
            metric: "scan.serve.prune_ratio".to_owned(),
            stat: Stat::Value,
            detector: Detector::Below {
                min: self.prune_ratio_min,
                min_samples: self.warmup_ticks,
            },
        });
        rules
    }
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:8787".to_owned(),
            workers: 4,
            queue_bound: 64,
            default_deadline_ms: 2_000,
            max_deadline_ms: 30_000,
            idle_timeout_ms: 5_000,
            max_body_bytes: 1 << 20,
            slo: SloConfig::default(),
            trace_seed: None,
            debug_endpoints: false,
            flight_capacity: 256,
            ts: TsConfig::default(),
            watch: WatchTuning::default(),
        }
    }
}

/// An admitted connection, stamped so queue wait counts against the
/// first request's deadline.
struct Conn {
    stream: TcpStream,
    admitted_at: Instant,
}

/// State shared by acceptor, workers and the handle.
struct Shared {
    app: ExplainApp,
    config: ServerConfig,
    telemetry: Telemetry,
    queue: Bounded<Conn>,
    draining: AtomicBool,
    started_at: Instant,
    /// Source of trace/span ids for request root spans.
    ids: Arc<IdSource>,
    /// Rolling-window SLO standing per route.
    slo: SloMonitor,
    /// Workers currently executing a request (not blocked on the queue).
    busy: AtomicUsize,
    /// Always-on phase profiler (`GET /debug/profile`).
    profiler: Arc<Profiler>,
    /// Black-box ring of the last N completed requests.
    flight: Arc<FlightRecorder>,
    /// Bounded-ring time-series sampler, ticked cooperatively by the
    /// worker pool (`GET /debug/timeseries`).
    ts: TimeSeries,
    /// Anomaly watchdog + incident log — the unified flight-dump
    /// trigger path (rules over ticks, SLO fast-burn and sustained-low
    /// quality as external standings, panics as events).
    watch: Arc<Watchdog>,
    /// Build/run identity served from `/healthz` and `/debug/world`.
    meta: RunMeta,
}

/// A running server; dropping it without calling
/// [`ServerHandle::shutdown`] detaches the threads.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

/// Binds the listener and spawns the acceptor and worker threads.
///
/// # Errors
///
/// Propagates listener bind/configuration failures.
pub fn start(
    app: ExplainApp,
    config: ServerConfig,
    telemetry: Telemetry,
) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let flight = Arc::new(FlightRecorder::new(FlightConfig {
        capacity: config.flight_capacity,
        ..FlightConfig::default()
    }));
    let watch = Arc::new(
        Watchdog::new(
            WatchConfig {
                trip_after: config.watch.trip_after,
                clear_after: config.watch.clear_after,
                log_capacity: config.watch.incident_capacity,
                ..WatchConfig::default()
            },
            config.watch.rules(),
        )
        .with_flight(Arc::clone(&flight))
        .with_metrics(telemetry.metrics()),
    );
    let meta = RunMeta::capture(
        format!(
            "{}x{}@{}",
            app.n_users(),
            app.n_items(),
            app.config().density
        ),
        config.workers.max(1),
    );
    let shared = Arc::new(Shared {
        queue: Bounded::new(config.queue_bound),
        ids: Arc::new(match config.trace_seed {
            Some(seed) => IdSource::seeded(seed),
            None => IdSource::default(),
        }),
        slo: SloMonitor::new(config.slo),
        busy: AtomicUsize::new(0),
        profiler: Arc::new(Profiler::new()),
        flight,
        ts: TimeSeries::new(config.ts.clone()),
        watch,
        meta,
        app,
        config,
        telemetry,
        draining: AtomicBool::new(false),
        started_at: Instant::now(),
    });

    let workers = (0..shared.config.workers.max(1))
        .map(|i| {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("serve-worker-{i}"))
                .spawn(move || worker_loop(&shared))
                .expect("spawn worker")
        })
        .collect();
    let acceptor = {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("serve-acceptor".to_owned())
            .spawn(move || accept_loop(&listener, &shared))
            .expect("spawn acceptor")
    };

    Ok(ServerHandle {
        addr,
        shared,
        acceptor: Some(acceptor),
        workers,
    })
}

impl ServerHandle {
    /// The bound address (resolves port `0` binds).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server's telemetry handle.
    pub fn telemetry(&self) -> &Telemetry {
        &self.shared.telemetry
    }

    /// Current per-route SLO standing (the `serve` binary prints this
    /// in its shutdown report).
    pub fn slo_snapshot(&self) -> std::collections::BTreeMap<String, RouteStatus> {
        self.shared.slo.snapshot()
    }

    /// The always-on phase profiler behind `GET /debug/profile`.
    pub fn profiler(&self) -> &Arc<Profiler> {
        &self.shared.profiler
    }

    /// The live quality estimator's snapshot (the `serve` binary
    /// prints per-interface quality in its shutdown report).
    pub fn quality_snapshot(&self) -> exrec_obs::QualitySnapshot {
        self.shared.app.quality_monitor().snapshot()
    }

    /// The request flight recorder behind `GET /debug/requests`. The
    /// `serve` binary chains it into the process panic hook
    /// ([`FlightRecorder::install_panic_hook`]).
    pub fn flight(&self) -> &Arc<FlightRecorder> {
        &self.shared.flight
    }

    /// The anomaly watchdog behind `GET /debug/incidents`. The `serve`
    /// binary chains it into the process panic hook
    /// ([`Watchdog::install_panic_hook`]) so panics enter the same
    /// incident log as every other trigger.
    pub fn watchdog(&self) -> &Arc<Watchdog> {
        &self.shared.watch
    }

    /// The time-series sampler behind `GET /debug/timeseries`.
    pub fn timeseries(&self) -> &TimeSeries {
        &self.shared.ts
    }

    /// Begins a graceful drain: stop admitting, let workers finish.
    /// Idempotent; returns immediately. Call [`ServerHandle::join`] to
    /// wait for completion, or [`ServerHandle::shutdown`] for both.
    pub fn request_shutdown(&self) {
        if self.shared.draining.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the acceptor's blocking accept() with a wake-up
        // connection; it observes the flag and exits.
        let _ = TcpStream::connect(self.addr);
    }

    /// Waits for the drain to complete: acceptor gone (listener
    /// closed), queue drained, in-flight requests answered. With a
    /// journal attached, the drained world is then compacted (snapshot
    /// beside the WAL, log emptied) so the next start warm-restarts
    /// from the snapshot alone; the result is returned (`None` without
    /// `--wal-path`) and safe to ignore — a failed compaction leaves
    /// the journal intact, costing the next start a replay, not data.
    pub fn join(mut self) -> Option<Result<std::path::PathBuf, exrec_types::Error>> {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        // Acceptor is gone: nothing new can be admitted. Close the
        // queue so workers drain the remainder and exit.
        self.shared.queue.close();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        // Every write is drained: the snapshot captures them all.
        self.shared.app.compact().transpose()
    }

    /// [`ServerHandle::request_shutdown`] + [`ServerHandle::join`].
    pub fn shutdown(self) {
        self.request_shutdown();
        let _ = self.join();
    }
}

/// Accepts connections, admitting them to the queue or shedding.
fn accept_loop(listener: &TcpListener, shared: &Shared) {
    let metrics = shared.telemetry.metrics();
    let accepted = metrics.counter("serve.accepted");
    let shed = metrics.counter("serve.shed");
    let depth_gauge = metrics.gauge("serve.queue_depth");
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shared.draining.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if shared.draining.load(Ordering::SeqCst) {
            // The wake-up poke (or a straggler); refuse politely.
            refuse(stream, 503, "draining", "server is shutting down", None);
            return;
        }
        accepted.incr();
        match shared.queue.try_push(Conn {
            stream,
            admitted_at: Instant::now(),
        }) {
            Ok(depth) => depth_gauge.set(depth as f64),
            Err(PushError::Full(conn)) => {
                shed.incr();
                // Shed requests never reach a worker (no trace, no
                // profile), but the black box still remembers them.
                shared.flight.record(RequestRecord {
                    seq: 0,
                    trace_id: String::new(),
                    route: "admission".to_owned(),
                    status: 429,
                    outcome: RequestRecord::outcome_of(429).to_owned(),
                    start_offset_ns: trace::offset_ns_of(conn.admitted_at),
                    duration_ns: duration_ns(conn.admitted_at.elapsed()),
                    phases: Vec::new(),
                    cache_hits: 0,
                    cache_misses: 0,
                    quality: None,
                    ingest: None,
                });
                refuse(conn.stream, 429, "shed", "admission queue is full", Some(1));
            }
            Err(PushError::Closed(conn)) => {
                refuse(
                    conn.stream,
                    503,
                    "draining",
                    "server is shutting down",
                    None,
                );
                return;
            }
        }
    }
}

/// Writes a one-shot refusal on a connection the queue never saw.
/// Best-effort: a peer that vanished mid-shed is already satisfied.
fn refuse(stream: TcpStream, status: u16, error: &str, detail: &str, retry_after: Option<u64>) {
    let _ = stream.set_write_timeout(Some(Duration::from_millis(500)));
    let mut response = Response::json(status, &ErrorBody::new(error, detail));
    if let Some(seconds) = retry_after {
        response = response.with_retry_after(seconds);
    }
    let mut stream = stream;
    let _ = response.write_to(&mut stream, false);
}

/// One worker: pop admitted connections and serve them to completion.
/// The pop wait is bounded so an otherwise-idle pool still drives the
/// cooperative sampler tick; both arms call [`maybe_tick`], and the
/// loop exits with the queue closed and drained — the tick dies with
/// the pool, which is exactly the clean-SIGTERM story.
fn worker_loop(shared: &Shared) {
    let depth_gauge = shared.telemetry.metrics().gauge("serve.queue_depth");
    let wait = Duration::from_nanos(shared.config.ts.interval_ns.clamp(1_000_000, 250_000_000));
    loop {
        match shared.queue.pop_timeout(wait) {
            Popped::Item(conn) => {
                // The acceptor resynced the gauge at push; one pop is a
                // −1 transition, no queue lock needed.
                depth_gauge.sub(1.0);
                serve_connection(shared, conn);
                maybe_tick(shared);
            }
            Popped::TimedOut => maybe_tick(shared),
            Popped::Closed => return,
        }
    }
}

/// Drives one cooperative sampler tick if due: refreshes the derived
/// gauges the detectors read, cuts the time-series sample (CAS-claimed,
/// so exactly one caller wins), and runs the watchdog over it. The
/// not-due path is two atomic loads.
fn maybe_tick(shared: &Shared) {
    if !shared.ts.due() {
        return;
    }
    refresh_derived_gauges(shared);
    if let Some(tick) = shared.ts.maybe_sample(shared.telemetry.metrics()) {
        shared.watch.observe(&tick);
    }
}

/// Publishes point-in-time gauges that only exist as method calls on
/// the app (cache hit ratio, CSR revision lag), so the sampler and the
/// watchdog see them as ordinary series. Runs only on due ticks.
fn refresh_derived_gauges(shared: &Shared) {
    let metrics = shared.telemetry.metrics();
    if let Some((stats, capacity)) = shared.app.cache_stats() {
        metrics.gauge("serve.cache.hit_ratio").set(stats.hit_rate());
        metrics
            .gauge("serve.cache.occupancy")
            .set(stats.entries as f64 / capacity.max(1) as f64);
    }
    if let Some(stats) = shared.app.scan_stats() {
        if let Some(csr) = stats.csr_revision {
            let lag = shared.app.ratings_revision().saturating_sub(csr);
            metrics.gauge("serve.ingest.revision_lag").set(lag as f64);
        }
    }
}

/// Serves every request on one connection (keep-alive loop).
fn serve_connection(shared: &Shared, conn: Conn) {
    let metrics = shared.telemetry.metrics();
    metrics.counter("serve.connections").incr();
    let stream = conn.stream;
    let idle = Duration::from_millis(shared.config.idle_timeout_ms.max(1));
    if stream.set_read_timeout(Some(idle)).is_err() || stream.set_nodelay(true).is_err() {
        return;
    }
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    // The first request's deadline starts at admission: time spent in
    // the queue is part of the latency the client observes. The wait
    // itself (admission → this worker popping the connection) is
    // captured here and reported as the first request's
    // `serve.queue_wait` child span.
    let mut request_start = Some(conn.admitted_at);
    let mut queue_wait = Some(conn.admitted_at.elapsed());

    loop {
        let read_started = Instant::now();
        let request = read_request(&mut reader, shared.config.max_body_bytes);
        let parse_took = read_started.elapsed();
        let started = request_start.take().unwrap_or_else(Instant::now);
        match request {
            Ok(None) => return, // peer closed cleanly
            Err(e) if e.is_timeout() => {
                metrics.counter("serve.idle_reaped").incr();
                return;
            }
            Err(HttpError::Io(_)) => return,
            Err(HttpError::BodyTooLarge { declared, limit }) => {
                let body = ErrorBody::new(
                    "body_too_large",
                    format!("declared {declared} bytes, limit {limit}"),
                );
                let _ = Response::json(413, &body).write_to(&mut writer, false);
                return;
            }
            Err(HttpError::Malformed(detail)) => {
                let _ = Response::json(400, &ErrorBody::new("bad_request", detail))
                    .write_to(&mut writer, false);
                return;
            }
            Ok(Some(request)) => {
                // Root span of the request's trace, backdated to
                // admission so queue wait is inside the root (and counts
                // toward the tail sampler's slow threshold).
                let root = shared
                    .telemetry
                    .root_span("serve.request", &shared.ids)
                    .started_at(started);
                let trace_hex = root.trace_id_hex().unwrap_or_default();
                let wait = queue_wait.take();
                if let Some(wait) = wait {
                    // Emitted as a zero-width child covering the queue
                    // time that already elapsed before this loop.
                    let _qw = shared
                        .telemetry
                        .span("serve.queue_wait")
                        .started_at(conn.admitted_at)
                        .with_duration(wait);
                }
                let collector = Arc::new(PhaseCollector::new());
                let busy_gauge = metrics.gauge("serve.busy_workers");
                shared.busy.fetch_add(1, Ordering::Relaxed);
                busy_gauge.add(1.0);
                let (response, endpoint, ingest) = dispatch(shared, &request, started, &collector);
                shared.busy.fetch_sub(1, Ordering::Relaxed);
                busy_gauge.sub(1.0);
                // First request on the connection: its wall clock runs
                // from admission, so the pre-dispatch time (queue wait,
                // request read + parse) is attributable now that the
                // route is known. Later keep-alive requests start their
                // clock after the read, so only `handle` applies.
                if let Some(wait) = wait {
                    shared
                        .profiler
                        .record_external(endpoint, "queue_wait", wait);
                    collector.add("queue_wait", wait);
                    shared
                        .profiler
                        .record_external(endpoint, "parse", parse_took);
                    collector.add("parse", parse_took);
                }
                // Annotate the root so the tail sampler can keep errored
                // traces, then drop it: the full trace is flushed (or
                // discarded) before the client sees the response.
                let mut root = root
                    .field("endpoint", endpoint)
                    .field("status", response.status);
                if response.status >= 500 {
                    root = root.field("error", format!("http_{}", response.status));
                }
                drop(root);
                let response = response.with_header("x-exrec-trace-id", trace_hex.clone());
                let keep_alive =
                    request.wants_keep_alive() && !shared.draining.load(Ordering::SeqCst);
                record(
                    shared,
                    endpoint,
                    response.status,
                    started.elapsed(),
                    &trace_hex,
                    started,
                    &collector,
                    ingest,
                );
                if response.write_to(&mut writer, keep_alive).is_err() || !keep_alive {
                    return;
                }
                metrics.counter("serve.keepalive_reuse").incr();
            }
        }
    }
}

/// Saturating `Duration` → whole nanoseconds.
fn duration_ns(d: Duration) -> u64 {
    d.as_nanos().min(u128::from(u64::MAX)) as u64
}

/// Records the per-request metrics every endpoint shares, advances the
/// route's SLO window, refreshes the `slo.*` gauges, and writes the
/// request into the flight recorder. SLO fast-burn and sustained-low
/// quality standings feed the watchdog as external signals: the rising
/// edge opens one latched incident (and one flight dump), the falling
/// edge closes it — the same once-per-onset discipline the two old
/// ad-hoc `AtomicBool` latches implemented separately.
#[allow(clippy::too_many_arguments)]
fn record(
    shared: &Shared,
    endpoint: &'static str,
    status: u16,
    took: Duration,
    trace_hex: &str,
    started: Instant,
    collector: &PhaseCollector,
    ingest: Option<IngestRecord>,
) {
    let metrics = shared.telemetry.metrics();
    metrics.counter("serve.requests").incr();
    metrics
        .histogram(&format!("serve.latency_ns.{endpoint}"))
        .record(took);
    metrics
        .counter(&format!("serve.status.{}xx", status / 100))
        .incr();
    shared.flight.record(RequestRecord {
        seq: 0,
        trace_id: trace_hex.to_owned(),
        route: endpoint.to_owned(),
        status,
        outcome: RequestRecord::outcome_of(status).to_owned(),
        start_offset_ns: trace::offset_ns_of(started),
        duration_ns: duration_ns(took),
        phases: collector.phases(),
        cache_hits: collector.cache_hits(),
        cache_misses: collector.cache_misses(),
        quality: collector.quality(),
        ingest,
    });
    // 4xx is the server behaving correctly under a bad request; only
    // 5xx spends error budget on top of the latency objective.
    let ok = status < 500;
    shared.slo.record(endpoint, duration_ns(took), ok);
    if let Some(st) = shared.slo.status(endpoint) {
        metrics
            .gauge(&format!("slo.good_ratio.{endpoint}"))
            .set(st.good_ratio);
        metrics
            .gauge(&format!("slo.burn_rate.{endpoint}"))
            .set(st.burn_rate);
        metrics
            .gauge(&format!("slo.window_good.{endpoint}"))
            .set(st.good as f64);
        metrics
            .gauge(&format!("slo.window_total.{endpoint}"))
            .set(st.total as f64);
        if st.degraded {
            shared.watch.external(
                "slo_fast_burn",
                true,
                &format!("slo fast-burn onset on {endpoint}"),
            );
        } else if shared.watch.external_active("slo_fast_burn")
            && !shared.slo.snapshot().values().any(|s| s.degraded)
        {
            shared.watch.external("slo_fast_burn", false, "");
        }
    }
    // Sustained low explanation quality enters the same unified path:
    // the sampled low-quality requests are still resident in the flight
    // ring, scores attached, when the dump fires.
    let sustained_low = shared.app.quality_monitor().sustained_low();
    if sustained_low || shared.watch.external_active("quality_sustained_low") {
        shared.watch.external(
            "quality_sustained_low",
            sustained_low,
            "sustained low explanation quality",
        );
    }
    // Busy traffic drives the sampler from the request path too, so
    // tick cadence never depends on a worker going idle.
    maybe_tick(shared);
}

/// Routes one parsed request, isolating handler panics. The endpoint
/// name resolves first so the entire handler runs under the route's
/// profiling context ([`Profiler::route`]) inside a `handle` phase —
/// the inner phases (`admit`, `scan`, `evidence`, …) nest beneath it.
fn dispatch(
    shared: &Shared,
    request: &Request,
    started: Instant,
    collector: &Arc<PhaseCollector>,
) -> (Response, &'static str, Option<IngestRecord>) {
    // The request target may carry a query string (`?aim=trust`);
    // routes match on the bare path, handlers see the query.
    let (path, query) = match request.path.split_once('?') {
        Some((path, query)) => (path, Some(query)),
        None => (request.path.as_str(), None),
    };
    let endpoint: &'static str = match (request.method.as_str(), path) {
        ("GET", "/healthz") => "healthz",
        ("GET", "/metrics") => "metrics",
        ("GET", "/debug/profile") => "debug_profile",
        ("GET", "/debug/requests") => "debug_requests",
        ("GET", "/debug/world") => "debug_world",
        ("GET", "/debug/quality") => "debug_quality",
        ("GET", "/debug/ingest") => "debug_ingest",
        ("GET", "/debug/timeseries") => "debug_timeseries",
        ("GET", "/debug/incidents") => "debug_incidents",
        ("POST", "/v1/recommend") => "recommend",
        ("POST", "/v1/explain") => "explain",
        ("POST", "/v1/rate") => "rate",
        ("POST", "/v1/rate/batch") => "rate_batch",
        (
            _,
            "/healthz" | "/metrics" | "/v1/recommend" | "/v1/explain" | "/v1/rate"
            | "/v1/rate/batch" | "/debug/profile" | "/debug/requests" | "/debug/world"
            | "/debug/quality" | "/debug/ingest" | "/debug/timeseries" | "/debug/incidents",
        ) => "method_not_allowed",
        _ => "not_found",
    };
    let _route = shared.profiler.route(endpoint, Arc::clone(collector));
    let _handle = profile::phase("handle");
    let mut ingest = None;
    let response = match endpoint {
        "healthz" => health(shared),
        "metrics" => metrics_response(shared, request),
        "debug_profile" => debug_profile(shared, request),
        "debug_requests" => debug_requests(shared),
        "debug_world" => debug_world(shared),
        "debug_quality" => debug_quality(shared),
        "debug_ingest" => debug_ingest(shared),
        "debug_timeseries" => debug_timeseries(shared),
        "debug_incidents" => debug_incidents(shared),
        "recommend" | "explain" | "rate" | "rate_batch" => {
            let (response, ingested) = handle_post(shared, request, started, endpoint, query);
            ingest = ingested;
            response
        }
        "method_not_allowed" => Response::json(
            405,
            &ErrorBody::new(
                "method_not_allowed",
                format!("{} not allowed", request.method),
            ),
        ),
        _ => Response::json(
            404,
            &ErrorBody::new("not_found", format!("no route {}", request.path)),
        ),
    };
    (response, endpoint, ingest)
}

/// The refusal every `/debug/*` handler answers when the surface is
/// off (the default): the endpoints expose payload shapes and timings.
fn debug_disabled() -> Response {
    Response::json(
        403,
        &ErrorBody::new(
            "debug_disabled",
            "debug endpoints require --debug-endpoints",
        ),
    )
}

/// `GET /debug/profile`: collapsed-stack text under `Accept:
/// text/plain` (pipe straight into flamegraph tooling), otherwise JSON
/// with both the per-route phase trees and the collapsed rendering.
fn debug_profile(shared: &Shared, request: &Request) -> Response {
    if !shared.config.debug_endpoints {
        return debug_disabled();
    }
    let wants_text = request
        .header("accept")
        .is_some_and(|accept| accept.contains("text/plain"));
    if wants_text {
        Response::text(
            200,
            shared.profiler.collapsed(),
            "text/plain; charset=utf-8",
        )
    } else {
        Response::json(
            200,
            &DebugProfileBody {
                routes: shared.profiler.snapshot().routes,
                collapsed: shared.profiler.collapsed(),
            },
        )
    }
}

/// `GET /debug/requests`: the flight recorder's resident window,
/// oldest first.
fn debug_requests(shared: &Shared) -> Response {
    if !shared.config.debug_endpoints {
        return debug_disabled();
    }
    Response::json(
        200,
        &DebugRequestsBody {
            capacity: shared.flight.capacity(),
            recorded: shared.flight.recorded(),
            requests: shared.flight.snapshot(),
        },
    )
}

/// `GET /debug/quality`: the measured quality book behind aim-fit
/// selection, the live sampled estimator's snapshot, and the selection
/// both currently imply per aim.
fn debug_quality(shared: &Shared) -> Response {
    if !shared.config.debug_endpoints {
        return debug_disabled();
    }
    let app = &shared.app;
    let book = app.quality_book();
    let offline = InterfaceId::ALL
        .into_iter()
        .filter_map(|id| book.measured(id.key()))
        .collect();
    let selection = Aim::ALL
        .into_iter()
        .map(|aim| {
            let static_default = exrec_registry::quality::static_default_for_aim(aim);
            let (selected, score) = match book.select_for_aim(aim) {
                Some((id, score)) => (id, score),
                None => (
                    static_default.unwrap_or(app.config().default_interface),
                    0.0,
                ),
            };
            AimSelectionBody {
                aim: aim.name().to_ascii_lowercase(),
                selected: selected.key().to_owned(),
                score,
                static_default: static_default.map(|id| id.key().to_owned()),
                static_score: static_default
                    .map(|id| book.aim_score(id, aim))
                    .unwrap_or(0.0),
            }
        })
        .collect();
    Response::json(
        200,
        &DebugQualityBody {
            offline,
            online: app.quality_monitor().snapshot(),
            selection,
        },
    )
}

/// `GET /debug/ingest`: the write path's standing — lifetime counts,
/// the revision they produced, and the journal's shape.
fn debug_ingest(shared: &Shared) -> Response {
    if !shared.config.debug_endpoints {
        return debug_disabled();
    }
    let app = &shared.app;
    let (requests, applied, rejected) = app.ingest_counts();
    Response::json(
        200,
        &DebugIngestBody {
            requests,
            applied,
            rejected,
            revision: app.ratings_revision(),
            snapshot_loaded: app.snapshot_loaded(),
            wal: app.wal_stats().map(|stats| WalBody {
                path: app
                    .wal_path()
                    .map(|p| p.display().to_string())
                    .unwrap_or_default(),
                fsync: app.config().fsync,
                size_bytes: stats.size_bytes,
                records: stats.records,
                replayed: stats.replayed,
                truncated_bytes: stats.truncated_bytes,
            }),
        },
    )
}

/// `GET /debug/timeseries`: every retained series — counter rates,
/// gauge samples, windowed histogram percentiles — straight from the
/// sampler's rings.
fn debug_timeseries(shared: &Shared) -> Response {
    if !shared.config.debug_endpoints {
        return debug_disabled();
    }
    Response::json(200, &shared.ts.snapshot())
}

/// `GET /debug/incidents`: the watchdog's bounded incident log plus
/// its standing counters.
fn debug_incidents(shared: &Shared) -> Response {
    if !shared.config.debug_endpoints {
        return debug_disabled();
    }
    Response::json(
        200,
        &DebugIncidentsBody {
            schema: exrec_obs::watch::WATCH_SCHEMA,
            capacity: shared.watch.log_capacity(),
            opened: shared.watch.opened(),
            active: shared.watch.active(),
            flight_dumps: shared.watch.flight_dumps(),
            incidents: shared.watch.incidents(),
        },
    )
}

/// The build/version stamp shared by `/healthz` and `/debug/world`.
fn build_body(shared: &Shared) -> BuildInfoBody {
    BuildInfoBody {
        git_rev: shared.meta.git_rev.clone(),
        world: shared.meta.world.clone(),
        threads: shared.meta.threads,
        flight_schema: exrec_obs::flight::RECORD_SCHEMA,
        ts_schema: exrec_obs::timeseries::TS_SCHEMA,
        watch_schema: exrec_obs::watch::WATCH_SCHEMA,
    }
}

/// `GET /debug/world`: the served world's shape and effective serving
/// configuration.
fn debug_world(shared: &Shared) -> Response {
    if !shared.config.debug_endpoints {
        return debug_disabled();
    }
    let app = &shared.app;
    Response::json(
        200,
        &DebugWorldBody {
            users: app.n_users(),
            items: app.n_items(),
            ratings: app.n_ratings(),
            ratings_revision: app.ratings_revision(),
            model: app.model_name().to_owned(),
            default_interface: app.config().default_interface.key().to_owned(),
            workers: shared.config.workers.max(1),
            pool_threads: app.pool_threads(),
            queue_capacity: shared.queue.capacity(),
            cache: cache_body(app),
            scan: scan_body(app),
            build: Some(build_body(shared)),
        },
    )
}

/// The neighbour-scan engine's standing as a wire body for
/// `/debug/world`. `None` when the model runs the brute per-pair path.
fn scan_body(app: &ExplainApp) -> Option<ScanStatsBody> {
    let matrix_revision = app.ratings_revision();
    app.scan_stats().map(|stats| ScanStatsBody {
        mode: app.scan_mode().to_owned(),
        tile_users: stats.tile_users,
        sweep: stats
            .sweep
            .iter()
            .map(|&(tile_users, elapsed_ns)| SweepPointBody {
                tile_users,
                elapsed_ns,
            })
            .collect(),
        csr_revision: stats.csr_revision,
        csr_builds: stats.csr_builds,
        index_builds: stats.index_builds,
        index: stats
            .index_shape
            .map(|(centroids, probes)| IndexShapeBody { centroids, probes }),
        exact_scans: stats.exact_scans,
        pruned_scans: stats.pruned_scans,
        exact_fallbacks: stats.exact_fallbacks,
        tiles_visited: stats.tiles_visited,
        candidates_scored: stats.candidates_scored,
        prune_ratio: stats.last_prune_ratio,
        // The divergence the old block silently hid: how far the
        // resident CSR trails the live matrix right now.
        revision_lag: stats
            .csr_revision
            .map(|csr| matrix_revision.saturating_sub(csr)),
        csr_patches: stats.csr_patches,
        index_patches: stats.index_patches,
        pending_deltas: stats.pending_deltas,
        patched_since_build: stats.patched_since_build,
    })
}

/// The similarity cache's standing as a wire body, shared by
/// `/healthz` and `/debug/world`. `None` when the model runs uncached.
fn cache_body(app: &ExplainApp) -> Option<CacheStatsBody> {
    app.cache_stats().map(|(stats, capacity)| CacheStatsBody {
        entries: stats.entries,
        capacity,
        occupancy: stats.entries as f64 / capacity.max(1) as f64,
        hits: stats.hits,
        misses: stats.misses,
        hit_ratio: stats.hit_rate(),
        evictions: stats.evictions,
        invalidations: stats.invalidations,
    })
}

/// `GET /metrics`: Prometheus text exposition when the client sends
/// `Accept: text/plain`, the JSON report otherwise.
fn metrics_response(shared: &Shared, request: &Request) -> Response {
    let wants_text = request
        .header("accept")
        .is_some_and(|accept| accept.contains("text/plain"));
    if wants_text {
        Response::text(
            200,
            promtext::render(shared.telemetry.metrics()),
            "text/plain; version=0.0.4",
        )
    } else {
        Response::json(200, &shared.telemetry.report())
    }
}

fn health(shared: &Shared) -> Response {
    let slo = shared.slo.snapshot();
    let quality = shared.app.quality_monitor().snapshot();
    // Any standing incident — a latched watchdog rule or an active
    // external — degrades health; the SLO/quality checks below are
    // technically redundant with their external standings but kept so
    // /healthz never lags the signal by one request.
    let active_incidents = shared.watch.active();
    let status = if shared.draining.load(Ordering::SeqCst) {
        "draining"
    } else if slo.values().any(|s| s.degraded) || quality.sustained_low || active_incidents > 0 {
        "degraded"
    } else {
        "ok"
    };
    let workers = shared.config.workers.max(1);
    let queue_depth = shared.queue.len();
    let queue_capacity = shared.queue.capacity();
    // This handler runs on a worker, so busy includes the health check
    // itself — truthful, if humbling.
    let busy_workers = shared.busy.load(Ordering::Relaxed).min(workers);
    Response::json(
        200,
        &HealthResponse {
            status: status.to_owned(),
            uptime_ms: shared.started_at.elapsed().as_millis() as u64,
            workers,
            queue_capacity,
            queue_depth,
            queue_saturation: queue_depth as f64 / queue_capacity.max(1) as f64,
            busy_workers,
            worker_saturation: busy_workers as f64 / workers as f64,
            slo: slo
                .into_iter()
                .map(|(route, s)| {
                    (
                        route,
                        SloRouteBody {
                            good: s.good,
                            total: s.total,
                            good_ratio: s.good_ratio,
                            burn_rate: s.burn_rate,
                            fast_burn_rate: s.fast_burn_rate,
                            degraded: s.degraded,
                        },
                    )
                })
                .collect(),
            cache: cache_body(&shared.app),
            quality: Some(QualityStandingBody {
                samples: quality.samples,
                sample_every: quality.sample_every,
                mean_score: quality.mean_score,
                low_streak: quality.low_streak,
                sustained_low: quality.sustained_low,
            }),
            incidents: Some(IncidentStandingBody {
                active: active_incidents,
                opened: shared.watch.opened(),
                flight_dumps: shared.watch.flight_dumps(),
                last_rule: shared.watch.incidents().last().map(|i| i.rule.clone()),
            }),
            build: Some(build_body(shared)),
        },
    )
}

/// Extracts one `key=value` pair from a raw query string. Aim names
/// and interface keys are plain lowercase words, so no percent
/// decoding is attempted.
fn query_param<'a>(query: Option<&'a str>, key: &str) -> Option<&'a str> {
    query?.split('&').find_map(|kv| {
        let (k, v) = kv.split_once('=')?;
        (k == key && !v.is_empty()).then_some(v)
    })
}

/// Parses, deadline-checks and runs one POST body under `catch_unwind`.
/// Write routes also return the flight recorder's ingest detail.
fn handle_post(
    shared: &Shared,
    request: &Request,
    started: Instant,
    endpoint: &'static str,
    query: Option<&str>,
) -> (Response, Option<IngestRecord>) {
    // Admission: body decode, JSON parse, deadline arithmetic — all
    // before the model runs.
    let admit = profile::phase("admit");
    let body = match std::str::from_utf8(&request.body) {
        Ok(body) => body,
        Err(_) => {
            return (
                Response::json(400, &ErrorBody::new("bad_request", "body is not UTF-8")),
                None,
            );
        }
    };
    let metrics = shared.telemetry.metrics();

    // Parse first so the deadline can honour the request's own budget.
    enum Parsed {
        Recommend(crate::proto::RecommendRequest),
        Explain(crate::proto::ExplainRequest),
        Rate(crate::proto::RateRequest),
        RateBatch(crate::proto::RateBatchRequest),
    }
    fn bad_json(e: &serde_json::Error) -> (Response, Option<IngestRecord>) {
        (
            Response::json(
                400,
                &ErrorBody::new("bad_request", format!("invalid JSON body: {e:?}")),
            ),
            None,
        )
    }
    let (parsed, deadline_ms) = match endpoint {
        "recommend" => match serde_json::from_str::<crate::proto::RecommendRequest>(body) {
            Ok(req) => {
                let ms = req.deadline_ms;
                (Parsed::Recommend(req), ms)
            }
            Err(e) => return bad_json(&e),
        },
        "rate" => match serde_json::from_str::<crate::proto::RateRequest>(body) {
            Ok(req) => {
                let ms = req.deadline_ms;
                (Parsed::Rate(req), ms)
            }
            Err(e) => return bad_json(&e),
        },
        "rate_batch" => match serde_json::from_str::<crate::proto::RateBatchRequest>(body) {
            Ok(req) => {
                let ms = req.deadline_ms;
                (Parsed::RateBatch(req), ms)
            }
            Err(e) => return bad_json(&e),
        },
        _ => match serde_json::from_str::<crate::proto::ExplainRequest>(body) {
            Ok(mut req) => {
                // `?aim=` on the URL is an equivalent spelling of the
                // body field; the body wins when both are present.
                if req.aim.is_none() {
                    req.aim = query_param(query, "aim").map(str::to_owned);
                }
                let ms = req.deadline_ms;
                (Parsed::Explain(req), ms)
            }
            Err(e) => return bad_json(&e),
        },
    };
    let budget_ms = deadline_ms
        .unwrap_or(shared.config.default_deadline_ms)
        .min(shared.config.max_deadline_ms);
    let deadline = Deadline::from(started, budget_ms);
    if deadline.exceeded() {
        metrics.counter("serve.timeout").incr();
        return (
            Response::json(
                504,
                &ErrorBody::new("deadline_exceeded", "deadline elapsed before handling"),
            ),
            None,
        );
    }

    drop(admit);
    let outcome = panic::catch_unwind(AssertUnwindSafe(|| match &parsed {
        Parsed::Recommend(req) => shared
            .app
            .recommend(req, deadline)
            .map(|resp| (Response::json(200, &resp), None)),
        Parsed::Explain(req) => shared
            .app
            .explain(req, deadline)
            .map(|resp| (Response::json(200, &resp), None)),
        Parsed::Rate(req) => shared.app.rate(req, deadline).map(|resp| {
            let ingest = IngestRecord {
                applied: resp.applied,
                wal_append_ns: resp.wal_append_ns,
            };
            (Response::json(200, &resp), Some(ingest))
        }),
        Parsed::RateBatch(req) => shared.app.rate_batch(req, deadline).map(|resp| {
            let ingest = IngestRecord {
                applied: resp.applied,
                wal_append_ns: resp.wal_append_ns,
            };
            (Response::json(200, &resp), Some(ingest))
        }),
    }));
    match outcome {
        Ok(Ok((response, ingest))) => (response, ingest),
        Ok(Err(app_error)) => {
            if matches!(app_error, AppError::DeadlineExceeded) {
                metrics.counter("serve.timeout").incr();
            }
            let (status, class, detail) = match app_error {
                AppError::BadRequest(d) => (400, "bad_request", d),
                AppError::NotFound(d) => (404, "not_found", d),
                AppError::Unprocessable(d) => (422, "unprocessable", d),
                AppError::DeadlineExceeded => (
                    504,
                    "deadline_exceeded",
                    format!("deadline of {budget_ms}ms elapsed"),
                ),
                AppError::Internal(d) => (500, "internal", d),
            };
            (Response::json(status, &ErrorBody::new(class, detail)), None)
        }
        Err(_) => {
            metrics.counter("serve.panic").incr();
            (
                Response::json(
                    500,
                    &ErrorBody::new("panic", "handler panicked; worker recovered"),
                ),
                None,
            )
        }
    }
}

//! `serve` — run the explanation-serving edge.
//!
//! ```text
//! serve [--port P]            bind port (default 8787; 0 = ephemeral)
//!       [--workers N]         worker threads (default 4)
//!       [--queue-bound N]     admission queue capacity (default 64)
//!       [--deadline-ms D]     default per-request deadline (default 2000)
//!       [--idle-ms I]         keep-alive idle reap timeout (default 5000)
//!       [--users N]           synthetic world size (default 2000)
//!       [--items N]           synthetic catalog size (default 300)
//!       [--density F]         synthetic rating density (default 0.05)
//!       [--interface KEY]     default explanation interface
//!       [--pool-threads N]    intra-request batch threads (default: cores)
//!       [--exact]             exact tiled scan instead of the pruned index
//!       [--fault-injection]   honour inject_panic/inject_delay_ms (tests)
//!       [--trace-slow-ms T]   tail-sample traces slower than T ms (default 500)
//!       [--trace-sample N]    also head-sample 1/N of all traces (default 0 = off)
//!       [--trace-seed S]      seed the trace id stream (deterministic ids)
//!       [--slo-ms L]          per-request latency objective (default 250)
//!       [--slo-target F]      target good ratio over the window (default 0.99)
//!       [--debug-endpoints]   serve GET /debug/{profile,requests,world,quality}
//!       [--flight-capacity N] flight-recorder ring size (default 256)
//!       [--ts-interval DUR]   time-series sampling interval (default 5s;
//!                             accepts e.g. 250ms, 1s, 2m)
//!       [--ts-retention N]    points retained per series (default 120)
//!       [--watch-trip N]      anomalous ticks before an incident opens (default 2)
//!       [--watch-clear N]     normal ticks before an incident closes (default 3)
//!       [--watch-latency-zscore F]  p99 drift sensitivity (default 6.0)
//!       [--watch-error-rate F]      5xx-per-second ceiling (default 1.0)
//!       [--watch-shed-rate F]       sheds-per-second ceiling (default 100.0)
//!       [--watch-quality-min F]     live fidelity floor (default 0.15)
//!       [--watch-incidents N]       incident-log capacity (default 64)
//!       [--quality-sample N]  quality-sample 1-in-N explain requests (default 8; 0 = off)
//!       [--quality-pairs N]   startup scoring pairs per interface (default 16)
//!       [--wal-path PATH]     journal writes to PATH; warm-restart from
//!                             PATH.snap + WAL tail on startup
//!       [--fsync]             fsync the WAL on every append
//! ```
//!
//! Sampled traces are written to stderr as JSON lines (one span per
//! line, correlated by `trace_id`). Runs until SIGTERM or ctrl-c
//! (SIGINT), then drains gracefully: stops admitting, finishes queued
//! and in-flight requests, closes the listener, and prints the final
//! telemetry report and per-route SLO standing to stderr.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use exrec_core::interfaces::InterfaceId;
use exrec_obs::{
    JsonLinesSubscriber, Metrics, Subscriber, TailConfig, TailSamplingSubscriber, Telemetry,
};
use exrec_serve::app::{AppConfig, ExplainApp};
use exrec_serve::server::{self, ServerConfig};

/// Set from the signal handler; polled by the main loop.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// Installs a minimal SIGINT/SIGTERM handler that flips [`SHUTDOWN`].
///
/// The workspace vendors no `libc`/`signal-hook`, so this binds the C
/// library's `signal(2)` directly; the handler only stores to an
/// atomic, which is async-signal-safe. On non-unix targets this is a
/// no-op and the process runs until killed.
#[cfg(unix)]
fn install_signal_handlers() {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    extern "C" fn on_signal(_signum: i32) {
        SHUTDOWN.store(true, Ordering::SeqCst);
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    let handler = on_signal as extern "C" fn(i32) as usize;
    unsafe {
        signal(SIGINT, handler);
        signal(SIGTERM, handler);
    }
}

#[cfg(not(unix))]
fn install_signal_handlers() {}

fn usage() -> ! {
    eprintln!("usage: serve [--port P] [--workers N] [--queue-bound N] [--deadline-ms D]");
    eprintln!("             [--idle-ms I] [--users N] [--items N] [--density F]");
    eprintln!("             [--interface KEY] [--pool-threads N] [--exact] [--fault-injection]");
    eprintln!("             [--trace-slow-ms T] [--trace-sample N] [--trace-seed S]");
    eprintln!("             [--slo-ms L] [--slo-target F]");
    eprintln!("             [--debug-endpoints] [--flight-capacity N]");
    eprintln!("             [--quality-sample N] [--quality-pairs N]");
    eprintln!("             [--wal-path PATH] [--fsync]");
    eprintln!("             [--ts-interval DUR] [--ts-retention N]");
    eprintln!("             [--watch-trip N] [--watch-clear N] [--watch-latency-zscore F]");
    eprintln!("             [--watch-error-rate F] [--watch-shed-rate F]");
    eprintln!("             [--watch-quality-min F] [--watch-incidents N]");
    std::process::exit(2);
}

fn parse<T: std::str::FromStr>(flag: &str, value: Option<String>) -> T {
    match value.and_then(|v| v.parse().ok()) {
        Some(v) => v,
        None => {
            eprintln!("[serve] {flag} needs a valid value");
            usage();
        }
    }
}

/// Parses a human duration (`250ms`, `1s`, `2m`; bare digits = seconds)
/// into nanoseconds.
fn parse_duration_ns(flag: &str, value: Option<String>) -> u64 {
    let raw = match value {
        Some(v) => v,
        None => {
            eprintln!("[serve] {flag} needs a duration (e.g. 250ms, 1s, 2m)");
            usage();
        }
    };
    let (digits, unit_ns) = if let Some(d) = raw.strip_suffix("ns") {
        (d, 1u64)
    } else if let Some(d) = raw.strip_suffix("us") {
        (d, 1_000)
    } else if let Some(d) = raw.strip_suffix("ms") {
        (d, 1_000_000)
    } else if let Some(d) = raw.strip_suffix('s') {
        (d, 1_000_000_000)
    } else if let Some(d) = raw.strip_suffix('m') {
        (d, 60_000_000_000)
    } else {
        (raw.as_str(), 1_000_000_000)
    };
    match digits.parse::<u64>() {
        Ok(n) if n > 0 => n.saturating_mul(unit_ns),
        _ => {
            eprintln!("[serve] {flag}: {raw:?} is not a positive duration");
            usage();
        }
    }
}

fn main() {
    let mut port: u16 = 8787;
    let mut app_config = AppConfig::default();
    let mut server_config = ServerConfig::default();
    let mut tail_config = TailConfig::default();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--port" => port = parse("--port", args.next()),
            "--trace-slow-ms" => {
                let ms: u64 = parse("--trace-slow-ms", args.next());
                tail_config.slow_threshold_ns = ms.saturating_mul(1_000_000);
            }
            "--trace-sample" => {
                tail_config.head_sample_every = parse("--trace-sample", args.next())
            }
            "--trace-seed" => server_config.trace_seed = Some(parse("--trace-seed", args.next())),
            "--slo-ms" => {
                let ms: u64 = parse("--slo-ms", args.next());
                server_config.slo.objective_ns = ms.saturating_mul(1_000_000);
            }
            "--slo-target" => server_config.slo.target = parse("--slo-target", args.next()),
            "--workers" => server_config.workers = parse("--workers", args.next()),
            "--queue-bound" => server_config.queue_bound = parse("--queue-bound", args.next()),
            "--deadline-ms" => {
                server_config.default_deadline_ms = parse("--deadline-ms", args.next())
            }
            "--idle-ms" => server_config.idle_timeout_ms = parse("--idle-ms", args.next()),
            "--users" => app_config.n_users = parse("--users", args.next()),
            "--items" => app_config.n_items = parse("--items", args.next()),
            "--density" => app_config.density = parse("--density", args.next()),
            "--pool-threads" => app_config.pool_threads = parse("--pool-threads", args.next()),
            "--interface" => {
                let key: String = parse("--interface", args.next());
                match InterfaceId::from_key(&key) {
                    Some(id) => app_config.default_interface = id,
                    None => {
                        eprintln!("[serve] unknown interface {key:?}; known keys:");
                        for id in InterfaceId::ALL {
                            eprintln!("  {}", id.key());
                        }
                        std::process::exit(2);
                    }
                }
            }
            "--quality-sample" => {
                app_config.quality_sample_every = parse("--quality-sample", args.next())
            }
            "--quality-pairs" => app_config.quality_pairs = parse("--quality-pairs", args.next()),
            "--wal-path" => {
                let path: String = parse("--wal-path", args.next());
                app_config.wal_path = Some(std::path::PathBuf::from(path));
            }
            "--fsync" => app_config.fsync = true,
            "--exact" => app_config.exact = true,
            "--fault-injection" => app_config.fault_injection = true,
            "--debug-endpoints" => server_config.debug_endpoints = true,
            "--flight-capacity" => {
                server_config.flight_capacity = parse("--flight-capacity", args.next())
            }
            "--ts-interval" => {
                server_config.ts.interval_ns = parse_duration_ns("--ts-interval", args.next())
            }
            "--ts-retention" => server_config.ts.retention = parse("--ts-retention", args.next()),
            "--watch-trip" => server_config.watch.trip_after = parse("--watch-trip", args.next()),
            "--watch-clear" => {
                server_config.watch.clear_after = parse("--watch-clear", args.next())
            }
            "--watch-latency-zscore" => {
                server_config.watch.latency_zscore = parse("--watch-latency-zscore", args.next())
            }
            "--watch-error-rate" => {
                server_config.watch.error_rate_max = parse("--watch-error-rate", args.next())
            }
            "--watch-shed-rate" => {
                server_config.watch.shed_rate_max = parse("--watch-shed-rate", args.next())
            }
            "--watch-quality-min" => {
                server_config.watch.quality_min = parse("--watch-quality-min", args.next())
            }
            "--watch-incidents" => {
                server_config.watch.incident_capacity = parse("--watch-incidents", args.next())
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("[serve] unknown flag {other:?}");
                usage();
            }
        }
    }
    server_config.addr = format!("127.0.0.1:{port}");

    // Anchor the trace/flight zero point before any request arrives so
    // `start_offset_ns` values count from process start.
    exrec_obs::trace::process_start();
    install_signal_handlers();

    // Sampled traces stream to stderr as JSON lines; the tail sampler
    // in front keeps only slow/errored/head-sampled traces and counts
    // its decisions under trace.*.
    let metrics = Arc::new(Metrics::new());
    let sink = Arc::new(JsonLinesSubscriber::new(std::io::stderr()));
    let tail = TailSamplingSubscriber::new(sink as Arc<dyn Subscriber>, tail_config)
        .with_metrics(&metrics);
    let telemetry = Telemetry::new(metrics, Arc::new(tail));
    eprintln!(
        "[serve] generating world: {} users x {} items @ density {}",
        app_config.n_users, app_config.n_items, app_config.density
    );
    let app = match ExplainApp::try_new(app_config, telemetry.clone()) {
        Ok(app) => app,
        Err(e) => {
            eprintln!("[serve] startup failed: {e}");
            std::process::exit(1);
        }
    };
    eprintln!(
        "[serve] world ready; default interface {}; neighbour scan {}",
        app.config().default_interface.key(),
        app.scan_mode()
    );
    if let Some(stats) = app.wal_stats() {
        eprintln!(
            "[serve] journal open: {} ({} bytes, {} records replayed{}{})",
            app.wal_path()
                .map(|p| p.display().to_string())
                .unwrap_or_default(),
            stats.size_bytes,
            stats.replayed,
            if app.snapshot_loaded() {
                ", warm-started from snapshot"
            } else {
                ""
            },
            if stats.truncated_bytes > 0 {
                ", torn tail truncated"
            } else {
                ""
            },
        );
    }

    let handle = match server::start(app, server_config.clone(), telemetry.clone()) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("[serve] bind {} failed: {e}", server_config.addr);
            std::process::exit(1);
        }
    };
    // Any panic — including ones the edge catches for worker isolation
    // — records an incident and dumps the black box to stderr before
    // unwinding continues.
    exrec_obs::Watchdog::install_panic_hook(handle.watchdog());
    eprintln!(
        "[serve] listening on {} ({} workers, queue bound {}, deadline {}ms)",
        handle.addr(),
        server_config.workers,
        server_config.queue_bound,
        server_config.default_deadline_ms
    );
    if server_config.debug_endpoints {
        eprintln!(
            "[serve] debug endpoints enabled: /debug/profile /debug/requests /debug/world /debug/quality /debug/ingest /debug/timeseries /debug/incidents"
        );
    }

    while !SHUTDOWN.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(100));
    }
    eprintln!("[serve] signal received; draining");
    handle.request_shutdown();
    let slo = handle.slo_snapshot();
    let quality = handle.quality_snapshot();
    match handle.join() {
        Some(Ok(snapshot)) => {
            eprintln!("[serve] journal compacted to {}", snapshot.display());
        }
        Some(Err(e)) => {
            eprintln!("[serve] journal compaction failed (WAL left intact): {e}");
        }
        None => {}
    }
    eprintln!("[serve] drained; final telemetry:");
    eprintln!("{}", telemetry.report().render_ascii());
    if !slo.is_empty() {
        eprintln!("== slo (rolling window at drain) ==");
        for (route, s) in &slo {
            eprintln!(
                "  {route:<24} good {}/{} ratio {:.4} burn {:.2} fast-burn {:.2}{}",
                s.good,
                s.total,
                s.good_ratio,
                s.burn_rate,
                s.fast_burn_rate,
                if s.degraded { "  DEGRADED" } else { "" }
            );
        }
    }
    if quality.samples > 0 {
        eprintln!(
            "== explanation quality (rolling window at drain, 1-in-{} sampled) ==",
            quality.sample_every
        );
        eprintln!(
            "  overall: {} samples, score {:.3}, fidelity {:.3}{}",
            quality.samples,
            quality.mean_score,
            quality.mean_fidelity,
            if quality.sustained_low {
                "  SUSTAINED LOW"
            } else {
                ""
            }
        );
        for s in &quality.interfaces {
            eprintln!(
                "  {:<24} {} samples, score {:.3}, fidelity {:.3}, coverage {:.3}",
                s.name, s.samples, s.score, s.fidelity, s.coverage
            );
        }
    }
}

//! `obs_top` — a dependency-free live ops dashboard for a running
//! `serve` edge.
//!
//! ```text
//! obs_top [--addr A]         edge address (default 127.0.0.1:8787)
//!         [--interval-ms N]  poll interval (default 1000)
//!         [--frames N]       stop after N frames (default 0 = forever)
//!         [--once]           render one frame without ANSI clearing
//! ```
//!
//! Each frame polls `GET /healthz`, `GET /debug/timeseries` and
//! `GET /debug/incidents` (the latter two need the edge started with
//! `--debug-endpoints`) and renders an ANSI terminal dashboard:
//! per-route windowed rate/p50/p95/p99 tables with Unicode sparklines
//! of the p99 trend, the hottest counters and gauges, and the incident
//! standing from the anomaly watchdog. Rendering is pure string
//! assembly over the wire bodies, so it is unit-testable without a
//! server.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use exrec_obs::TsSnapshot;
use exrec_serve::proto::{DebugIncidentsBody, HealthResponse};

/// Eight-level Unicode sparkline glyphs, lowest to highest.
const SPARKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Maximum rows shown in the counter and gauge tables.
const MAX_TABLE_ROWS: usize = 10;

fn usage() -> ! {
    eprintln!("usage: obs_top [--addr A] [--interval-ms N] [--frames N] [--once]");
    std::process::exit(2);
}

fn parse<T: std::str::FromStr>(flag: &str, value: Option<String>) -> T {
    match value.and_then(|v| v.parse().ok()) {
        Some(v) => v,
        None => {
            eprintln!("[obs_top] {flag} needs a valid value");
            usage();
        }
    }
}

/// One blocking HTTP/1.1 GET with `Connection: close`; returns
/// `(status, body)`.
fn http_get(addr: &str, path: &str) -> Result<(u16, String), String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream.set_read_timeout(Some(Duration::from_secs(5))).ok();
    let request =
        format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nAccept: application/json\r\nConnection: close\r\n\r\n");
    stream
        .write_all(request.as_bytes())
        .map_err(|e| format!("write {path}: {e}"))?;
    let mut raw = String::new();
    stream
        .read_to_string(&mut raw)
        .map_err(|e| format!("read {path}: {e}"))?;
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .ok_or_else(|| format!("{path}: malformed response"))?;
    let status = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("{path}: bad status line"))?;
    Ok((status, body.to_string()))
}

fn fetch<T: serde::Deserialize>(addr: &str, path: &str) -> Result<T, String> {
    let (status, body) = http_get(addr, path)?;
    if status != 200 {
        return Err(format!("{path}: HTTP {status}"));
    }
    serde_json::from_str(&body).map_err(|e| format!("{path}: {e}"))
}

/// Renders `values` as a fixed-height sparkline, scaled to the series'
/// own min..max (a flat series renders as a run of mid-level blocks).
fn sparkline(values: &[f64]) -> String {
    if values.is_empty() {
        return String::new();
    }
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &v in values {
        let v = if v.is_finite() { v } else { 0.0 };
        lo = lo.min(v);
        hi = hi.max(v);
    }
    let span = hi - lo;
    values
        .iter()
        .map(|&v| {
            let v = if v.is_finite() { v } else { 0.0 };
            let level = if span <= f64::EPSILON {
                3
            } else {
                (((v - lo) / span) * 7.0).round() as usize
            };
            SPARKS[level.min(7)]
        })
        .collect()
}

/// Formats nanoseconds with an adaptive unit (`ns`/`µs`/`ms`/`s`).
fn fmt_ns(ns: f64) -> String {
    if !ns.is_finite() || ns < 0.0 {
        return "-".to_string();
    }
    if ns < 1_000.0 {
        format!("{ns:.0}ns")
    } else if ns < 1_000_000.0 {
        format!("{:.1}µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.1}ms", ns / 1_000_000.0)
    } else {
        format!("{:.2}s", ns / 1_000_000_000.0)
    }
}

/// Formats a sampling interval in whole-ish units for the header line.
fn fmt_interval(interval_ns: u64) -> String {
    fmt_ns(interval_ns as f64)
}

/// The full frame: header, route table, counters, gauges, incidents.
fn render(
    addr: &str,
    health: Option<&HealthResponse>,
    ts: Option<&TsSnapshot>,
    incidents: Option<&DebugIncidentsBody>,
) -> String {
    let mut out = String::new();
    match health {
        Some(h) => {
            out.push_str(&format!(
                "obs_top · {addr} · status {} · uptime {}s · queue {}/{} · busy {}/{}\n",
                h.status,
                h.uptime_ms / 1_000,
                h.queue_depth,
                h.queue_capacity,
                h.busy_workers,
                h.workers,
            ));
            if let Some(standing) = &h.incidents {
                out.push_str(&format!(
                    "incidents: {} active · {} opened · {} flight dumps{}\n",
                    standing.active,
                    standing.opened,
                    standing.flight_dumps,
                    standing
                        .last_rule
                        .as_deref()
                        .map(|r| format!(" · last {r}"))
                        .unwrap_or_default(),
                ));
            }
        }
        None => out.push_str(&format!("obs_top · {addr} · /healthz unreachable\n")),
    }
    match ts {
        Some(snap) => {
            out.push_str(&format!(
                "time series: tick {} · interval {} · retention {}\n\n",
                snap.ticks,
                fmt_interval(snap.interval_ns),
                snap.retention,
            ));
            out.push_str(&render_routes(snap));
            out.push_str(&render_counters(snap));
            out.push_str(&render_gauges(snap));
        }
        None => out.push_str("time series unavailable — start the edge with --debug-endpoints\n"),
    }
    if let Some(body) = incidents {
        out.push_str(&render_incidents(body));
    }
    out
}

/// Per-route windowed latency table from `serve.latency_ns.*` series.
fn render_routes(snap: &TsSnapshot) -> String {
    let mut out = String::new();
    let routes: Vec<_> = snap
        .histograms
        .iter()
        .filter_map(|(name, points)| {
            let route = name.strip_prefix("serve.latency_ns.")?;
            points.last().map(|last| (route, points, last))
        })
        .collect();
    if routes.is_empty() {
        return out;
    }
    out.push_str(&format!(
        "{:<22} {:>9} {:>9} {:>9} {:>9}  p99 trend\n",
        "route", "req/s", "p50", "p95", "p99"
    ));
    for (route, points, last) in routes {
        let p99s: Vec<f64> = points.iter().map(|p| p.p99_ns as f64).collect();
        out.push_str(&format!(
            "{:<22} {:>9.1} {:>9} {:>9} {:>9}  {}\n",
            route,
            last.rate_per_sec,
            fmt_ns(last.p50_ns as f64),
            fmt_ns(last.p95_ns as f64),
            fmt_ns(last.p99_ns as f64),
            sparkline(&p99s),
        ));
    }
    out.push('\n');
    out
}

/// Counter-rate table, hottest first, capped at [`MAX_TABLE_ROWS`].
fn render_counters(snap: &TsSnapshot) -> String {
    let mut rows: Vec<_> = snap
        .counters
        .iter()
        .filter_map(|(name, points)| points.last().map(|last| (name, points, last.rate_per_sec)))
        .collect();
    if rows.is_empty() {
        return String::new();
    }
    rows.sort_by(|a, b| b.2.total_cmp(&a.2).then_with(|| a.0.cmp(b.0)));
    let total = rows.len();
    let mut out = format!("{:<34} {:>9}  trend\n", "counter", "rate/s");
    for (name, points, rate) in rows.into_iter().take(MAX_TABLE_ROWS) {
        let rates: Vec<f64> = points.iter().map(|p| p.rate_per_sec).collect();
        out.push_str(&format!(
            "{:<34} {:>9.1}  {}\n",
            name,
            rate,
            sparkline(&rates)
        ));
    }
    if total > MAX_TABLE_ROWS {
        out.push_str(&format!("  … {} more\n", total - MAX_TABLE_ROWS));
    }
    out.push('\n');
    out
}

/// Gauge table, alphabetical, capped at [`MAX_TABLE_ROWS`].
fn render_gauges(snap: &TsSnapshot) -> String {
    let rows: Vec<_> = snap
        .gauges
        .iter()
        .filter_map(|(name, points)| points.last().map(|last| (name, points, last.value)))
        .collect();
    if rows.is_empty() {
        return String::new();
    }
    let total = rows.len();
    let mut out = format!("{:<34} {:>9}  trend\n", "gauge", "value");
    for (name, points, value) in rows.into_iter().take(MAX_TABLE_ROWS) {
        let values: Vec<f64> = points.iter().map(|p| p.value).collect();
        out.push_str(&format!(
            "{:<34} {:>9.3}  {}\n",
            name,
            value,
            sparkline(&values)
        ));
    }
    if total > MAX_TABLE_ROWS {
        out.push_str(&format!("  … {} more\n", total - MAX_TABLE_ROWS));
    }
    out.push('\n');
    out
}

/// Incident footer: standing plus the newest few entries.
fn render_incidents(body: &DebugIncidentsBody) -> String {
    let mut out = format!(
        "incident log: {} active · {} opened · {} flight dumps · capacity {}\n",
        body.active, body.opened, body.flight_dumps, body.capacity
    );
    for incident in body.incidents.iter().rev().take(5) {
        let standing = if incident.closed_epoch.is_some() {
            "closed"
        } else {
            "OPEN"
        };
        out.push_str(&format!(
            "  #{:<3} {:<6} {:<28} {} value {:.3} threshold {:.3} @t+{}\n",
            incident.seq,
            standing,
            incident.rule,
            incident.kind,
            incident.value,
            incident.threshold,
            fmt_ns(incident.opened_offset_ns as f64),
        ));
    }
    out
}

fn main() {
    let mut addr = "127.0.0.1:8787".to_string();
    let mut interval_ms: u64 = 1_000;
    let mut frames: u64 = 0;
    let mut once = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => addr = parse("--addr", args.next()),
            "--interval-ms" => interval_ms = parse("--interval-ms", args.next()),
            "--frames" => frames = parse("--frames", args.next()),
            "--once" => once = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("[obs_top] unknown flag {other:?}");
                usage();
            }
        }
    }
    if once {
        frames = 1;
    }

    let mut frame = 0u64;
    loop {
        let health: Option<HealthResponse> = fetch(&addr, "/healthz").ok();
        let ts: Option<TsSnapshot> = fetch(&addr, "/debug/timeseries").ok();
        let incidents: Option<DebugIncidentsBody> = fetch(&addr, "/debug/incidents").ok();
        let dashboard = render(&addr, health.as_ref(), ts.as_ref(), incidents.as_ref());
        if once {
            print!("{dashboard}");
        } else {
            // Clear screen + home, then the frame, in one write.
            print!("\x1b[2J\x1b[H{dashboard}");
        }
        std::io::stdout().flush().ok();
        frame += 1;
        if frames > 0 && frame >= frames {
            break;
        }
        std::thread::sleep(Duration::from_millis(interval_ms.max(50)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exrec_obs::timeseries::{HistPoint, RatePoint, TS_SCHEMA};

    fn snapshot_with_route() -> TsSnapshot {
        let mut snap = TsSnapshot {
            schema: TS_SCHEMA,
            interval_ns: 1_000_000_000,
            retention: 120,
            ticks: 3,
            counters: Default::default(),
            gauges: Default::default(),
            histograms: Default::default(),
        };
        snap.histograms.insert(
            "serve.latency_ns.recommend".to_string(),
            vec![
                HistPoint {
                    epoch: 1,
                    count: 10,
                    rate_per_sec: 10.0,
                    mean_ns: 1_500_000.0,
                    p50_ns: 1_000_000,
                    p95_ns: 4_000_000,
                    p99_ns: 8_000_000,
                },
                HistPoint {
                    epoch: 2,
                    count: 20,
                    rate_per_sec: 20.0,
                    mean_ns: 1_600_000.0,
                    p50_ns: 1_100_000,
                    p95_ns: 4_100_000,
                    p99_ns: 9_000_000,
                },
            ],
        );
        snap.counters.insert(
            "serve.accepted".to_string(),
            vec![RatePoint {
                epoch: 2,
                delta: 20,
                rate_per_sec: 20.0,
            }],
        );
        snap
    }

    #[test]
    fn sparkline_scales_to_series_range() {
        assert_eq!(sparkline(&[]), "");
        assert_eq!(sparkline(&[1.0, 1.0, 1.0]), "▄▄▄");
        let ramp = sparkline(&[0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]);
        assert_eq!(ramp, "▁▂▃▄▅▆▇█");
        // Non-finite samples render without panicking.
        assert_eq!(sparkline(&[f64::NAN, 1.0]).chars().count(), 2);
    }

    #[test]
    fn fmt_ns_picks_adaptive_units() {
        assert_eq!(fmt_ns(500.0), "500ns");
        assert_eq!(fmt_ns(1_500.0), "1.5µs");
        assert_eq!(fmt_ns(2_500_000.0), "2.5ms");
        assert_eq!(fmt_ns(3_200_000_000.0), "3.20s");
        assert_eq!(fmt_ns(f64::NAN), "-");
    }

    #[test]
    fn render_shows_routes_counters_and_fallbacks() {
        let snap = snapshot_with_route();
        let frame = render("127.0.0.1:1", None, Some(&snap), None);
        assert!(frame.contains("/healthz unreachable"));
        assert!(frame.contains("recommend"));
        assert!(frame.contains("9.0ms")); // last windowed p99
        assert!(frame.contains("serve.accepted"));
        let dark = render("127.0.0.1:1", None, None, None);
        assert!(dark.contains("--debug-endpoints"));
    }

    #[test]
    fn render_incidents_marks_open_entries() {
        let body = DebugIncidentsBody {
            schema: exrec_obs::watch::WATCH_SCHEMA,
            capacity: 64,
            opened: 2,
            active: 1,
            flight_dumps: 1,
            incidents: vec![exrec_obs::Incident {
                seq: 2,
                rule: "error_rate".to_string(),
                series: "serve.status.5xx".to_string(),
                kind: "above".to_string(),
                opened_epoch: 7,
                opened_offset_ns: 7_000_000_000,
                closed_epoch: None,
                value: 4.2,
                threshold: 1.0,
                detail: "rate 4.2/s over ceiling 1.0".to_string(),
            }],
        };
        let footer = render_incidents(&body);
        assert!(footer.contains("1 active"));
        assert!(footer.contains("OPEN"));
        assert!(footer.contains("error_rate"));
    }
}

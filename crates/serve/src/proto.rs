//! The JSON wire protocol (`docs/serving.md` is the normative spec).
//!
//! Request fields that are optional on the wire are `Option` here; the
//! app layer applies defaults. Responses flatten the toolkit's richer
//! types ([`exrec_core::explanation::Explanation`], `Prediction`) into
//! plain JSON-friendly shapes so clients never need the Rust types.

use serde::{Deserialize, Serialize};

/// Body of `POST /v1/recommend`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RecommendRequest {
    /// Users to rank for (raw ids). Must be non-empty.
    pub users: Vec<u32>,
    /// Top-k size; server default when omitted.
    pub n: Option<usize>,
    /// Explanation interface key (see `InterfaceId::key`); server
    /// default when omitted. Only consulted when `explain` is true.
    pub interface: Option<String>,
    /// When true, each returned item carries its explanation (served
    /// through `Explainer::recommend_explained_batch`; items the system
    /// cannot justify are withheld).
    pub explain: Option<bool>,
    /// Per-request deadline override, milliseconds.
    pub deadline_ms: Option<u64>,
    /// Fault injection (test only, requires `--fault-injection`):
    /// panic inside the handler to exercise worker isolation.
    pub inject_panic: Option<bool>,
    /// Fault injection (test only, requires `--fault-injection`):
    /// busy-wait this long inside the handler, honouring the deadline.
    pub inject_delay_ms: Option<u64>,
}

/// Body of `POST /v1/explain`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExplainRequest {
    /// The user the explanation addresses (raw id).
    pub user: u32,
    /// The item being explained (raw id).
    pub item: u32,
    /// Explanation interface key; server default when omitted.
    pub interface: Option<String>,
    /// Explanation aim (lowercased name, e.g. `"trust"`). When present
    /// and `interface` is omitted, the server picks the measurably
    /// best-fitting interface for the aim (`?aim=` on the URL is an
    /// equivalent spelling).
    pub aim: Option<String>,
    /// Per-request deadline override, milliseconds.
    pub deadline_ms: Option<u64>,
    /// Fault injection (test only, requires `--fault-injection`).
    pub inject_panic: Option<bool>,
    /// Fault injection (test only, requires `--fault-injection`).
    pub inject_delay_ms: Option<u64>,
}

/// Body of `POST /v1/rate`: one rating write.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RateRequest {
    /// The rating user (raw id).
    pub user: u32,
    /// The rated item (raw id).
    pub item: u32,
    /// The rating on the world's scale; omit (or send `null`) to
    /// retract the user's existing rating of the item.
    pub value: Option<f64>,
    /// Per-request deadline override, milliseconds.
    pub deadline_ms: Option<u64>,
}

/// One write inside `POST /v1/rate/batch`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RateOpBody {
    /// The rating user (raw id).
    pub user: u32,
    /// The rated item (raw id).
    pub item: u32,
    /// The rating; omit to retract.
    pub value: Option<f64>,
}

/// Body of `POST /v1/rate/batch`: many writes journaled and applied as
/// one atomically-validated record (any invalid op rejects them all).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RateBatchRequest {
    /// The writes, applied in order. Must be non-empty.
    pub ops: Vec<RateOpBody>,
    /// Per-request deadline override, milliseconds.
    pub deadline_ms: Option<u64>,
}

/// Body of a 200 from `POST /v1/rate` and `POST /v1/rate/batch`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RateResponse {
    /// Rating deltas actually applied (a retract of an absent rating
    /// applies nothing and is not an error).
    pub applied: u64,
    /// Ops in the accepted record.
    pub ops: u64,
    /// Ratings-matrix revision after the write.
    pub revision: u64,
    /// Time the journal append took, nanoseconds (`0` when the server
    /// runs without `--wal-path`).
    pub wal_append_ns: u64,
    /// Journal size after the append; `null` without `--wal-path`.
    pub wal_size_bytes: Option<u64>,
}

/// An explanation flattened for the wire.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExplanationBody {
    /// Key of the interface that generated it.
    pub interface: String,
    /// Content style name.
    pub style: String,
    /// Names of the aims the interface declares.
    pub aims: Vec<String>,
    /// Plain-text rendering of the explanation document.
    pub text: String,
}

/// One recommended item on the wire.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScoredItem {
    /// Item id.
    pub item: u32,
    /// Predicted score on the model's rating scale.
    pub score: f64,
    /// Model confidence in `[0, 1]`.
    pub confidence: f64,
    /// Present when the request asked for explanations.
    pub explanation: Option<ExplanationBody>,
}

/// Ranked items for one requested user.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct UserRecommendations {
    /// The user these are for.
    pub user: u32,
    /// Ranked best-first.
    pub items: Vec<ScoredItem>,
}

/// Body of a 200 from `POST /v1/recommend`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RecommendResponse {
    /// Per-user results, in request order.
    pub results: Vec<UserRecommendations>,
}

/// Body of a 200 from `POST /v1/explain`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExplainResponse {
    /// Echoed user id.
    pub user: u32,
    /// Echoed item id.
    pub item: u32,
    /// Predicted score for the pair.
    pub score: f64,
    /// Model confidence in `[0, 1]`.
    pub confidence: f64,
    /// The aim that drove interface selection, echoed lowercased;
    /// `null` when the request named no aim.
    pub aim: Option<String>,
    /// The generated explanation.
    pub explanation: ExplanationBody,
}

/// Body of `GET /healthz`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HealthResponse {
    /// `"ok"` while serving, `"degraded"` when an SLO fast-burn window
    /// has tripped, `"draining"` once shutdown has begun.
    pub status: String,
    /// Milliseconds since the server started.
    pub uptime_ms: u64,
    /// Worker pool size.
    pub workers: usize,
    /// Admission queue capacity.
    pub queue_capacity: usize,
    /// Admission queue depth at snapshot time.
    pub queue_depth: usize,
    /// `queue_depth / queue_capacity` in `[0, 1]` — how close the edge
    /// is to shedding; load balancers should back off as this nears 1.
    pub queue_saturation: f64,
    /// Workers currently executing a request (not blocked on the
    /// queue) at snapshot time.
    pub busy_workers: usize,
    /// `busy_workers / workers` in `[0, 1]`.
    pub worker_saturation: f64,
    /// Rolling-window SLO standing per route (absent routes have not
    /// served yet).
    pub slo: std::collections::BTreeMap<String, SloRouteBody>,
    /// Similarity-cache occupancy and hit ratio; `None` when the model
    /// runs uncached (and when deserializing pre-cache payloads).
    pub cache: Option<CacheStatsBody>,
    /// Live explanation-quality standing; `None` when deserializing
    /// pre-quality payloads (the server always sends it).
    pub quality: Option<QualityStandingBody>,
    /// Watchdog incident standing; any active incident contributes to
    /// `"degraded"`. `None` only when deserializing pre-watchdog
    /// payloads (the server always sends it).
    #[serde(default)]
    pub incidents: Option<IncidentStandingBody>,
    /// Build/run identity, correlatable with benchmark-report `meta`
    /// stamps. `None` only when deserializing pre-build payloads.
    #[serde(default)]
    pub build: Option<BuildInfoBody>,
}

/// Watchdog standing in `GET /healthz`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IncidentStandingBody {
    /// Incidents currently open (latched rules + active externals).
    pub active: u64,
    /// Incidents opened since start (monotonic, unbounded).
    pub opened: u64,
    /// Flight-recorder dumps fired through the unified trigger path.
    pub flight_dumps: u64,
    /// Rule name of the most recently opened incident still retained.
    pub last_rule: Option<String>,
}

/// Build/run identity served from `/healthz` and `/debug/world`: the
/// same `git_rev`/`world`/`threads` stamp benchmark reports carry
/// (`exrec_obs::RunMeta`), plus the wire-schema versions this build
/// speaks.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BuildInfoBody {
    /// Short git revision of the running build (`"unknown"` outside a
    /// git checkout).
    pub git_rev: String,
    /// Compact served-world shape, `users x items @ density`.
    pub world: String,
    /// Edge worker threads.
    pub threads: usize,
    /// Flight-recorder record schema version.
    pub flight_schema: u32,
    /// Time-series snapshot schema version.
    pub ts_schema: u32,
    /// Incident-log schema version.
    pub watch_schema: u32,
}

/// Body of a 200 from `GET /debug/incidents`: the watchdog's bounded
/// incident log plus standing counters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DebugIncidentsBody {
    /// Incident-log schema version.
    pub schema: u32,
    /// Bounded log capacity (oldest incidents evicted past this).
    pub capacity: usize,
    /// Incidents opened since start (monotonic, unbounded).
    pub opened: u64,
    /// Incidents currently open.
    pub active: u64,
    /// Flight dumps fired through the unified trigger path.
    pub flight_dumps: u64,
    /// Retained incidents, oldest first.
    pub incidents: Vec<exrec_obs::Incident>,
}

/// Live explanation-quality standing, as `/healthz` reports it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QualityStandingBody {
    /// Quality measurements sampled since start.
    pub samples: u64,
    /// Configured 1-in-N sampling rate (`0` = sampling off).
    pub sample_every: u64,
    /// Rolling mean scalar quality score in `[0, 1]`.
    pub mean_score: f64,
    /// Current consecutive-low-sample streak.
    pub low_streak: u64,
    /// Whether the low-quality streak has reached the sustained
    /// threshold (contributes to `"degraded"` status).
    pub sustained_low: bool,
}

/// Similarity-cache standing, shared by `GET /healthz` and
/// `GET /debug/world`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CacheStatsBody {
    /// Currently resident entries, summed over shards.
    pub entries: usize,
    /// Total entry capacity over all shards.
    pub capacity: usize,
    /// `entries / capacity` in `[0, 1]`.
    pub occupancy: f64,
    /// Lookups answered from the cache since start.
    pub hits: u64,
    /// Lookups that had to compute since start.
    pub misses: u64,
    /// `hits / (hits + misses)` (0.0 before any probe).
    pub hit_ratio: f64,
    /// Entries displaced by capacity pressure.
    pub evictions: u64,
    /// Shard clears triggered by a ratings-revision change.
    pub invalidations: u64,
}

/// Body of a 200 from `GET /debug/profile` (JSON form; send
/// `Accept: text/plain` for bare collapsed-stack text instead).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DebugProfileBody {
    /// One aggregated phase tree per route served so far.
    pub routes: Vec<exrec_obs::PhaseSnapshot>,
    /// The same trees as collapsed-stack text (`stack self_ns` lines),
    /// the input format of flamegraph tooling.
    pub collapsed: String,
}

/// Body of a 200 from `GET /debug/requests`: the flight recorder's
/// resident window.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DebugRequestsBody {
    /// Ring capacity (last N requests retained).
    pub capacity: usize,
    /// Requests recorded since start (monotonic, unbounded).
    pub recorded: u64,
    /// Resident records, oldest first.
    pub requests: Vec<exrec_obs::RequestRecord>,
}

/// Body of a 200 from `GET /debug/world`: the served world's shape and
/// the serving configuration actually in effect.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DebugWorldBody {
    /// Users in the served world.
    pub users: usize,
    /// Items in the served catalog.
    pub items: usize,
    /// Observed ratings.
    pub ratings: usize,
    /// Ratings-matrix revision (bumps on conversational mutation and
    /// keys similarity-cache validity).
    pub ratings_revision: u64,
    /// Serving model name.
    pub model: String,
    /// Default explanation interface key.
    pub default_interface: String,
    /// Edge worker threads.
    pub workers: usize,
    /// Intra-request batch pool threads.
    pub pool_threads: usize,
    /// Admission queue capacity.
    pub queue_capacity: usize,
    /// Similarity-cache standing; `None` when the model runs uncached.
    pub cache: Option<CacheStatsBody>,
    /// Neighbour-scan engine standing; `None` when the model runs the
    /// seed's brute per-pair path (and when deserializing pre-kernel
    /// payloads).
    pub scan: Option<ScanStatsBody>,
    /// Build/run identity (same stamp as `/healthz`). `None` only when
    /// deserializing pre-build payloads.
    #[serde(default)]
    pub build: Option<BuildInfoBody>,
}

/// Neighbour-scan engine standing in `GET /debug/world` (the kernel
/// and candidate index of `docs/kernels.md`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScanStatsBody {
    /// Serving scan mode: `"exact"` or `"pruned"`.
    pub mode: String,
    /// Kernel tile size in use; `None` before the first scan tunes it.
    pub tile_users: Option<usize>,
    /// The startup autotuner's sweep, when tile selection was
    /// automatic (empty under a fixed tile).
    pub sweep: Vec<SweepPointBody>,
    /// Revision of the resident CSR snapshot, if one has been built.
    pub csr_revision: Option<u64>,
    /// CSR snapshot (re)builds since start.
    pub csr_builds: u64,
    /// Candidate-index (re)builds since start.
    pub index_builds: u64,
    /// Shape of the resident candidate index, if one has been built.
    pub index: Option<IndexShapeBody>,
    /// Exact scans served (including pruned fallbacks).
    pub exact_scans: u64,
    /// Pruned scans served.
    pub pruned_scans: u64,
    /// Pruned requests that fell back to the exact scan because the
    /// candidate set was too small for the neighbourhood size.
    pub exact_fallbacks: u64,
    /// Kernel tiles visited, cumulative.
    pub tiles_visited: u64,
    /// Candidate users scored, cumulative.
    pub candidates_scored: u64,
    /// Fraction of the user dimension the last pruned scan skipped
    /// (`0.0` until a pruned scan runs).
    pub prune_ratio: f64,
    /// Ratings-matrix revisions the resident CSR snapshot is behind
    /// (`0` = in sync; `None` until a CSR is built). Non-zero here
    /// means writes have landed that the next scan will absorb —
    /// incrementally if the delta chain is intact and under the drift
    /// threshold, otherwise by full rebuild.
    #[serde(default)]
    pub revision_lag: Option<u64>,
    /// Incremental CSR patches applied instead of full rebuilds.
    #[serde(default)]
    pub csr_patches: u64,
    /// Incremental candidate-index reassignments (vs. full rebuilds).
    #[serde(default)]
    pub index_patches: u64,
    /// Write deltas buffered for the next scan to absorb.
    #[serde(default)]
    pub pending_deltas: usize,
    /// Deltas absorbed into the resident CSR since its last full
    /// build (drives the drift-threshold rebuild decision).
    #[serde(default)]
    pub patched_since_build: u64,
}

/// One autotuner measurement: a candidate tile size and the time the
/// probe scans took under it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepPointBody {
    /// Tile size (users per tile).
    pub tile_users: usize,
    /// Total probe-scan time under this tile, nanoseconds.
    pub elapsed_ns: u64,
}

/// Shape of the resident candidate index.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IndexShapeBody {
    /// Coarse k-means centroids.
    pub centroids: usize,
    /// Centroids probed per query.
    pub probes: usize,
}

/// Body of a 200 from `GET /debug/ingest`: the write path's standing —
/// lifetime ingest counts, the ratings revision they produced, and the
/// journal's shape when one is attached.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DebugIngestBody {
    /// Write requests admitted (`/v1/rate` + `/v1/rate/batch`).
    pub requests: u64,
    /// Rating deltas actually applied to the matrix.
    pub applied: u64,
    /// Write requests rejected by validation.
    pub rejected: u64,
    /// Current ratings-matrix revision.
    pub revision: u64,
    /// Whether startup warm-restarted from a compaction snapshot.
    pub snapshot_loaded: bool,
    /// The journal, when the server runs with `--wal-path`.
    pub wal: Option<WalBody>,
}

/// The write-ahead log's shape inside `GET /debug/ingest`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WalBody {
    /// Journal file path.
    pub path: String,
    /// Whether every append is fsynced (`--fsync`).
    pub fsync: bool,
    /// Journal size, bytes (header included).
    pub size_bytes: u64,
    /// Records appended since open.
    pub records: u64,
    /// Records replayed from the tail at open.
    pub replayed: u64,
    /// Torn-tail bytes truncated at open (`0` = clean).
    pub truncated_bytes: u64,
}

/// Body of a 200 from `GET /debug/quality`: the offline-measured
/// quality book, the live sampled estimator, and the aim-fit selection
/// both currently imply.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DebugQualityBody {
    /// Offline/refreshed per-interface measurements backing selection,
    /// name-keyed, catalog order, unmeasurable interfaces included
    /// with `samples: 0`.
    pub offline: Vec<exrec_eval::quality::InterfaceQuality>,
    /// The live estimator's rolling snapshot.
    pub online: exrec_obs::QualitySnapshot,
    /// What `?aim=` would select right now, one row per aim.
    pub selection: Vec<AimSelectionBody>,
}

/// One aim's current selection standing in `GET /debug/quality`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AimSelectionBody {
    /// Lowercased aim name.
    pub aim: String,
    /// Interface key `?aim=` selects (measured argmax, falling back to
    /// the static default when nothing is measured).
    pub selected: String,
    /// The selected interface's measured score for the aim.
    pub score: f64,
    /// The static default: the first catalog interface declaring the
    /// aim, ignoring measurements.
    pub static_default: Option<String>,
    /// The static default's measured score for the aim.
    pub static_score: f64,
}

/// One route's SLO standing as reported by `/healthz`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SloRouteBody {
    /// Requests in the window meeting the objective.
    pub good: u64,
    /// Total requests in the window.
    pub total: u64,
    /// `good / total` (1.0 on an empty window).
    pub good_ratio: f64,
    /// Error-budget burn rate over the full window.
    pub burn_rate: f64,
    /// Burn rate over the fast-burn suffix window.
    pub fast_burn_rate: f64,
    /// Whether this route's fast-burn window has tripped.
    pub degraded: bool,
}

/// Error body for every non-2xx the server originates.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ErrorBody {
    /// Stable machine-readable class: `bad_request`, `not_found`,
    /// `unprocessable`, `shed`, `deadline_exceeded`, `panic`,
    /// `draining`, `method_not_allowed`, `body_too_large`.
    pub error: String,
    /// Human-readable detail.
    pub detail: String,
}

impl ErrorBody {
    /// Builds an error body.
    pub fn new(error: &str, detail: impl Into<String>) -> Self {
        ErrorBody {
            error: error.to_owned(),
            detail: detail.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recommend_request_optional_fields_default_to_none() {
        let req: RecommendRequest = serde_json::from_str(r#"{"users": [1, 2]}"#).unwrap();
        assert_eq!(req.users, vec![1, 2]);
        assert!(req.n.is_none());
        assert!(req.interface.is_none());
        assert!(req.explain.is_none());
        assert!(req.deadline_ms.is_none());
        assert!(req.inject_panic.is_none());
    }

    #[test]
    fn explain_request_round_trips() {
        let req = ExplainRequest {
            user: 7,
            item: 9,
            interface: Some("clustered_histogram".to_owned()),
            aim: Some("trust".to_owned()),
            deadline_ms: Some(250),
            inject_panic: None,
            inject_delay_ms: None,
        };
        let json = serde_json::to_string(&req).unwrap();
        let back: ExplainRequest = serde_json::from_str(&json).unwrap();
        assert_eq!(back.user, 7);
        assert_eq!(back.item, 9);
        assert_eq!(back.interface.as_deref(), Some("clustered_histogram"));
        assert_eq!(back.aim.as_deref(), Some("trust"));
        assert_eq!(back.deadline_ms, Some(250));
    }

    #[test]
    fn missing_required_field_is_an_error() {
        assert!(serde_json::from_str::<ExplainRequest>(r#"{"user": 1}"#).is_err());
    }
}

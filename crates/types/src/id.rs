//! Strongly-typed entity identifiers.
//!
//! Users and items are both stored in dense, zero-based index spaces; the
//! newtypes exist purely so that the two spaces cannot be mixed up.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a user in a dense, zero-based index space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct UserId(pub u32);

/// Identifier of an item in a dense, zero-based index space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct ItemId(pub u32);

macro_rules! impl_id {
    ($name:ident, $letter:literal) => {
        impl $name {
            /// Builds an identifier from a raw index.
            #[inline]
            pub const fn new(raw: u32) -> Self {
                Self(raw)
            }

            /// The raw index.
            #[inline]
            pub const fn raw(self) -> u32 {
                self.0
            }

            /// The raw index as a `usize`, for direct vector indexing.
            #[inline]
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($letter, "{}"), self.0)
            }
        }

        impl From<u32> for $name {
            fn from(raw: u32) -> Self {
                Self(raw)
            }
        }

        impl From<$name> for u32 {
            fn from(id: $name) -> u32 {
                id.0
            }
        }
    };
}

impl_id!(UserId, "u");
impl_id!(ItemId, "i");

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn ids_round_trip_through_raw() {
        let u = UserId::new(42);
        assert_eq!(u.raw(), 42);
        assert_eq!(u.index(), 42usize);
        assert_eq!(UserId::from(42u32), u);
        assert_eq!(u32::from(u), 42);
    }

    #[test]
    fn display_is_prefixed() {
        assert_eq!(UserId::new(7).to_string(), "u7");
        assert_eq!(ItemId::new(9).to_string(), "i9");
    }

    #[test]
    fn ids_order_by_raw_value() {
        assert!(ItemId::new(1) < ItemId::new(2));
        let mut v = vec![UserId::new(3), UserId::new(1), UserId::new(2)];
        v.sort();
        assert_eq!(v, vec![UserId::new(1), UserId::new(2), UserId::new(3)]);
    }

    #[test]
    fn ids_hash_distinctly() {
        let set: HashSet<ItemId> = (0..100).map(ItemId::new).collect();
        assert_eq!(set.len(), 100);
    }

    #[test]
    fn serde_is_transparent() {
        let json = serde_json::to_string(&ItemId::new(5)).unwrap();
        assert_eq!(json, "5");
        let back: ItemId = serde_json::from_str(&json).unwrap();
        assert_eq!(back, ItemId::new(5));
    }
}

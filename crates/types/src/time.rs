//! Simulated time.
//!
//! The evaluation harness measures efficiency (survey Section 3.6) in
//! *modelled* time: reading an explanation, scanning a list and issuing a
//! critique each cost a deterministic number of ticks. Wall-clock time
//! would make studies machine-dependent and non-reproducible.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, measured in abstract ticks.
///
/// One tick is roughly "one second of user effort" in the behavioural
/// model, but nothing depends on that interpretation.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0);

    /// Builds a time from raw ticks.
    #[inline]
    pub const fn from_ticks(t: u64) -> Self {
        Self(t)
    }

    /// Raw tick count.
    #[inline]
    pub const fn ticks(self) -> u64 {
        self.0
    }

    /// Saturating difference (`self - earlier`), in ticks.
    #[inline]
    pub fn since(self, earlier: SimTime) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl Add<u64> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: u64) -> SimTime {
        SimTime(self.0.saturating_add(rhs))
    }
}

impl AddAssign<u64> for SimTime {
    fn add_assign(&mut self, rhs: u64) {
        self.0 = self.0.saturating_add(rhs);
    }
}

impl Sub for SimTime {
    type Output = u64;
    fn sub(self, rhs: SimTime) -> u64 {
        self.since(rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let mut t = SimTime::ZERO;
        t += 5;
        let t2 = t + 10;
        assert_eq!(t2.ticks(), 15);
        assert_eq!(t2 - t, 10);
        assert_eq!(t - t2, 0, "difference saturates");
    }

    #[test]
    fn saturation_at_max() {
        let t = SimTime::from_ticks(u64::MAX);
        assert_eq!((t + 1).ticks(), u64::MAX);
    }

    #[test]
    fn ordering_and_display() {
        assert!(SimTime::from_ticks(1) < SimTime::from_ticks(2));
        assert_eq!(SimTime::from_ticks(7).to_string(), "t7");
    }
}

//! The workspace-wide error type.
//!
//! A single enum keeps cross-crate `Result` plumbing simple; variants are
//! grouped by the subsystem that raises them. The enum is `#[non_exhaustive]`
//! so downstream code must keep a catch-all arm, letting the toolkit add
//! variants without a breaking release.

use crate::attribute::AttributeKind;
use crate::id::{ItemId, UserId};
use crate::rating::RatingScale;
use std::fmt;

/// Convenience alias used across the workspace.
pub type Result<T, E = Error> = std::result::Result<T, E>;

/// All error conditions surfaced by the toolkit.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// A rating scale with inconsistent bounds or step was requested.
    InvalidScale {
        /// Requested lower bound.
        min: f64,
        /// Requested upper bound.
        max: f64,
        /// Requested step.
        step: f64,
    },
    /// A rating value off the scale was supplied.
    InvalidRating {
        /// Offending value.
        value: f64,
        /// Scale it was checked against.
        scale: RatingScale,
    },
    /// A user id outside the model's user space.
    UnknownUser {
        /// Offending id.
        user: UserId,
    },
    /// An item id outside the catalog.
    UnknownItem {
        /// Offending id.
        item: ItemId,
    },
    /// Two attribute definitions in one schema share a name.
    DuplicateAttribute {
        /// The duplicated name.
        attribute: String,
    },
    /// An attribute not declared by the domain schema.
    UnknownAttribute {
        /// The undeclared name.
        attribute: String,
        /// Schema name.
        domain: String,
    },
    /// An attribute value of the wrong kind.
    KindMismatch {
        /// Attribute name.
        attribute: String,
        /// Kind declared in the schema.
        expected: AttributeKind,
    },
    /// A model was queried before it was fitted, or fitted on no data.
    EmptyModel {
        /// Which model.
        model: &'static str,
    },
    /// A prediction could not be made (e.g. no overlapping neighbours).
    NoPrediction {
        /// User the prediction was for.
        user: UserId,
        /// Item the prediction was for.
        item: ItemId,
        /// Why it failed.
        reason: &'static str,
    },
    /// A conversational session was driven with an action invalid in its
    /// current state.
    InvalidSessionAction {
        /// Human-readable description of the violation.
        detail: String,
    },
    /// A requested explanation interface cannot run on the supplied
    /// evidence (e.g. a neighbour histogram without neighbour evidence).
    MissingEvidence {
        /// Name of the interface that was asked to render.
        interface: &'static str,
        /// Evidence kind it needs.
        needs: &'static str,
    },
    /// A configuration value outside its legal range.
    InvalidConfig {
        /// Parameter name.
        parameter: &'static str,
        /// Human-readable constraint that was violated.
        constraint: String,
    },
    /// A data snapshot could not be decoded.
    CorruptSnapshot {
        /// What went wrong.
        detail: String,
    },
    /// An I/O operation (WAL append, snapshot write, …) failed.
    Io {
        /// What went wrong, including the underlying OS error.
        detail: String,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidScale { min, max, step } => {
                write!(f, "invalid rating scale: min={min}, max={max}, step={step}")
            }
            Error::InvalidRating { value, scale } => {
                write!(f, "rating {value} is not on scale {scale}")
            }
            Error::UnknownUser { user } => write!(f, "unknown user {user}"),
            Error::UnknownItem { item } => write!(f, "unknown item {item}"),
            Error::DuplicateAttribute { attribute } => {
                write!(f, "duplicate attribute \"{attribute}\" in schema")
            }
            Error::UnknownAttribute { attribute, domain } => {
                write!(
                    f,
                    "attribute \"{attribute}\" not declared in domain \"{domain}\""
                )
            }
            Error::KindMismatch {
                attribute,
                expected,
            } => {
                write!(f, "attribute \"{attribute}\" must be {expected}")
            }
            Error::EmptyModel { model } => write!(f, "{model} has not been fitted on any data"),
            Error::NoPrediction { user, item, reason } => {
                write!(f, "no prediction for ({user}, {item}): {reason}")
            }
            Error::InvalidSessionAction { detail } => {
                write!(f, "invalid session action: {detail}")
            }
            Error::MissingEvidence { interface, needs } => {
                write!(f, "interface \"{interface}\" requires {needs} evidence")
            }
            Error::InvalidConfig {
                parameter,
                constraint,
            } => {
                write!(
                    f,
                    "invalid configuration: {parameter} must satisfy {constraint}"
                )
            }
            Error::CorruptSnapshot { detail } => write!(f, "corrupt snapshot: {detail}"),
            Error::Io { detail } => write!(f, "i/o error: {detail}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = Error::UnknownUser {
            user: UserId::new(9),
        };
        assert_eq!(e.to_string(), "unknown user u9");

        let e = Error::NoPrediction {
            user: UserId::new(1),
            item: ItemId::new(2),
            reason: "no overlapping neighbours",
        };
        assert!(e.to_string().contains("no overlapping neighbours"));

        let e = Error::MissingEvidence {
            interface: "histogram",
            needs: "neighbour",
        };
        assert!(e.to_string().contains("histogram"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&Error::EmptyModel { model: "user-knn" });
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(
            Error::UnknownItem {
                item: ItemId::new(1)
            },
            Error::UnknownItem {
                item: ItemId::new(1)
            }
        );
        assert_ne!(
            Error::UnknownItem {
                item: ItemId::new(1)
            },
            Error::UnknownItem {
                item: ItemId::new(2)
            }
        );
    }
}

//! Schema-described item attributes.
//!
//! Knowledge-based recommendation, critiquing ("Less Memory and Lower
//! Resolution and Cheaper", survey Section 5.2) and structured overviews
//! (Section 4.5) all need to reason about item attributes *generically*:
//! which attributes exist, whether they are numeric or categorical, and in
//! which direction "better" lies. This module provides that vocabulary.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// The kind of values an attribute holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AttributeKind {
    /// Continuous or ordinal numeric values (price, resolution, weight…).
    Numeric,
    /// Unordered categorical values (brand, genre, cuisine…).
    Categorical,
    /// Free-text / keyword bags (descriptions, reviews).
    Text,
    /// Boolean flags (has-flash, vegetarian-options…).
    Flag,
}

impl fmt::Display for AttributeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AttributeKind::Numeric => "numeric",
            AttributeKind::Categorical => "categorical",
            AttributeKind::Text => "text",
            AttributeKind::Flag => "flag",
        };
        f.write_str(s)
    }
}

/// Which direction of a numeric attribute is preferable, all else equal.
///
/// Critique generators use this to verbalize trade-offs: a lower price on
/// a [`Direction::LowerIsBetter`] attribute is rendered as "cheaper",
/// while a lower resolution on a [`Direction::HigherIsBetter`] attribute
/// is "lower resolution".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Direction {
    /// Larger values are better (resolution, memory, battery life).
    HigherIsBetter,
    /// Smaller values are better (price, weight, distance).
    LowerIsBetter,
    /// No universal ordering (screen size, spice level) — user-specific.
    #[default]
    Neutral,
}

/// Definition of one attribute in a domain schema.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttributeDef {
    /// Machine name, unique within a schema (e.g. `"price"`).
    pub name: String,
    /// Human-readable label (e.g. `"Price"`).
    pub label: String,
    /// Value kind.
    pub kind: AttributeKind,
    /// Preference direction for numeric attributes.
    pub direction: Direction,
    /// Optional unit suffix for rendering (e.g. `"$"`, `"MP"`, `"g"`).
    pub unit: Option<String>,
    /// Adjective pair used when verbalizing comparisons, as
    /// `(more_word, less_word)` — e.g. `("more expensive", "cheaper")`.
    /// When absent, generic "higher X" / "lower X" phrasing is used.
    pub comparatives: Option<(String, String)>,
}

impl AttributeDef {
    /// Creates a numeric attribute definition.
    pub fn numeric(name: &str, label: &str, direction: Direction) -> Self {
        Self {
            name: name.to_owned(),
            label: label.to_owned(),
            kind: AttributeKind::Numeric,
            direction,
            unit: None,
            comparatives: None,
        }
    }

    /// Creates a categorical attribute definition.
    pub fn categorical(name: &str, label: &str) -> Self {
        Self {
            name: name.to_owned(),
            label: label.to_owned(),
            kind: AttributeKind::Categorical,
            direction: Direction::Neutral,
            unit: None,
            comparatives: None,
        }
    }

    /// Creates a flag attribute definition.
    pub fn flag(name: &str, label: &str) -> Self {
        Self {
            name: name.to_owned(),
            label: label.to_owned(),
            kind: AttributeKind::Flag,
            direction: Direction::Neutral,
            unit: None,
            comparatives: None,
        }
    }

    /// Creates a text attribute definition.
    pub fn text(name: &str, label: &str) -> Self {
        Self {
            name: name.to_owned(),
            label: label.to_owned(),
            kind: AttributeKind::Text,
            direction: Direction::Neutral,
            unit: None,
            comparatives: None,
        }
    }

    /// Attaches a unit suffix (builder style).
    pub fn with_unit(mut self, unit: &str) -> Self {
        self.unit = Some(unit.to_owned());
        self
    }

    /// Attaches comparative adjectives (builder style):
    /// `with_comparatives("more expensive", "cheaper")`.
    pub fn with_comparatives(mut self, more: &str, less: &str) -> Self {
        self.comparatives = Some((more.to_owned(), less.to_owned()));
        self
    }

    /// The word for "this item has *more* of the attribute".
    pub fn more_word(&self) -> String {
        match &self.comparatives {
            Some((more, _)) => more.clone(),
            None => format!("higher {}", self.label.to_lowercase()),
        }
    }

    /// The word for "this item has *less* of the attribute".
    pub fn less_word(&self) -> String {
        match &self.comparatives {
            Some((_, less)) => less.clone(),
            None => format!("lower {}", self.label.to_lowercase()),
        }
    }
}

/// A single attribute value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AttrValue {
    /// Numeric value.
    Num(f64),
    /// Categorical symbol.
    Cat(String),
    /// Text (already lowercase-tokenizable).
    Text(String),
    /// Boolean flag.
    Flag(bool),
}

impl AttrValue {
    /// The numeric value, if this is [`AttrValue::Num`].
    pub fn as_num(&self) -> Option<f64> {
        match self {
            AttrValue::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The categorical symbol, if this is [`AttrValue::Cat`].
    pub fn as_cat(&self) -> Option<&str> {
        match self {
            AttrValue::Cat(s) => Some(s),
            _ => None,
        }
    }

    /// The text payload, if this is [`AttrValue::Text`].
    pub fn as_text(&self) -> Option<&str> {
        match self {
            AttrValue::Text(s) => Some(s),
            _ => None,
        }
    }

    /// The flag, if this is [`AttrValue::Flag`].
    pub fn as_flag(&self) -> Option<bool> {
        match self {
            AttrValue::Flag(b) => Some(*b),
            _ => None,
        }
    }

    /// Whether this value's variant matches an [`AttributeKind`].
    pub fn matches_kind(&self, kind: AttributeKind) -> bool {
        matches!(
            (self, kind),
            (AttrValue::Num(_), AttributeKind::Numeric)
                | (AttrValue::Cat(_), AttributeKind::Categorical)
                | (AttrValue::Text(_), AttributeKind::Text)
                | (AttrValue::Flag(_), AttributeKind::Flag)
        )
    }
}

impl fmt::Display for AttrValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttrValue::Num(v) => {
                if (v.fract()).abs() < 1e-9 {
                    write!(f, "{}", *v as i64)
                } else {
                    write!(f, "{v:.2}")
                }
            }
            AttrValue::Cat(s) | AttrValue::Text(s) => f.write_str(s),
            AttrValue::Flag(b) => f.write_str(if *b { "yes" } else { "no" }),
        }
    }
}

impl From<f64> for AttrValue {
    fn from(v: f64) -> Self {
        AttrValue::Num(v)
    }
}

impl From<bool> for AttrValue {
    fn from(v: bool) -> Self {
        AttrValue::Flag(v)
    }
}

impl From<&str> for AttrValue {
    fn from(v: &str) -> Self {
        AttrValue::Cat(v.to_owned())
    }
}

/// An ordered map of attribute name → value, as carried by each item.
///
/// A `BTreeMap` keeps rendering deterministic.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct AttributeSet {
    values: BTreeMap<String, AttrValue>,
}

impl AttributeSet {
    /// An empty attribute set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets an attribute (builder style).
    pub fn with(mut self, name: &str, value: impl Into<AttrValue>) -> Self {
        self.values.insert(name.to_owned(), value.into());
        self
    }

    /// Sets an attribute in place.
    pub fn set(&mut self, name: &str, value: impl Into<AttrValue>) {
        self.values.insert(name.to_owned(), value.into());
    }

    /// Looks up an attribute value.
    pub fn get(&self, name: &str) -> Option<&AttrValue> {
        self.values.get(name)
    }

    /// Numeric value shortcut.
    pub fn num(&self, name: &str) -> Option<f64> {
        self.get(name).and_then(AttrValue::as_num)
    }

    /// Categorical value shortcut.
    pub fn cat(&self, name: &str) -> Option<&str> {
        self.get(name).and_then(AttrValue::as_cat)
    }

    /// Flag value shortcut.
    pub fn flag(&self, name: &str) -> Option<bool> {
        self.get(name).and_then(AttrValue::as_flag)
    }

    /// Text value shortcut.
    pub fn text(&self, name: &str) -> Option<&str> {
        self.get(name).and_then(AttrValue::as_text)
    }

    /// Number of attributes present.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Iterates over `(name, value)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &AttrValue)> {
        self.values.iter().map(|(k, v)| (k.as_str(), v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_lookup() {
        let a = AttributeSet::new()
            .with("price", 499.0)
            .with("brand", "Canon")
            .with("flash", true);
        assert_eq!(a.num("price"), Some(499.0));
        assert_eq!(a.cat("brand"), Some("Canon"));
        assert_eq!(a.flag("flash"), Some(true));
        assert_eq!(a.num("missing"), None);
        assert_eq!(a.len(), 3);
        assert!(!a.is_empty());
    }

    #[test]
    fn kind_matching() {
        assert!(AttrValue::Num(1.0).matches_kind(AttributeKind::Numeric));
        assert!(!AttrValue::Num(1.0).matches_kind(AttributeKind::Flag));
        assert!(AttrValue::Text("x".into()).matches_kind(AttributeKind::Text));
    }

    #[test]
    fn display_formats() {
        assert_eq!(AttrValue::Num(5.0).to_string(), "5");
        assert_eq!(AttrValue::Num(5.25).to_string(), "5.25");
        assert_eq!(AttrValue::Flag(false).to_string(), "no");
        assert_eq!(AttrValue::Cat("Canon".into()).to_string(), "Canon");
    }

    #[test]
    fn comparative_words() {
        let price = AttributeDef::numeric("price", "Price", Direction::LowerIsBetter)
            .with_comparatives("more expensive", "cheaper");
        assert_eq!(price.more_word(), "more expensive");
        assert_eq!(price.less_word(), "cheaper");

        let zoom = AttributeDef::numeric("zoom", "Optical Zoom", Direction::HigherIsBetter);
        assert_eq!(zoom.more_word(), "higher optical zoom");
        assert_eq!(zoom.less_word(), "lower optical zoom");
    }

    #[test]
    fn iter_is_name_ordered() {
        let a = AttributeSet::new()
            .with("z", 1.0)
            .with("a", 2.0)
            .with("m", 3.0);
        let names: Vec<&str> = a.iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["a", "m", "z"]);
    }
}

//! Domain schemas and items.
//!
//! A [`DomainSchema`] declares which attributes items of a domain carry
//! (the survey spans movies, news, books, digital cameras, restaurants,
//! holidays and more — see Tables 3 and 4). An [`Item`] is one
//! recommendable object with a title, schema-described attributes and a
//! keyword bag used by content-based recommenders.

use crate::attribute::{AttributeDef, AttributeSet};
use crate::error::{Error, Result};
use crate::id::ItemId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Declarative description of a domain's attributes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DomainSchema {
    /// Human-readable domain name (e.g. `"movies"`).
    pub name: String,
    attributes: Vec<AttributeDef>,
}

impl DomainSchema {
    /// Builds a schema from a name and attribute definitions.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DuplicateAttribute`] when two definitions share a
    /// name.
    pub fn new(name: &str, attributes: Vec<AttributeDef>) -> Result<Self> {
        for (i, a) in attributes.iter().enumerate() {
            if attributes[..i].iter().any(|b| b.name == a.name) {
                return Err(Error::DuplicateAttribute {
                    attribute: a.name.clone(),
                });
            }
        }
        Ok(Self {
            name: name.to_owned(),
            attributes,
        })
    }

    /// All attribute definitions, in declaration order.
    pub fn attributes(&self) -> &[AttributeDef] {
        &self.attributes
    }

    /// Looks up an attribute definition by machine name.
    pub fn attribute(&self, name: &str) -> Option<&AttributeDef> {
        self.attributes.iter().find(|a| a.name == name)
    }

    /// Validates that every value in `attrs` is declared in the schema
    /// with a matching kind.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownAttribute`] or [`Error::KindMismatch`].
    pub fn validate(&self, attrs: &AttributeSet) -> Result<()> {
        for (name, value) in attrs.iter() {
            let def = self
                .attribute(name)
                .ok_or_else(|| Error::UnknownAttribute {
                    attribute: name.to_owned(),
                    domain: self.name.clone(),
                })?;
            if !value.matches_kind(def.kind) {
                return Err(Error::KindMismatch {
                    attribute: name.to_owned(),
                    expected: def.kind,
                });
            }
        }
        Ok(())
    }
}

impl fmt::Display for DomainSchema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({} attributes)", self.name, self.attributes.len())
    }
}

/// One recommendable object.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Item {
    /// Dense identifier within a catalog.
    pub id: ItemId,
    /// Display title.
    pub title: String,
    /// Schema-described attributes.
    pub attrs: AttributeSet,
    /// Keyword bag for content-based models (lowercased tokens).
    pub keywords: Vec<String>,
}

impl Item {
    /// Builds an item with no attributes or keywords.
    pub fn new(id: ItemId, title: &str) -> Self {
        Self {
            id,
            title: title.to_owned(),
            attrs: AttributeSet::new(),
            keywords: Vec::new(),
        }
    }

    /// Sets the attribute set (builder style).
    pub fn with_attrs(mut self, attrs: AttributeSet) -> Self {
        self.attrs = attrs;
        self
    }

    /// Sets the keyword bag (builder style), lowercasing each keyword.
    pub fn with_keywords<I, S>(mut self, keywords: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        self.keywords = keywords
            .into_iter()
            .map(|k| k.as_ref().to_lowercase())
            .collect();
        self
    }

    /// Whether the keyword bag contains `keyword` (case-insensitive).
    pub fn has_keyword(&self, keyword: &str) -> bool {
        let k = keyword.to_lowercase();
        self.keywords.contains(&k)
    }
}

impl fmt::Display for Item {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} \"{}\"", self.id, self.title)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attribute::Direction;

    fn camera_schema() -> DomainSchema {
        DomainSchema::new(
            "cameras",
            vec![
                AttributeDef::numeric("price", "Price", Direction::LowerIsBetter),
                AttributeDef::numeric("resolution", "Resolution", Direction::HigherIsBetter),
                AttributeDef::categorical("brand", "Brand"),
                AttributeDef::flag("flash", "Flash"),
            ],
        )
        .unwrap()
    }

    #[test]
    fn schema_rejects_duplicates() {
        let err = DomainSchema::new(
            "d",
            vec![
                AttributeDef::flag("x", "X"),
                AttributeDef::numeric("x", "X2", Direction::Neutral),
            ],
        )
        .unwrap_err();
        assert!(err.to_string().contains("duplicate"));
    }

    #[test]
    fn schema_lookup() {
        let s = camera_schema();
        assert!(s.attribute("price").is_some());
        assert!(s.attribute("nope").is_none());
        assert_eq!(s.attributes().len(), 4);
    }

    #[test]
    fn validate_accepts_conforming_items() {
        let s = camera_schema();
        let attrs = AttributeSet::new()
            .with("price", 300.0)
            .with("brand", "Nikon")
            .with("flash", true);
        assert!(s.validate(&attrs).is_ok());
    }

    #[test]
    fn validate_rejects_unknown_and_mismatched() {
        let s = camera_schema();
        let unknown = AttributeSet::new().with("weight", 1.0);
        assert!(matches!(
            s.validate(&unknown),
            Err(Error::UnknownAttribute { .. })
        ));
        let mismatch = AttributeSet::new().with("price", "cheap");
        assert!(matches!(
            s.validate(&mismatch),
            Err(Error::KindMismatch { .. })
        ));
    }

    #[test]
    fn item_keywords_lowercase() {
        let it = Item::new(ItemId::new(0), "Great Expectations").with_keywords([
            "Dickens",
            "Victorian",
            "ORPHAN",
        ]);
        assert!(it.has_keyword("dickens"));
        assert!(it.has_keyword("Dickens"));
        assert!(!it.has_keyword("austen"));
    }

    #[test]
    fn item_display() {
        let it = Item::new(ItemId::new(3), "Oliver Twist");
        assert_eq!(it.to_string(), "i3 \"Oliver Twist\"");
    }
}

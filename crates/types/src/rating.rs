//! Rating values, rating scales and predictions.
//!
//! The survey distinguishes two dimensions of a recommendation (Section
//! 4.6, after Herlocker et al. 2004): the *strength* of the recommendation
//! (how much the system thinks the user will like the item) and the
//! *confidence* (how sure the system is). [`Prediction`] carries both, and
//! the explanation layer may disclose either or both depending on the
//! recommender's "personality".

use crate::error::{Error, Result};
use serde::{Deserialize, Serialize};
use std::fmt;

/// An inclusive rating scale, e.g. 1..5 stars in steps of 1, or 0.5..5.0
/// in steps of 0.5.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RatingScale {
    min: f64,
    max: f64,
    step: f64,
}

impl RatingScale {
    /// The classic MovieLens-style five-star scale (1.0 ..= 5.0, step 1).
    pub const FIVE_STAR: RatingScale = RatingScale {
        min: 1.0,
        max: 5.0,
        step: 1.0,
    };

    /// A half-star scale (0.5 ..= 5.0, step 0.5).
    pub const HALF_STAR: RatingScale = RatingScale {
        min: 0.5,
        max: 5.0,
        step: 0.5,
    };

    /// A unit interval scale (0 ..= 1, continuous).
    pub const UNIT: RatingScale = RatingScale {
        min: 0.0,
        max: 1.0,
        step: 0.0,
    };

    /// Builds a custom scale. `step == 0.0` means continuous.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidScale`] when `min >= max`, any bound is not
    /// finite, or `step` is negative.
    pub fn new(min: f64, max: f64, step: f64) -> Result<Self> {
        if !(min.is_finite() && max.is_finite() && step.is_finite())
            || min >= max
            || step < 0.0
            || step > max - min
        {
            return Err(Error::InvalidScale { min, max, step });
        }
        Ok(Self { min, max, step })
    }

    /// Lower bound of the scale.
    #[inline]
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Upper bound of the scale.
    #[inline]
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Step between adjacent levels; `0.0` for a continuous scale.
    #[inline]
    pub fn step(&self) -> f64 {
        self.step
    }

    /// Width of the scale (`max - min`).
    #[inline]
    pub fn span(&self) -> f64 {
        self.max - self.min
    }

    /// Midpoint of the scale, a common neutral prior for mean-centred
    /// predictors.
    #[inline]
    pub fn midpoint(&self) -> f64 {
        self.min + self.span() / 2.0
    }

    /// Whether `value` lies on the scale (within bounds; for stepped
    /// scales, within a small tolerance of a step level).
    pub fn contains(&self, value: f64) -> bool {
        if !value.is_finite() || value < self.min - 1e-9 || value > self.max + 1e-9 {
            return false;
        }
        if self.step == 0.0 {
            return true;
        }
        let k = (value - self.min) / self.step;
        (k - k.round()).abs() < 1e-6
    }

    /// Clamps an arbitrary score to the nearest value on the scale.
    pub fn clamp(&self, value: f64) -> f64 {
        let v = value.clamp(self.min, self.max);
        if self.step == 0.0 {
            v
        } else {
            // Snap to the nearest step *level*, never past the last one
            // (which may sit below `max` when the span is not a multiple
            // of the step).
            let k_max = ((self.span() + 1e-9) / self.step).floor();
            let k = ((v - self.min) / self.step).round().clamp(0.0, k_max);
            self.min + k * self.step
        }
    }

    /// Clamps a score into the scale's bounds *without* snapping to step
    /// levels. Predictions are conceptually continuous ("4.2 stars") even
    /// on stepped scales; use [`RatingScale::clamp`] only for values a
    /// user would actually enter.
    #[inline]
    pub fn bound(&self, value: f64) -> f64 {
        if value.is_nan() {
            self.midpoint()
        } else {
            value.clamp(self.min, self.max)
        }
    }

    /// Maps a `[0, 1]` value onto the scale *without* snapping to step
    /// levels (the continuous counterpart of [`RatingScale::denormalize`]).
    #[inline]
    pub fn denormalize_continuous(&self, unit: f64) -> f64 {
        self.min + unit.clamp(0.0, 1.0) * self.span()
    }

    /// All discrete levels of the scale, lowest first. Empty for a
    /// continuous scale.
    pub fn levels(&self) -> Vec<f64> {
        if self.step == 0.0 {
            return Vec::new();
        }
        let n = ((self.span() + 1e-9) / self.step).floor() as usize;
        (0..=n).map(|k| self.min + k as f64 * self.step).collect()
    }

    /// Normalizes an in-scale value to `[0, 1]`.
    #[inline]
    pub fn normalize(&self, value: f64) -> f64 {
        ((value - self.min) / self.span()).clamp(0.0, 1.0)
    }

    /// Maps a `[0, 1]` value back onto the scale (snapping to steps).
    #[inline]
    pub fn denormalize(&self, unit: f64) -> f64 {
        self.clamp(self.min + unit.clamp(0.0, 1.0) * self.span())
    }
}

impl Default for RatingScale {
    fn default() -> Self {
        Self::FIVE_STAR
    }
}

impl fmt::Display for RatingScale {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.step == 0.0 {
            write!(f, "[{}, {}] (continuous)", self.min, self.max)
        } else {
            write!(f, "[{}, {}] step {}", self.min, self.max, self.step)
        }
    }
}

/// A validated rating: the value is guaranteed to lie on the scale it was
/// constructed with.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Rating(f64);

impl Rating {
    /// Validates `value` against `scale`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidRating`] when the value is off-scale.
    pub fn new(value: f64, scale: &RatingScale) -> Result<Self> {
        if scale.contains(value) {
            Ok(Self(value))
        } else {
            Err(Error::InvalidRating {
                value,
                scale: *scale,
            })
        }
    }

    /// Snaps an arbitrary score onto `scale` and wraps it.
    pub fn clamped(value: f64, scale: &RatingScale) -> Self {
        Self(scale.clamp(value))
    }

    /// The rating value.
    #[inline]
    pub fn value(self) -> f64 {
        self.0
    }
}

impl fmt::Display for Rating {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1}", self.0)
    }
}

/// A confidence level in `[0, 1]`. Out-of-range inputs are clamped.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Confidence(f64);

impl Confidence {
    /// Full confidence.
    pub const CERTAIN: Confidence = Confidence(1.0);
    /// No confidence at all.
    pub const NONE: Confidence = Confidence(0.0);

    /// Builds a confidence, clamping into `[0, 1]` (NaN becomes 0).
    pub fn new(v: f64) -> Self {
        if v.is_nan() {
            Self(0.0)
        } else {
            Self(v.clamp(0.0, 1.0))
        }
    }

    /// The confidence value in `[0, 1]`.
    #[inline]
    pub fn value(self) -> f64 {
        self.0
    }

    /// A coarse verbal label, used by "frank" recommender personalities
    /// when admitting how sure they are (survey Section 4.6).
    pub fn label(self) -> &'static str {
        match self.0 {
            v if v >= 0.85 => "very confident",
            v if v >= 0.6 => "confident",
            v if v >= 0.35 => "somewhat unsure",
            _ => "not confident",
        }
    }
}

impl fmt::Display for Confidence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.0}%", self.0 * 100.0)
    }
}

/// A predicted rating: strength (the score, on some scale) plus the
/// system's confidence in it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Prediction {
    /// Predicted score, on the model's rating scale.
    pub score: f64,
    /// How sure the model is of `score`.
    pub confidence: Confidence,
}

impl Prediction {
    /// Builds a prediction.
    pub fn new(score: f64, confidence: Confidence) -> Self {
        Self { score, confidence }
    }

    /// A prediction with full confidence (e.g. from deterministic
    /// knowledge-based scoring).
    pub fn certain(score: f64) -> Self {
        Self {
            score,
            confidence: Confidence::CERTAIN,
        }
    }
}

impl fmt::Display for Prediction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} ({})", self.score, self.confidence)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_star_levels() {
        assert_eq!(
            RatingScale::FIVE_STAR.levels(),
            vec![1.0, 2.0, 3.0, 4.0, 5.0]
        );
        assert_eq!(RatingScale::HALF_STAR.levels().len(), 10);
        assert!(RatingScale::UNIT.levels().is_empty());
    }

    #[test]
    fn contains_respects_steps() {
        let s = RatingScale::FIVE_STAR;
        assert!(s.contains(3.0));
        assert!(!s.contains(3.5));
        assert!(!s.contains(0.0));
        assert!(!s.contains(6.0));
        assert!(!s.contains(f64::NAN));
        assert!(RatingScale::UNIT.contains(0.37));
    }

    #[test]
    fn clamp_snaps_to_nearest_level() {
        let s = RatingScale::FIVE_STAR;
        assert_eq!(s.clamp(3.4), 3.0);
        assert_eq!(s.clamp(3.6), 4.0);
        assert_eq!(s.clamp(-2.0), 1.0);
        assert_eq!(s.clamp(9.0), 5.0);
    }

    #[test]
    fn invalid_scales_rejected() {
        assert!(RatingScale::new(5.0, 1.0, 1.0).is_err());
        assert!(RatingScale::new(1.0, 5.0, -1.0).is_err());
        assert!(RatingScale::new(f64::NAN, 5.0, 1.0).is_err());
        assert!(RatingScale::new(0.0, 1.0, 0.0).is_ok());
        assert!(
            RatingScale::new(0.0, 0.5, 0.7).is_err(),
            "step larger than the span is degenerate"
        );
    }

    #[test]
    fn rating_validation() {
        let s = RatingScale::FIVE_STAR;
        assert!(Rating::new(4.0, &s).is_ok());
        assert!(Rating::new(4.2, &s).is_err());
        assert_eq!(Rating::clamped(4.2, &s).value(), 4.0);
    }

    #[test]
    fn normalize_round_trips() {
        let s = RatingScale::FIVE_STAR;
        for level in s.levels() {
            let u = s.normalize(level);
            assert!((s.denormalize(u) - level).abs() < 1e-9);
        }
        assert_eq!(s.normalize(1.0), 0.0);
        assert_eq!(s.normalize(5.0), 1.0);
    }

    #[test]
    fn confidence_clamps_and_labels() {
        assert_eq!(Confidence::new(1.5).value(), 1.0);
        assert_eq!(Confidence::new(-0.5).value(), 0.0);
        assert_eq!(Confidence::new(f64::NAN).value(), 0.0);
        assert_eq!(Confidence::new(0.9).label(), "very confident");
        assert_eq!(Confidence::new(0.1).label(), "not confident");
    }

    #[test]
    fn midpoint_is_neutral() {
        assert_eq!(RatingScale::FIVE_STAR.midpoint(), 3.0);
        assert_eq!(RatingScale::UNIT.midpoint(), 0.5);
    }

    #[test]
    fn prediction_display() {
        let p = Prediction::new(4.25, Confidence::new(0.8));
        assert_eq!(p.to_string(), "4.25 (80%)");
    }
}

//! # exrec-types
//!
//! Foundation types shared by every crate in the `exrec` workspace: entity
//! identifiers, rating values and scales, item attributes and domain
//! schemas, and the common error type.
//!
//! The toolkit reproduces the framework of Tintarev & Masthoff,
//! *A Survey of Explanations in Recommender Systems* (ICDE'07 workshops).
//! This crate deliberately contains no algorithmic code — only the
//! vocabulary the rest of the system speaks.
//!
//! ## Design notes
//!
//! * Identifiers are newtypes over `u32` ([`UserId`], [`ItemId`]) so that a
//!   user index can never be confused with an item index at compile time.
//! * Ratings are validated at construction against a [`RatingScale`]; a
//!   [`Rating`] therefore always holds an in-scale value.
//! * Item attributes are schema-described ([`DomainSchema`]) so that
//!   knowledge-based recommenders and critique generators can reason about
//!   *directions* ("cheaper is better") without domain-specific code.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod attribute;
pub mod domain;
pub mod error;
pub mod id;
pub mod rating;
pub mod time;

pub use attribute::{AttrValue, AttributeDef, AttributeKind, AttributeSet, Direction};
pub use domain::{DomainSchema, Item};
pub use error::{Error, Result};
pub use id::{ItemId, UserId};
pub use rating::{Confidence, Prediction, Rating, RatingScale};
pub use time::SimTime;

//! Property tests for the foundation types.

use exrec_types::*;
use proptest::prelude::*;

proptest! {
    #[test]
    fn custom_scales_behave(min in -10.0f64..10.0, span in 0.5f64..20.0, step in 0.0f64..2.0) {
        let max = min + span;
        let Ok(scale) = RatingScale::new(min, max, step) else {
            // Only invalid when step is degenerate relative to span; the
            // constructor is the oracle.
            return Ok(());
        };
        // Midpoint is inside.
        prop_assert!(scale.midpoint() >= min && scale.midpoint() <= max);
        // Clamp always lands on-scale.
        for v in [min - 5.0, min, (min + max) / 2.0, max, max + 5.0] {
            prop_assert!(scale.contains(scale.clamp(v)), "clamp({v}) off scale");
        }
        // Levels (if any) are all contained and ascending.
        let levels = scale.levels();
        prop_assert!(levels.windows(2).all(|w| w[0] < w[1]));
        for l in levels {
            prop_assert!(scale.contains(l));
        }
    }

    #[test]
    fn bound_is_idempotent(v in -100.0f64..100.0) {
        let s = RatingScale::FIVE_STAR;
        prop_assert_eq!(s.bound(s.bound(v)), s.bound(v));
    }

    #[test]
    fn confidence_always_unit(v in -10.0f64..10.0) {
        let c = Confidence::new(v);
        prop_assert!((0.0..=1.0).contains(&c.value()));
        prop_assert!(!c.label().is_empty());
    }

    #[test]
    fn attribute_set_get_returns_last_set(
        pairs in prop::collection::vec(("[a-c]", -100.0f64..100.0), 1..20)
    ) {
        let mut set = AttributeSet::new();
        let mut last: std::collections::HashMap<String, f64> = Default::default();
        for (k, v) in &pairs {
            set.set(k, *v);
            last.insert(k.clone(), *v);
        }
        for (k, v) in &last {
            prop_assert_eq!(set.num(k), Some(*v));
        }
        prop_assert_eq!(set.len(), last.len());
    }

    #[test]
    fn ids_serde_round_trip(raw in any::<u32>()) {
        let u = UserId::new(raw);
        let json = serde_json::to_string(&u).unwrap();
        prop_assert_eq!(serde_json::from_str::<UserId>(&json).unwrap(), u);
        let i = ItemId::new(raw);
        let json = serde_json::to_string(&i).unwrap();
        prop_assert_eq!(serde_json::from_str::<ItemId>(&json).unwrap(), i);
    }

    #[test]
    fn sim_time_is_monotone_under_addition(start in 0u64..1_000_000, deltas in prop::collection::vec(0u64..1000, 0..50)) {
        let mut t = SimTime::from_ticks(start);
        let mut prev = t;
        for d in deltas {
            t += d;
            prop_assert!(t >= prev);
            prop_assert_eq!(t - prev, d);
            prev = t;
        }
    }

    #[test]
    fn error_display_never_empty(user in any::<u32>(), item in any::<u32>()) {
        let errors = vec![
            Error::UnknownUser { user: UserId::new(user) },
            Error::UnknownItem { item: ItemId::new(item) },
            Error::EmptyModel { model: "m" },
        ];
        for e in errors {
            prop_assert!(!e.to_string().is_empty());
        }
    }
}

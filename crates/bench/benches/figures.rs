//! Benches F1–F3: regenerating the survey's three figures, plus the
//! squarified-vs-slice-and-dice treemap ablation.

use criterion::{criterion_group, criterion_main, Criterion};
use exrec_bench::{figure1_text, figure2_treemap, figure2_world, figure3_text};
use exrec_present::treemap::{layout, Layout, Rect, TreemapNode};
use std::hint::black_box;

fn bench_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("fig1_scrutable", |b| {
        b.iter(|| black_box(figure1_text(0xF1).unwrap()))
    });
    let world = figure2_world();
    g.bench_function("fig2_treemap", |b| {
        b.iter(|| black_box(figure2_treemap(&world)))
    });
    g.bench_function("fig3_influence", |b| {
        b.iter(|| black_box(figure3_text(0xF3).unwrap()))
    });
    g.finish();
}

fn bench_treemap_ablation(c: &mut Criterion) {
    let nodes: Vec<TreemapNode> = (1..=200)
        .map(|k| TreemapNode {
            label: format!("n{k}"),
            weight: (k % 17 + 1) as f64,
            group: k % 6,
            shade: (k % 10) as f64 / 10.0,
        })
        .collect();
    let mut g = c.benchmark_group("ablation_treemap");
    g.sample_size(30);
    g.bench_function("squarified_200", |b| {
        b.iter(|| black_box(layout(nodes.clone(), Rect::UNIT, Layout::Squarified)))
    });
    g.bench_function("slice_dice_200", |b| {
        b.iter(|| black_box(layout(nodes.clone(), Rect::UNIT, Layout::SliceAndDice)))
    });
    g.finish();
}

criterion_group!(benches, bench_figures, bench_treemap_ablation);
criterion_main!(benches);

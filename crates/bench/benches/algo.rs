//! Performance benches for the recommender substrates.

use criterion::{criterion_group, criterion_main, Criterion};
use exrec_algo::baseline::Popularity;
use exrec_algo::content::{NaiveBayesModel, TfIdfConfig, TfIdfModel};
use exrec_algo::item_knn::{ItemKnn, ItemKnnConfig};
use exrec_algo::{Ctx, Recommender, UserKnn};
use exrec_bench::bench_movie_world;
use exrec_types::{ItemId, UserId};
use std::hint::black_box;

fn predictable_pair(world: &exrec_data::World, rec: &dyn Recommender) -> (UserId, ItemId) {
    let ctx = Ctx::new(&world.ratings, &world.catalog);
    for u in world.ratings.users() {
        if world.ratings.user_ratings(u).len() < 5 {
            continue;
        }
        for i in world.catalog.ids() {
            if world.ratings.rating(u, i).is_none() && rec.predict(&ctx, u, i).is_ok() {
                return (u, i);
            }
        }
    }
    panic!("no predictable pair");
}

fn bench_predict(c: &mut Criterion) {
    let world = bench_movie_world();
    let ctx = Ctx::new(&world.ratings, &world.catalog);
    let mut g = c.benchmark_group("algo_predict");
    g.sample_size(30);

    let user_knn = UserKnn::default();
    let (u, i) = predictable_pair(&world, &user_knn);
    g.bench_function("user_knn", |b| {
        b.iter(|| black_box(user_knn.predict(&ctx, u, i).unwrap()))
    });

    let item_knn = ItemKnn::fit(&ctx, ItemKnnConfig::default()).unwrap();
    let (u2, i2) = predictable_pair(&world, &item_knn);
    g.bench_function("item_knn", |b| {
        b.iter(|| black_box(item_knn.predict(&ctx, u2, i2).unwrap()))
    });

    let tfidf = TfIdfModel::fit(&ctx, TfIdfConfig::default()).unwrap();
    let (u3, i3) = predictable_pair(&world, &tfidf);
    g.bench_function("tfidf", |b| {
        b.iter(|| black_box(tfidf.predict(&ctx, u3, i3).unwrap()))
    });

    let nb = NaiveBayesModel::default();
    let (u4, i4) = predictable_pair(&world, &nb);
    g.bench_function("naive_bayes", |b| {
        b.iter(|| black_box(nb.predict(&ctx, u4, i4).unwrap()))
    });

    let pop = Popularity::default();
    g.bench_function("popularity", |b| {
        b.iter(|| black_box(pop.predict(&ctx, u, i).unwrap()))
    });
    g.finish();
}

fn bench_fit_and_recommend(c: &mut Criterion) {
    let world = bench_movie_world();
    let ctx = Ctx::new(&world.ratings, &world.catalog);
    let mut g = c.benchmark_group("algo_fit_recommend");
    g.sample_size(10);

    g.bench_function("item_knn_fit", |b| {
        b.iter(|| black_box(ItemKnn::fit(&ctx, ItemKnnConfig::default()).unwrap()))
    });
    g.bench_function("tfidf_fit", |b| {
        b.iter(|| black_box(TfIdfModel::fit(&ctx, TfIdfConfig::default()).unwrap()))
    });

    let user_knn = UserKnn::default();
    let user = world
        .ratings
        .users()
        .find(|&u| world.ratings.user_ratings(u).len() >= 5)
        .unwrap();
    g.bench_function("user_knn_recommend_top10", |b| {
        b.iter(|| black_box(user_knn.recommend(&ctx, user, 10)))
    });
    g.finish();
}

fn bench_world_generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("synth_generate");
    g.sample_size(10);
    g.bench_function("movie_world_100x80", |b| {
        b.iter(|| black_box(bench_movie_world()))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_predict,
    bench_fit_and_recommend,
    bench_world_generation
);
criterion_main!(benches);

//! Benches for the nine Section 3 studies (small configurations — the
//! bench measures harness cost; the full-size runs live in `repro`).

use criterion::{criterion_group, criterion_main, Criterion};
use exrec_core::interfaces::InterfaceId;
use exrec_eval::studies::*;
use std::hint::black_box;

fn bench_studies(c: &mut Criterion) {
    let mut g = c.benchmark_group("studies");
    g.sample_size(10);

    g.bench_function("study_persuasion", |b| {
        let cfg = persuasion_herlocker::Config {
            n_participants: 8,
            n_items: 2,
            ..Default::default()
        };
        b.iter(|| black_box(persuasion_herlocker::run(&cfg)))
    });
    g.bench_function("study_shift", |b| {
        let cfg = rating_shift::Config {
            n_participants: 8,
            n_items: 2,
            ..Default::default()
        };
        b.iter(|| black_box(rating_shift::run(&cfg)))
    });
    g.bench_function("study_effectiveness", |b| {
        let cfg = effectiveness::Config {
            n_participants: 8,
            n_items: 2,
            ..Default::default()
        };
        b.iter(|| black_box(effectiveness::run(&cfg)))
    });
    g.bench_function("study_efficiency", |b| {
        let cfg = efficiency::Config {
            n_shoppers: 6,
            n_items: 50,
            ..Default::default()
        };
        b.iter(|| black_box(efficiency::run(&cfg)))
    });
    g.bench_function("study_trust", |b| {
        let cfg = trust_loyalty::Config {
            n_participants: 8,
            n_rounds: 5,
            ..Default::default()
        };
        b.iter(|| black_box(trust_loyalty::run(&cfg)))
    });
    g.bench_function("study_transparency", |b| {
        let cfg = transparency::Config {
            n_participants: 8,
            ..Default::default()
        };
        b.iter(|| black_box(transparency::run(&cfg)))
    });
    g.bench_function("study_scrutability", |b| {
        let cfg = scrutability::Config {
            n_participants: 8,
            ..Default::default()
        };
        b.iter(|| black_box(scrutability::run(&cfg)))
    });
    g.bench_function("study_satisfaction", |b| {
        let cfg = satisfaction::Config {
            n_participants: 8,
            interfaces: vec![
                InterfaceId::CanonicalPreference,
                InterfaceId::ClusteredHistogram,
                InterfaceId::ComplexGraph,
            ],
            ..Default::default()
        };
        b.iter(|| black_box(satisfaction::run(&cfg)))
    });
    g.bench_function("study_modality", |b| {
        let cfg = modality::Config {
            n_participants: 8,
            n_items: 2,
            ..Default::default()
        };
        b.iter(|| black_box(modality::run(&cfg)))
    });
    g.bench_function("study_accuracy", |b| {
        let cfg = accuracy::Config {
            n_users: 40,
            n_items: 40,
            ..Default::default()
        };
        b.iter(|| black_box(accuracy::run(&cfg)))
    });
    g.bench_function("ablation_tradeoffs", |b| {
        let cfg = tradeoffs::Config {
            n_participants: 8,
            boldness_steps: 4,
            ..Default::default()
        };
        b.iter(|| black_box(tradeoffs::run(&cfg)))
    });
    g.finish();
}

criterion_group!(benches, bench_studies);
criterion_main!(benches);

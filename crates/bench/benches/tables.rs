//! Benches T1–T4: regenerating the survey's four tables.

use criterion::{criterion_group, criterion_main, Criterion};
use exrec_registry::tables;
use std::hint::black_box;

fn bench_tables(c: &mut Criterion) {
    let mut g = c.benchmark_group("tables");
    g.sample_size(20);
    g.bench_function("table1_aims", |b| {
        b.iter(|| black_box(tables::table1().render_ascii()))
    });
    g.bench_function("table2_matrix", |b| {
        b.iter(|| black_box(tables::table2().render_ascii()))
    });
    g.bench_function("table3_commercial", |b| {
        b.iter(|| black_box(tables::table3().render_ascii()))
    });
    g.bench_function("table4_academic", |b| {
        b.iter(|| black_box(tables::table4().render_ascii()))
    });
    g.finish();
}

criterion_group!(benches, bench_tables);
criterion_main!(benches);

//! Performance benches for the explanation engine: interface generation,
//! leave-one-out influence, critique mining and Apriori.

use criterion::{criterion_group, criterion_main, Criterion};
use exrec_algo::assoc::apriori;
use exrec_algo::{Ctx, Recommender, UserKnn};
use exrec_bench::{bench_movie_world, loo_influence_workload, render_explanation};
use exrec_core::interfaces::{ExplainInput, InterfaceId};
use exrec_data::synth::{cameras, WorldConfig};
use exrec_present::critiques::mine_compound;
use exrec_types::{ItemId, UserId};
use std::hint::black_box;

fn bench_interfaces(c: &mut Criterion) {
    let world = bench_movie_world();
    let ctx = Ctx::new(&world.ratings, &world.catalog);
    let knn = UserKnn::default();
    let (user, item) = {
        let mut found = None;
        'outer: for u in world.ratings.users() {
            if world.ratings.user_ratings(u).len() < 5 {
                continue;
            }
            for i in world.catalog.ids() {
                if world.ratings.rating(u, i).is_none() && knn.predict(&ctx, u, i).is_ok() {
                    found = Some((u, i));
                    break 'outer;
                }
            }
        }
        found.expect("predictable pair")
    };
    let prediction = knn.predict(&ctx, user, item).unwrap();
    let evidence = knn.evidence(&ctx, user, item).unwrap();
    let input = ExplainInput {
        ctx: &ctx,
        user,
        item,
        prediction,
        evidence: &evidence,
    };

    let mut g = c.benchmark_group("explain_generate");
    g.sample_size(50);
    for id in [
        InterfaceId::ClusteredHistogram,
        InterfaceId::Histogram,
        InterfaceId::NeighborTable,
        InterfaceId::DetailedProcess,
        InterfaceId::CanonicalCollaborative,
    ] {
        g.bench_function(id.key(), |b| {
            b.iter(|| {
                let e = id.generate(&input).unwrap();
                black_box(render_explanation(&e))
            })
        });
    }
    g.finish();
}

fn bench_influence(c: &mut Criterion) {
    let world = bench_movie_world();
    let mut g = c.benchmark_group("explain_influence");
    g.sample_size(10);
    g.bench_function("loo_user_knn", |b| {
        b.iter(|| black_box(loo_influence_workload(&world).unwrap()))
    });
    g.finish();
}

fn bench_critiques(c: &mut Criterion) {
    let world = cameras::generate(&WorldConfig {
        n_users: 5,
        n_items: 100,
        seed: 0xC1,
        ..WorldConfig::default()
    });
    let candidates: Vec<ItemId> = world.catalog.ids().collect();
    let reference = candidates[0];
    let mut g = c.benchmark_group("critique_mine");
    g.sample_size(20);
    g.bench_function("compound_100_items", |b| {
        b.iter(|| black_box(mine_compound(&world.catalog, reference, &candidates, 0.1, 3).unwrap()))
    });
    g.finish();

    // Raw Apriori on synthetic transactions.
    let txs: Vec<Vec<u32>> = (0..500u32)
        .map(|k| (0..8).filter(|&s| (k + s) % 3 != 0).collect())
        .collect();
    let mut g = c.benchmark_group("apriori");
    g.sample_size(20);
    g.bench_function("500tx_8sym", |b| {
        b.iter(|| black_box(apriori(&txs, 0.1, 3)))
    });
    g.finish();
}

fn bench_session(c: &mut Criterion) {
    use exrec_algo::knowledge::{Constraint, Maut, Requirement};
    use exrec_interact::critiquing::CritiqueSession;
    use exrec_present::structured::OverviewConfig;

    let world = cameras::generate(&WorldConfig {
        n_users: 5,
        n_items: 60,
        seed: 0xC2,
        ..WorldConfig::default()
    });
    let ctx = Ctx::new(&world.ratings, &world.catalog);
    let maut = Maut::new(vec![
        Requirement::soft("price", Constraint::AtMost(500.0)),
        Requirement::soft("resolution", Constraint::AtLeast(8.0)),
    ])
    .unwrap();
    let mut g = c.benchmark_group("critique_session");
    g.sample_size(20);
    g.bench_function("start_and_one_cycle", |b| {
        b.iter(|| {
            let (mut session, screen) =
                CritiqueSession::start(maut.clone(), &ctx, OverviewConfig::default()).unwrap();
            if let Some((critique, _)) = screen.options.first() {
                let _ = black_box(session.apply_compound(&ctx, screen.current.item, critique));
            }
            black_box(session.cycles())
        })
    });
    g.finish();

    let _ = UserId::new(0); // keep import shape stable
}

fn bench_extensions(c: &mut Criterion) {
    use exrec_core::modality::{complement, restrict, Modality};
    use exrec_core::similexp::ExplainableSimilarity;
    use exrec_present::diversify::diversify;

    let world = bench_movie_world();
    let ctx = Ctx::new(&world.ratings, &world.catalog);
    let user = world
        .ratings
        .users()
        .find(|&u| world.ratings.user_ratings(u).len() >= 5)
        .unwrap();

    let mut g = c.benchmark_group("extensions");
    g.sample_size(20);
    g.bench_function("similexp_fit", |b| {
        b.iter(|| black_box(ExplainableSimilarity::fit(&ctx, user).unwrap()))
    });
    let sim = ExplainableSimilarity::fit(&ctx, user).unwrap();
    let a = world.catalog.get(ItemId::new(0)).unwrap();
    let bb = world.catalog.get(ItemId::new(1)).unwrap();
    g.bench_function("similexp_explain_pair", |b| {
        b.iter(|| black_box(sim.explain_pair(a, bb, world.catalog.schema())))
    });

    let knn = UserKnn::default();
    let candidates = knn.recommend(&ctx, user, 40);
    g.bench_function("diversify_40_to_10", |b| {
        b.iter(|| {
            black_box(diversify(&candidates, 10, 0.6, |x, y| {
                let gx = world.catalog.get(x).unwrap().attrs.cat("genre");
                let gy = world.catalog.get(y).unwrap().attrs.cat("genre");
                if gx == gy {
                    0.9
                } else {
                    0.1
                }
            }))
        })
    });

    use exrec_core::engine::Explainer;
    let explainer = Explainer::new(&knn, InterfaceId::ClusteredHistogram);
    if let Some((_, base)) = explainer
        .recommend_explained(&ctx, user, 1)
        .into_iter()
        .next()
    {
        g.bench_function("modality_complement", |b| {
            b.iter(|| black_box(complement(&restrict(&base, Modality::Visual))))
        });
    }
    let items: Vec<ItemId> = candidates.iter().take(3).map(|s| s.item).collect();
    g.bench_function("group_explanation_top3", |b| {
        b.iter(|| black_box(exrec_core::group::group_explanation(&ctx, user, &items).unwrap()))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_interfaces,
    bench_influence,
    bench_critiques,
    bench_session,
    bench_extensions
);
criterion_main!(benches);

//! Dead-link detection over the repo's markdown docs — the library
//! behind the `doccheck` binary and CI's `doc-links` job.
//!
//! The docs cross-reference each other heavily (`docs/kernels.md`
//! anchors are cited from rustdoc and other pages), and a renamed
//! heading or moved file silently strands every reference. This module
//! parses inline markdown links, resolves relative targets against the
//! filesystem, and checks `#fragment` targets against the GitHub
//! heading-slug set of the destination file.
//!
//! Scope is deliberately small: inline `[text](target)` links outside
//! fenced code blocks. External schemes (`http:`, `https:`, `mailto:`)
//! are not fetched — CI must not depend on the network — and
//! reference-style links are not used in this repo.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

/// One inline link found in a markdown file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Link {
    /// 1-based line the link starts on.
    pub line: usize,
    /// The raw parenthesised target, e.g. `architecture.md#data-flow`.
    pub target: String,
}

/// One unresolved link, human-readable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeadLink {
    /// File the link appears in.
    pub file: PathBuf,
    /// 1-based line of the link.
    pub line: usize,
    /// The raw target.
    pub target: String,
    /// Why it did not resolve.
    pub reason: String,
}

impl std::fmt::Display for DeadLink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: dead link ({}): {}",
            self.file.display(),
            self.line,
            self.target,
            self.reason
        )
    }
}

/// Extracts inline `[text](target)` links outside fenced code blocks.
/// Image links (`![alt](target)`) are included — a missing diagram is
/// as dead as a missing page.
pub fn extract_links(text: &str) -> Vec<Link> {
    let mut links = Vec::new();
    let mut in_fence = false;
    for (idx, line) in text.lines().enumerate() {
        if line.trim_start().starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if in_fence {
            continue;
        }
        let bytes = line.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            // Find `](` then scan back for the matching `[`; inline
            // code spans (`...`) are skipped wholesale.
            if bytes[i] == b'`' {
                i += 1;
                while i < bytes.len() && bytes[i] != b'`' {
                    i += 1;
                }
                i += 1;
                continue;
            }
            if bytes[i] == b']' && i + 1 < bytes.len() && bytes[i + 1] == b'(' {
                let close = line[i + 2..].find(')').map(|o| i + 2 + o);
                if let Some(close) = close {
                    let target = line[i + 2..close].trim();
                    // `[text](target "title")` — drop the title.
                    let target = target.split_whitespace().next().unwrap_or("");
                    if !target.is_empty() {
                        links.push(Link {
                            line: idx + 1,
                            target: target.to_owned(),
                        });
                    }
                    i = close + 1;
                    continue;
                }
            }
            i += 1;
        }
    }
    links
}

/// GitHub's heading-to-anchor slug: lowercase, alphanumerics kept,
/// spaces and hyphens become hyphens, everything else dropped.
pub fn slug(heading: &str) -> String {
    let mut out = String::with_capacity(heading.len());
    for ch in heading.trim().chars() {
        if ch.is_alphanumeric() || ch == '_' {
            out.extend(ch.to_lowercase());
        } else if ch == ' ' || ch == '-' {
            out.push('-');
        }
    }
    out
}

/// The anchor set of a markdown document: one slug per ATX heading
/// (`#`..`######`) outside fenced code blocks.
pub fn anchors(text: &str) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    let mut in_fence = false;
    for line in text.lines() {
        if line.trim_start().starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if in_fence {
            continue;
        }
        let trimmed = line.trim_start();
        let hashes = trimmed.chars().take_while(|&c| c == '#').count();
        if (1..=6).contains(&hashes) && trimmed.chars().nth(hashes) == Some(' ') {
            // Strip inline-code backticks so "`--exact`" slugs the way
            // GitHub renders it (backticks are not alphanumeric and
            // drop out in `slug` anyway; this keeps intent obvious).
            out.insert(slug(&trimmed[hashes + 1..].replace('`', "")));
        }
    }
    out
}

/// Whether a target points outside the filesystem (not checkable).
fn is_external(target: &str) -> bool {
    target.starts_with("http://") || target.starts_with("https://") || target.starts_with("mailto:")
}

/// Checks every inline link of `text` (the content of `file`) against
/// the filesystem, resolving relative targets from the file's parent
/// directory and fragments against the destination's heading slugs.
pub fn check_file(file: &Path, text: &str) -> Vec<DeadLink> {
    let mut dead = Vec::new();
    let dir = file.parent().unwrap_or_else(|| Path::new("."));
    for link in extract_links(text) {
        if is_external(&link.target) {
            continue;
        }
        let (path_part, fragment) = match link.target.split_once('#') {
            Some((p, f)) => (p, Some(f)),
            None => (link.target.as_str(), None),
        };
        let (dest, dest_text) = if path_part.is_empty() {
            // `#fragment`: an anchor in this file.
            (file.to_path_buf(), text.to_owned())
        } else {
            let dest = dir.join(path_part);
            if !dest.exists() {
                dead.push(DeadLink {
                    file: file.to_path_buf(),
                    line: link.line,
                    target: link.target.clone(),
                    reason: format!("{} does not exist", dest.display()),
                });
                continue;
            }
            if fragment.is_none() || dest.extension().is_none_or(|e| e != "md") {
                continue;
            }
            match std::fs::read_to_string(&dest) {
                Ok(dest_text) => (dest, dest_text),
                Err(e) => {
                    dead.push(DeadLink {
                        file: file.to_path_buf(),
                        line: link.line,
                        target: link.target.clone(),
                        reason: format!("{} unreadable: {e}", dest.display()),
                    });
                    continue;
                }
            }
        };
        if let Some(fragment) = fragment {
            if !anchors(&dest_text).contains(&fragment.to_ascii_lowercase()) {
                dead.push(DeadLink {
                    file: file.to_path_buf(),
                    line: link.line,
                    target: link.target.clone(),
                    reason: format!("no heading slugs to #{fragment} in {}", dest.display()),
                });
            }
        }
    }
    dead
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slugs_match_github_rules() {
        assert_eq!(slug("The recall@k guarantee"), "the-recallk-guarantee");
        assert_eq!(slug("Exact fallback"), "exact-fallback");
        assert_eq!(
            slug("benchdiff — the regression gate"),
            "benchdiff--the-regression-gate"
        );
        assert_eq!(slug("CSR layout"), "csr-layout");
        assert_eq!(slug("`--exact` flag"), "--exact-flag");
    }

    #[test]
    fn extracts_inline_links_and_skips_fences_and_code_spans() {
        let text = "\
see [arch](architecture.md#data-flow) and [ext](https://example.com)\n\
```text\nnot a [link](nope.md)\n```\n\
inline `[code](also-not.md)` then [real](kernels.md)\n";
        let links = extract_links(text);
        let targets: Vec<&str> = links.iter().map(|l| l.target.as_str()).collect();
        assert_eq!(
            targets,
            vec![
                "architecture.md#data-flow",
                "https://example.com",
                "kernels.md"
            ]
        );
        assert_eq!(links[0].line, 1);
        assert_eq!(links[2].line, 5);
    }

    #[test]
    fn anchor_set_covers_headings_outside_fences() {
        let text = "# Top\n## The recall@k guarantee\n```\n# not a heading\n```\n### Sub-section\n";
        let set = anchors(text);
        assert!(set.contains("top"));
        assert!(set.contains("the-recallk-guarantee"));
        assert!(set.contains("sub-section"));
        assert!(!set.contains("not-a-heading"));
    }

    #[test]
    fn dead_file_and_dead_anchor_are_reported() {
        let dir = std::env::temp_dir().join(format!("doccheck-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("real.md"), "# Real heading\n").unwrap();
        let source = dir.join("source.md");
        let text = "\
[ok](real.md#real-heading)\n\
[gone](missing.md)\n\
[bad anchor](real.md#nope)\n\
[self](#local)\n\n# Local\n";
        std::fs::write(&source, text).unwrap();
        let dead = check_file(&source, text);
        std::fs::remove_dir_all(&dir).ok();
        assert_eq!(dead.len(), 2, "{dead:?}");
        assert!(dead[0].target.contains("missing.md"));
        assert!(dead[1].target.contains("#nope"));
    }

    #[test]
    fn self_anchor_resolves_within_the_file() {
        let text = "[self](#local)\n\n# Local\n";
        let dead = check_file(Path::new("mem.md"), text);
        assert!(dead.is_empty(), "{dead:?}");
    }
}

//! `doccheck` — fail on dead links in the repo's markdown docs.
//!
//! ```text
//! doccheck                 # check README.md and docs/*.md
//! doccheck FILE...         # check the given markdown files
//! ```
//!
//! Resolves every inline `[text](target)` link: relative targets must
//! exist on disk, and `#fragment` targets must match a heading slug in
//! the destination file (`exrec_bench::doccheck` documents the exact
//! rules). External `http(s)`/`mailto` targets are skipped — CI runs
//! offline. Exits `0` when every link resolves, `1` otherwise, `2` on
//! usage errors, so CI's `doc-links` job gates on it directly.

use std::path::PathBuf;

use exrec_bench::doccheck;

/// The default file set: `README.md` plus every `docs/*.md`.
fn default_files() -> Vec<PathBuf> {
    let mut files = vec![PathBuf::from("README.md")];
    if let Ok(entries) = std::fs::read_dir("docs") {
        let mut docs: Vec<PathBuf> = entries
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|e| e == "md"))
            .collect();
        docs.sort();
        files.extend(docs);
    }
    files
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: doccheck [FILE...]   (default: README.md docs/*.md)");
        std::process::exit(2);
    }
    let files = if args.is_empty() {
        default_files()
    } else {
        args.iter().map(PathBuf::from).collect()
    };

    let mut dead = 0usize;
    let mut checked = 0usize;
    for file in &files {
        let text = match std::fs::read_to_string(file) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("[doccheck] {} unreadable: {e}", file.display());
                std::process::exit(2);
            }
        };
        checked += doccheck::extract_links(&text).len();
        for link in doccheck::check_file(file, &text) {
            eprintln!("[doccheck] {link}");
            dead += 1;
        }
    }
    println!(
        "doccheck: {} files, {checked} links, {dead} dead",
        files.len()
    );
    if dead > 0 {
        std::process::exit(1);
    }
}

//! `crash_smoke` — kill -9 the serving edge and prove nothing is lost.
//!
//! Drives the real `serve` binary (located next to this executable)
//! through the crash-recovery contract of the write-ahead log:
//!
//! 1. **Live:** start `serve --wal-path`, apply a deterministic set of
//!    journaled writes over HTTP (`/v1/rate`, `/v1/rate/batch`, a
//!    retract), capture recommendation bodies, then SIGKILL the
//!    process — no drain, no compaction, the WAL tail is all there is.
//! 2. **Replay:** restart over the same journal. The world must come
//!    back through WAL tail replay (`/debug/ingest` shows `replayed >
//!    0`, no snapshot) and serve byte-identical recommendation bodies.
//!    Then shut down *cleanly* (SIGTERM), which drains and compacts.
//! 3. **Control:** restart once more. This time the world loads from
//!    the compaction snapshot (`snapshot_loaded`, `replayed == 0`) —
//!    the clean-shutdown control — and must again serve byte-identical
//!    bodies.
//!
//! Crash-replay ≡ live ≡ clean-shutdown restart, checked on raw bytes.
//! Exit code 0 only if every step holds. CI runs this as the
//! crash-recovery gate (see `.github/workflows/ci.yml`).

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::process::{Child, Command, Stdio};
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// The deterministic world every `serve` child regenerates; small
/// enough that three startups stay fast in CI.
const WORLD: &[&str] = &["--users", "300", "--items", "120", "--density", "0.2"];

/// Recommendation probe compared byte-for-byte across lives.
const PROBE: &str = r#"{"users": [0, 1, 2, 3, 5, 8], "n": 10}"#;

fn fail(msg: &str) -> ! {
    eprintln!("[crash_smoke] FAIL: {msg}");
    std::process::exit(1);
}

/// A `serve` child plus the address parsed from its stderr banner.
struct Server {
    child: Child,
    addr: SocketAddr,
}

/// Spawns `serve` against `wal` and waits for its listening banner.
/// A thread keeps draining stderr afterwards so the child never blocks
/// on a full pipe (sampled traces stream there).
fn spawn_serve(wal: &std::path::Path) -> Server {
    let serve = std::env::current_exe()
        .expect("own path")
        .with_file_name("serve");
    let mut child = Command::new(&serve)
        .args(["--port", "0", "--workers", "2", "--debug-endpoints"])
        .args(WORLD)
        .arg("--wal-path")
        .arg(wal)
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap_or_else(|e| fail(&format!("spawn {}: {e}", serve.display())));
    let stderr = child.stderr.take().expect("piped stderr");
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        let mut reader = BufReader::new(stderr);
        let mut line = String::new();
        while reader.read_line(&mut line).unwrap_or(0) > 0 {
            if let Some(rest) = line.trim_end().strip_prefix("[serve] listening on ") {
                if let Some(addr) = rest.split_whitespace().next() {
                    let _ = tx.send(addr.to_owned());
                }
            }
            line.clear();
        }
    });
    let addr = rx
        .recv_timeout(Duration::from_secs(120))
        .unwrap_or_else(|_| fail("serve never printed its listening banner"));
    let addr = addr
        .parse()
        .unwrap_or_else(|_| fail(&format!("unparseable listen address {addr:?}")));
    Server { child, addr }
}

/// One request on a fresh connection; returns `(status, body)`.
fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let stream = TcpStream::connect(addr).unwrap_or_else(|e| fail(&format!("connect: {e}")));
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .expect("read timeout");
    let mut writer = stream.try_clone().expect("clone stream");
    writer
        .write_all(
            format!(
                "{method} {path} HTTP/1.1\r\nhost: crash-smoke\r\nconnection: close\r\n\
                 content-length: {}\r\n\r\n{body}",
                body.len()
            )
            .as_bytes(),
        )
        .unwrap_or_else(|e| fail(&format!("send: {e}")));
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader
        .read_line(&mut status_line)
        .unwrap_or_else(|e| fail(&format!("status line: {e}")));
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| fail(&format!("bad status line {status_line:?}")));
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line).unwrap_or(0) == 0 {
            fail("connection closed mid-headers");
        }
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().unwrap_or(0);
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader
        .read_exact(&mut body)
        .unwrap_or_else(|e| fail(&format!("body: {e}")));
    (status, String::from_utf8(body).expect("utf-8 body"))
}

fn post_ok(addr: SocketAddr, path: &str, body: &str) -> String {
    let (status, response) = request(addr, "POST", path, body);
    if status != 200 {
        fail(&format!("POST {path} -> {status}: {response}"));
    }
    response
}

/// `/debug/ingest` as a JSON value.
fn debug_ingest(addr: SocketAddr) -> serde_json::Value {
    let (status, body) = request(addr, "GET", "/debug/ingest", "");
    if status != 200 {
        fail(&format!("GET /debug/ingest -> {status}"));
    }
    serde_json::from_str(&body).unwrap_or_else(|e| fail(&format!("/debug/ingest parse: {e}")))
}

/// SIGTERM the child and wait for a clean exit (the drain compacts).
fn terminate(mut server: Server) {
    let pid = server.child.id().to_string();
    let status = Command::new("kill")
        .arg(&pid)
        .status()
        .unwrap_or_else(|e| fail(&format!("kill {pid}: {e}")));
    if !status.success() {
        fail(&format!("kill {pid} exited {status}"));
    }
    let exit = server
        .child
        .wait()
        .unwrap_or_else(|e| fail(&format!("wait: {e}")));
    if !exit.success() {
        fail(&format!("serve exited {exit} after SIGTERM"));
    }
}

fn main() {
    let started = Instant::now();
    let dir = std::env::temp_dir().join(format!("exrec-crash-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let wal = dir.join("serve.wal");

    // Life 1: journaled writes, then SIGKILL — the tail is everything.
    eprintln!("[crash_smoke] life 1: starting serve, applying writes");
    let mut server = spawn_serve(&wal);
    for k in 0u32..32 {
        let body = format!(
            r#"{{"user": {}, "item": {}, "value": {:.1}}}"#,
            (k * 7) % 300,
            (k * 11) % 120,
            1.0 + (k % 5) as f64,
        );
        post_ok(server.addr, "/v1/rate", &body);
    }
    post_ok(
        server.addr,
        "/v1/rate/batch",
        r#"{"ops": [
            {"user": 5, "item": 9, "value": 5.0},
            {"user": 8, "item": 4, "value": 2.0},
            {"user": 13, "item": 21, "value": 3.0}
        ]}"#,
    );
    // Retract one of the writes above, so replay must also reproduce a
    // removal, not just upserts.
    post_ok(server.addr, "/v1/rate", r#"{"user": 5, "item": 9}"#);
    let live = post_ok(server.addr, "/v1/recommend", PROBE);
    eprintln!("[crash_smoke] life 1: SIGKILL (no drain, no compaction)");
    server.child.kill().expect("SIGKILL serve");
    let _ = server.child.wait();
    if exrec_data::wal::snapshot_path(&wal).exists() {
        fail("a SIGKILLed server must not have compacted");
    }

    // Life 2: recover from the WAL tail alone; then shut down cleanly.
    eprintln!("[crash_smoke] life 2: restarting over the WAL tail");
    let server = spawn_serve(&wal);
    let ingest = debug_ingest(server.addr);
    if ingest.get("snapshot_loaded").and_then(|v| v.as_bool()) != Some(false) {
        fail("life 2 found a snapshot that should not exist");
    }
    let replayed = ingest
        .pointer("/wal/replayed")
        .and_then(|v| v.as_u64())
        .unwrap_or(0);
    if replayed != 34 {
        fail(&format!("life 2 replayed {replayed} records, wanted 34"));
    }
    let recovered = post_ok(server.addr, "/v1/recommend", PROBE);
    if recovered != live {
        fail("crash-replay served different recommendations than the live world");
    }
    eprintln!("[crash_smoke] life 2: identical after replaying {replayed} records; SIGTERM");
    terminate(server);
    if !exrec_data::wal::snapshot_path(&wal).exists() {
        fail("a clean shutdown must compact the journal");
    }

    // Life 3: the clean-shutdown control — snapshot, empty tail.
    eprintln!("[crash_smoke] life 3: restarting from the compaction snapshot");
    let server = spawn_serve(&wal);
    let ingest = debug_ingest(server.addr);
    if ingest.get("snapshot_loaded").and_then(|v| v.as_bool()) != Some(true) {
        fail("life 3 must warm-start from the compaction snapshot");
    }
    if ingest.pointer("/wal/replayed").and_then(|v| v.as_u64()) != Some(0) {
        fail("life 3 must find an empty tail after compaction");
    }
    let control = post_ok(server.addr, "/v1/recommend", PROBE);
    if control != live {
        fail("clean-shutdown restart served different recommendations than the live world");
    }
    terminate(server);

    let _ = std::fs::remove_dir_all(&dir);
    eprintln!(
        "[crash_smoke] OK: crash-replay == live == clean-shutdown control ({} bytes probed, {:.1}s)",
        live.len(),
        started.elapsed().as_secs_f64()
    );
}

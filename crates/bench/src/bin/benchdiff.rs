//! `benchdiff` — compare two benchmark reports and gate on regression.
//!
//! ```text
//! benchdiff OLD.json NEW.json [--threshold PCT]
//! ```
//!
//! Reads two reports written by `serve_bench` or `loadgen` (both stamp
//! `schema_version` and a `meta` block) and compares every shared
//! performance metric: throughput (`requests_per_sec`, `speedup_*`)
//! must not drop, latency (`latency_ms.*`) must not rise, by more than
//! `--threshold` percent (default 10).
//!
//! Exit codes:
//!
//! * `0` — every shared metric within threshold;
//! * `1` — at least one regression;
//! * `2` — usage error, unreadable report, or incompatible reports
//!   (schema/benchmark/world/thread mismatch): refusing to compare is
//!   not a pass.

use exrec_bench::benchdiff::{compare, Direction};
use serde_json::Value;

fn usage() -> ! {
    eprintln!("usage: benchdiff OLD.json NEW.json [--threshold PCT]");
    std::process::exit(2);
}

fn load(path: &str) -> Value {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("[benchdiff] cannot read {path}: {e}");
        std::process::exit(2);
    });
    serde_json::from_str(&text).unwrap_or_else(|e| {
        eprintln!("[benchdiff] {path} is not valid JSON: {e}");
        std::process::exit(2);
    })
}

fn main() {
    let mut paths: Vec<String> = Vec::new();
    let mut threshold = 10.0f64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--threshold" => {
                threshold = match args.next().and_then(|v| v.parse().ok()) {
                    Some(v) => v,
                    None => {
                        eprintln!("[benchdiff] --threshold needs a number");
                        usage();
                    }
                }
            }
            "--help" | "-h" => usage(),
            other if other.starts_with("--") => {
                eprintln!("[benchdiff] unknown flag {other:?}");
                usage();
            }
            path => paths.push(path.to_owned()),
        }
    }
    let [old_path, new_path] = paths.as_slice() else {
        usage();
    };

    let old = load(old_path);
    let new = load(new_path);
    let comparison = match compare(&old, &new, threshold) {
        Ok(c) => c,
        Err(reason) => {
            eprintln!("[benchdiff] refusing to compare: {reason}");
            std::process::exit(2);
        }
    };

    println!("benchdiff {old_path} -> {new_path} (threshold {threshold}%)");
    for delta in &comparison.deltas {
        let arrow = match delta.direction {
            Direction::HigherBetter => "higher-better",
            Direction::LowerBetter => "lower-better ",
        };
        println!(
            "  {:<64} {:>12.3} -> {:>12.3}  {:>+7.1}%  [{}]{}",
            delta.path,
            delta.old,
            delta.new,
            delta.change_pct,
            arrow,
            if delta.regressed { "  REGRESSED" } else { "" }
        );
    }
    for path in &comparison.only_old {
        println!("  {path:<64} only in baseline (skipped)");
    }
    for path in &comparison.only_new {
        println!("  {path:<64} only in candidate (skipped)");
    }

    let regressions = comparison.regressions();
    if comparison.deltas.is_empty() {
        eprintln!("[benchdiff] no shared performance metrics found");
        std::process::exit(2);
    }
    if regressions.is_empty() {
        println!(
            "benchdiff OK: {} metrics within {threshold}%",
            comparison.deltas.len()
        );
    } else {
        eprintln!(
            "[benchdiff] FAIL: {} of {} metrics regressed past {threshold}%",
            regressions.len(),
            comparison.deltas.len()
        );
        std::process::exit(1);
    }
}

//! `serve_bench` — the serving-path throughput baseline.
//!
//! Measures the same top-k recommendation workload five ways on
//! synthetic catalogs, and records the repo's performance trajectory
//! point (`BENCH_serve.json`, see `docs/benchmarking.md`):
//!
//! 1. **sequential** — one `Recommender::recommend` call per user on one
//!    thread, similarities recomputed from scratch (the pre-batch
//!    serving path);
//! 2. **batch** — the same model fanned out over the work-stealing
//!    [`BatchPool`];
//! 3. **batch_cached** — the batch path with a sharded
//!    [`SimilarityCache`] attached, so each user-pair similarity is
//!    computed once per matrix revision;
//! 4. **scan.exact** — the tiled CSR kernel in exact mode (one thread,
//!    no similarity cache): the *uncached* per-request path, timed per
//!    request;
//! 5. **scan.pruned** — the kernel behind the cluster-pruned candidate
//!    index, also uncached and timed per request, plus a neighbour
//!    recall@k measurement against the exact scan
//!    (`docs/kernels.md#the-recallk-guarantee`).
//!
//! Every mode serves the identical user list. The harness asserts that
//! batch, batch_cached and scan.exact results are **bit-identical** to
//! the sequential reference, and that scan.pruned neighbour recall@k
//! meets the floor (0.99 full, 0.95 quick), before reporting numbers —
//! a speedup that changes answers is a bug, not a result.
//!
//! ```text
//! serve_bench                  # full run: 10k- and 100k-user workloads
//! serve_bench --quick          # CI smoke: small 10k-user workload only
//! serve_bench --threads 8      # worker threads (default: all cores)
//! serve_bench --out PATH       # report path (default: BENCH_serve.json)
//! ```
//!
//! Exit code is non-zero if any mode disagrees with the sequential
//! reference or pruned recall drops below the floor, so CI's smoke run
//! doubles as a determinism *and* accuracy check.

use std::sync::Arc;
use std::time::Instant;

use exrec_algo::batch::BatchPool;
use exrec_algo::cache::{CacheConfig, SimilarityCache};
use exrec_algo::kernel::{overlap_candidates, scan_similarities, union_sorted, SimParams};
use exrec_algo::neighbors::top_k_stream;
use exrec_algo::user_knn::UserKnnConfig;
use exrec_algo::{
    Ctx, IndexConfig, KernelConfig, Recommender, ScanEngine, ScanMode, Scored, UserKnn,
};
use exrec_data::synth::{movies, WorldConfig};
use exrec_obs::Telemetry;
use exrec_types::UserId;
use serde::Serialize;

/// One synthetic serving workload.
struct Workload {
    name: &'static str,
    n_users: usize,
    n_items: usize,
    density: f64,
    /// Users served per mode.
    requests: usize,
    /// Top-k size per request.
    k: usize,
}

const FULL: &[Workload] = &[
    Workload {
        name: "synthetic-10k",
        n_users: 10_000,
        n_items: 400,
        density: 0.05,
        requests: 24,
        k: 10,
    },
    Workload {
        name: "synthetic-100k",
        n_users: 100_000,
        n_items: 500,
        density: 0.1,
        requests: 8,
        k: 10,
    },
];

const QUICK: &[Workload] = &[Workload {
    name: "synthetic-10k-quick",
    n_users: 10_000,
    n_items: 400,
    density: 0.05,
    requests: 8,
    k: 10,
}];

#[derive(Serialize)]
struct CacheReport {
    hits: u64,
    misses: u64,
    evictions: u64,
    invalidations: u64,
    entries: usize,
    hit_rate: f64,
}

/// Whether a mode had a similarity cache, and whether traffic actually
/// reached it. A configured-but-cold cache used to serialise as a bare
/// `null`, indistinguishable from "no cache at all"; these two flags
/// keep the distinction on the wire.
#[derive(Serialize)]
struct CacheUsage {
    /// A cache was attached to the mode's model.
    configured: bool,
    /// At least one lookup reached it (hits + misses moved).
    used: bool,
    /// Counters; `null` only when no cache was configured.
    stats: Option<CacheReport>,
}

impl CacheUsage {
    fn unconfigured() -> Self {
        CacheUsage {
            configured: false,
            used: false,
            stats: None,
        }
    }
}

#[derive(Serialize)]
struct ModeReport {
    requests: usize,
    threads: usize,
    total_ms: f64,
    requests_per_sec: f64,
    /// Per-user results equal the sequential reference, bit for bit.
    identical_to_sequential: bool,
    /// Cache configuration and counters for this mode.
    cache: CacheUsage,
}

/// Per-request latency digest over one scan mode's timed requests.
#[derive(Serialize)]
struct LatencyMs {
    p50: f64,
    p95: f64,
    p99: f64,
    mean: f64,
    max: f64,
}

impl LatencyMs {
    /// Nearest-rank percentiles over the raw per-request samples.
    fn from_samples(samples: &mut [f64]) -> LatencyMs {
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let pick = |q: f64| -> f64 {
            if samples.is_empty() {
                return 0.0;
            }
            let rank = ((q * samples.len() as f64).ceil() as usize).clamp(1, samples.len());
            samples[rank - 1]
        };
        LatencyMs {
            p50: pick(0.50),
            p95: pick(0.95),
            p99: pick(0.99),
            mean: samples.iter().sum::<f64>() / samples.len().max(1) as f64,
            max: samples.last().copied().unwrap_or(0.0),
        }
    }
}

/// One kernel-scan mode: single-threaded, uncached, timed per request.
#[derive(Serialize)]
struct ScanModeReport {
    requests: usize,
    total_ms: f64,
    requests_per_sec: f64,
    latency_ms: LatencyMs,
    /// Per-user results equal the sequential reference, bit for bit
    /// (required for exact; informational for pruned).
    identical_to_sequential: bool,
}

/// The kernel/index section of a workload report
/// (`docs/kernels.md`): the uncached per-request serving path.
#[derive(Serialize)]
struct ScanSection {
    /// Tile size the startup autotuner chose.
    tile_users: Option<usize>,
    /// Candidate-index shape (centroids, probes).
    index_centroids: usize,
    index_probes: usize,
    /// Fraction of the user dimension the last pruned scan skipped.
    prune_ratio: f64,
    /// Pruned requests that fell back to the exact scan.
    exact_fallbacks: u64,
    /// Probe users behind `recall_at_k`.
    recall_probes: usize,
    /// Neighbourhood size behind `recall_at_k`.
    recall_k: usize,
    /// Mean neighbour recall@k of the pruned scan vs the exact scan
    /// (`docs/kernels.md#the-recallk-guarantee`); gated by `benchdiff`
    /// as higher-better.
    recall_at_k: f64,
    exact: ScanModeReport,
    pruned: ScanModeReport,
    speedup_exact_vs_sequential: f64,
    speedup_pruned_vs_sequential: f64,
}

#[derive(Serialize)]
struct WorkloadReport {
    name: &'static str,
    n_users: usize,
    n_items: usize,
    n_ratings: usize,
    k: usize,
    sequential: ModeReport,
    batch: ModeReport,
    batch_cached: ModeReport,
    scan: ScanSection,
    speedup_batch_vs_sequential: f64,
    speedup_batch_cached_vs_sequential: f64,
}

#[derive(Serialize)]
struct BenchReport {
    /// Report-layout version `benchdiff` checks before comparing.
    schema_version: u32,
    benchmark: &'static str,
    quick: bool,
    threads: usize,
    /// Build/world stamp (`benchdiff` refuses cross-world diffs).
    meta: exrec_bench::benchdiff::RunMeta,
    workloads: Vec<WorkloadReport>,
}

/// Times `run` and folds the outcome into a [`ModeReport`].
fn measure(
    requests: usize,
    threads: usize,
    reference: Option<&[Vec<Scored>]>,
    run: impl FnOnce() -> Vec<Vec<Scored>>,
) -> (ModeReport, Vec<Vec<Scored>>) {
    let started = Instant::now();
    let results = run();
    let elapsed = started.elapsed();
    let total_ms = elapsed.as_secs_f64() * 1e3;
    let report = ModeReport {
        requests,
        threads,
        total_ms,
        requests_per_sec: requests as f64 / elapsed.as_secs_f64(),
        identical_to_sequential: reference.map(|r| r == results.as_slice()).unwrap_or(true),
        cache: CacheUsage::unconfigured(),
    };
    (report, results)
}

/// Times one scan-mode model per request (one thread, no similarity
/// cache — the steady-state uncached path). The engine is warmed first
/// so the one-off CSR build / autotune / index build lands outside the
/// timed loop, as it does at server startup.
fn measure_scan(
    model: &UserKnn,
    ctx: &Ctx<'_>,
    users: &[UserId],
    k: usize,
    reference: &[Vec<Scored>],
) -> ScanModeReport {
    let _ = model.recommend(ctx, users[0], k);
    let mut samples = Vec::with_capacity(users.len());
    let mut results = Vec::with_capacity(users.len());
    let started = Instant::now();
    for &user in users {
        let at = Instant::now();
        results.push(model.recommend(ctx, user, k));
        samples.push(at.elapsed().as_secs_f64() * 1e3);
    }
    let elapsed = started.elapsed();
    ScanModeReport {
        requests: users.len(),
        total_ms: elapsed.as_secs_f64() * 1e3,
        requests_per_sec: users.len() as f64 / elapsed.as_secs_f64(),
        latency_ms: LatencyMs::from_samples(&mut samples),
        identical_to_sequential: reference == results.as_slice(),
    }
}

/// Mean neighbour recall@k of the pruned candidate set against the
/// exact scan, over `probes` users spread across the id space — the
/// measurement behind the report's `recall_at_k` leaf. Probe users
/// whose candidate set is below the fallback floor count as 1.0: the
/// serving path answers those exactly.
fn neighbor_recall(
    engine: &ScanEngine,
    ctx: &Ctx<'_>,
    params: &SimParams,
    knn: &UserKnnConfig,
    probes: usize,
) -> (f64, usize) {
    let csr = engine.csr(ctx.ratings, params);
    let index = engine.index(&csr);
    let tile = engine.tile();
    let budget = engine.index_config().resolve_budget(csr.n_users());
    let floor = engine.fallback_floor(knn.k);
    let probes = probes.min(csr.n_users()).max(1);
    let stride = (csr.n_users() / probes).max(1);

    let mut exact_sims = Vec::new();
    let mut pruned_sims = Vec::new();
    let mut total = 0.0;
    for p in 0..probes {
        let user = UserId::new(((p * stride) % csr.n_users()) as u32);
        let top = |sims: &[f64]| -> Vec<usize> {
            top_k_stream(
                (0..csr.n_users()).filter(|&v| v != user.index() && sims[v] > knn.min_similarity),
                knn.k,
                |&v| sims[v],
            )
        };
        scan_similarities(&csr, params, user, None, tile, &mut exact_sims);
        let exact_top = top(&exact_sims);
        if exact_top.is_empty() {
            total += 1.0;
            continue;
        }
        let candidates = union_sorted(
            &index.candidates(&csr, user.raw()),
            &overlap_candidates(&csr, user, budget),
        );
        if candidates.len() < floor {
            total += 1.0;
            continue;
        }
        scan_similarities(
            &csr,
            params,
            user,
            Some(&candidates),
            tile,
            &mut pruned_sims,
        );
        let pruned_top = top(&pruned_sims);
        let hit = exact_top.iter().filter(|v| pruned_top.contains(v)).count();
        total += hit as f64 / exact_top.len() as f64;
    }
    (total / probes as f64, probes)
}

fn run_workload(w: &Workload, threads: usize, telemetry: &Telemetry) -> WorkloadReport {
    eprintln!(
        "[serve_bench] generating {}: {} users x {} items @ density {}",
        w.name, w.n_users, w.n_items, w.density
    );
    let world = movies::generate(&WorldConfig {
        n_users: w.n_users,
        n_items: w.n_items,
        density: w.density,
        seed: 0xBE_AC,
        ..WorldConfig::default()
    });
    let ctx = Ctx::new(&world.ratings, &world.catalog);
    eprintln!(
        "[serve_bench]   generated {} ratings (revision {})",
        world.ratings.n_ratings(),
        world.ratings.revision()
    );

    // Deterministic request mix: users spread evenly over the id space.
    let stride = (w.n_users / w.requests).max(1);
    let users: Vec<UserId> = (0..w.requests)
        .map(|r| UserId::new(((r * stride) % w.n_users) as u32))
        .collect();

    let uncached = UserKnn::default();

    eprintln!("[serve_bench]   mode 1/5: sequential (uncached, 1 thread)");
    let (sequential, reference) = measure(users.len(), 1, None, || {
        uncached.recommend_batch(&ctx, &users, w.k)
    });

    eprintln!("[serve_bench]   mode 2/5: batch ({threads} threads, uncached)");
    let pool = BatchPool::new(threads).with_telemetry(telemetry.clone());
    let (batch, _) = measure(users.len(), threads, Some(&reference), || {
        pool.recommend_batch(&uncached, &ctx, &users, w.k)
    });

    eprintln!("[serve_bench]   mode 3/5: batch + sharded similarity cache");
    let cache = Arc::new(SimilarityCache::instrumented(
        CacheConfig {
            shards: 64,
            capacity_per_shard: 32_768,
        },
        telemetry.metrics(),
        w.name,
    ));
    let cached_model = UserKnn::default().with_cache(Arc::clone(&cache));
    let (mut batch_cached, _) = measure(users.len(), threads, Some(&reference), || {
        pool.recommend_batch(&cached_model, &ctx, &users, w.k)
    });
    let stats = cache.stats();
    batch_cached.cache = CacheUsage {
        configured: true,
        used: stats.hits + stats.misses > 0,
        stats: Some(CacheReport {
            hits: stats.hits,
            misses: stats.misses,
            evictions: stats.evictions,
            invalidations: stats.invalidations,
            entries: stats.entries,
            hit_rate: stats.hit_rate(),
        }),
    };

    eprintln!("[serve_bench]   mode 4/5: exact tiled scan (uncached, 1 thread)");
    let exact_engine = Arc::new(ScanEngine::new(
        KernelConfig::default(),
        IndexConfig::default(),
    ));
    let exact_model = UserKnn::default().with_engine(Arc::clone(&exact_engine), ScanMode::Exact);
    let scan_exact = measure_scan(&exact_model, &ctx, &users, w.k, &reference);

    eprintln!("[serve_bench]   mode 5/5: pruned candidate scan (uncached, 1 thread)");
    let pruned_engine = Arc::new(ScanEngine::new(
        KernelConfig::default(),
        IndexConfig::default(),
    ));
    let pruned_model = UserKnn::default().with_engine(Arc::clone(&pruned_engine), ScanMode::Pruned);
    let scan_pruned = measure_scan(&pruned_model, &ctx, &users, w.k, &reference);

    let knn = UserKnnConfig::default();
    let params = SimParams {
        similarity: knn.similarity,
        min_overlap: knn.min_overlap,
        significance: knn.significance,
    };
    let (recall_at_k, recall_probes) = neighbor_recall(&pruned_engine, &ctx, &params, &knn, 64);
    let stats = pruned_engine.stats();
    let (index_centroids, index_probes) = stats.index_shape.unwrap_or((0, 0));
    let scan = ScanSection {
        tile_users: stats.tile_users,
        index_centroids,
        index_probes,
        prune_ratio: stats.last_prune_ratio,
        exact_fallbacks: stats.exact_fallbacks,
        recall_probes,
        recall_k: knn.k,
        recall_at_k,
        speedup_exact_vs_sequential: scan_exact.requests_per_sec / sequential.requests_per_sec,
        speedup_pruned_vs_sequential: scan_pruned.requests_per_sec / sequential.requests_per_sec,
        exact: scan_exact,
        pruned: scan_pruned,
    };

    WorkloadReport {
        name: w.name,
        n_users: w.n_users,
        n_items: w.n_items,
        n_ratings: world.ratings.n_ratings(),
        k: w.k,
        speedup_batch_vs_sequential: batch.requests_per_sec / sequential.requests_per_sec,
        speedup_batch_cached_vs_sequential: batch_cached.requests_per_sec
            / sequential.requests_per_sec,
        sequential,
        batch,
        batch_cached,
        scan,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut out = "BENCH_serve.json".to_owned();
    let mut threads = 0usize;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => {
                quick = true;
                i += 1;
            }
            "--out" => {
                if i + 1 >= args.len() {
                    eprintln!("--out requires a path");
                    std::process::exit(2);
                }
                out = args[i + 1].clone();
                i += 2;
            }
            "--threads" => {
                let parsed = args.get(i + 1).and_then(|a| a.parse::<usize>().ok());
                match parsed {
                    Some(n) => threads = n,
                    None => {
                        eprintln!("--threads requires a number");
                        std::process::exit(2);
                    }
                }
                i += 2;
            }
            other => {
                eprintln!("unknown argument {other}; usage: serve_bench [--quick] [--threads N] [--out PATH]");
                std::process::exit(2);
            }
        }
    }
    let threads = if threads == 0 {
        exrec_algo::batch::default_threads()
    } else {
        threads
    };

    let telemetry = Telemetry::default();
    let workloads: Vec<WorkloadReport> = if quick { QUICK } else { FULL }
        .iter()
        .map(|w| run_workload(w, threads, &telemetry))
        .collect();

    // Pruned neighbour recall must hold the documented floor
    // (`docs/kernels.md#the-recallk-guarantee`); the quick smoke runs a
    // smaller world with a thinner margin.
    let recall_floor = if quick { 0.95 } else { 0.99 };
    let mut ok = true;
    for w in &workloads {
        println!(
            "{:<20} seq {:>8.2} req/s | batch {:>8.2} req/s ({:.2}x) | batch+cache {:>8.2} req/s ({:.2}x, hit rate {:.1}%)",
            w.name,
            w.sequential.requests_per_sec,
            w.batch.requests_per_sec,
            w.speedup_batch_vs_sequential,
            w.batch_cached.requests_per_sec,
            w.speedup_batch_cached_vs_sequential,
            w.batch_cached
                .cache
                .stats
                .as_ref()
                .map(|c| c.hit_rate * 100.0)
                .unwrap_or(0.0),
        );
        println!(
            "{:<20} scan exact {:>8.2} req/s p50 {:.2}ms | pruned {:>8.2} req/s p50 {:.2}ms (prune {:.0}%, recall@{} {:.4})",
            "",
            w.scan.exact.requests_per_sec,
            w.scan.exact.latency_ms.p50,
            w.scan.pruned.requests_per_sec,
            w.scan.pruned.latency_ms.p50,
            w.scan.prune_ratio * 100.0,
            w.scan.recall_k,
            w.scan.recall_at_k,
        );
        if !w.batch.identical_to_sequential
            || !w.batch_cached.identical_to_sequential
            || !w.scan.exact.identical_to_sequential
        {
            eprintln!(
                "[serve_bench] ERROR: {} results diverged from the sequential reference",
                w.name
            );
            ok = false;
        }
        if w.scan.recall_at_k < recall_floor {
            eprintln!(
                "[serve_bench] ERROR: {} pruned neighbour recall@{} = {:.4} below the {recall_floor} floor",
                w.name, w.scan.recall_k, w.scan.recall_at_k
            );
            ok = false;
        }
    }

    let world = workloads
        .iter()
        .map(|w| w.name)
        .collect::<Vec<_>>()
        .join("+");
    let report = BenchReport {
        schema_version: exrec_bench::benchdiff::SCHEMA_VERSION,
        benchmark: "serve_bench",
        quick,
        threads,
        meta: exrec_bench::benchdiff::RunMeta::capture(world, threads),
        workloads,
    };
    let json = serde_json::to_string_pretty(&report).expect("serialize bench report");
    std::fs::write(&out, json + "\n").expect("write bench report");
    println!("wrote {out}");

    let metrics = telemetry.report();
    if !metrics.is_empty() {
        println!("{}", metrics.render_ascii());
    }

    if !ok {
        std::process::exit(1);
    }
}

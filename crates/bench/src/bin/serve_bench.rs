//! `serve_bench` — the serving-path throughput baseline.
//!
//! Measures the same top-k recommendation workload three ways on
//! synthetic catalogs, and records the repo's first performance
//! trajectory point (`BENCH_serve.json`, see `docs/benchmarking.md`):
//!
//! 1. **sequential** — one `Recommender::recommend` call per user on one
//!    thread, similarities recomputed from scratch (the pre-batch
//!    serving path);
//! 2. **batch** — the same model fanned out over the work-stealing
//!    [`BatchPool`];
//! 3. **batch_cached** — the batch path with a sharded
//!    [`SimilarityCache`] attached, so each user-pair similarity is
//!    computed once per matrix revision.
//!
//! Every mode serves the identical user list and the harness asserts the
//! per-user results are **bit-identical** across modes before reporting
//! throughput — a speedup that changes answers is a bug, not a result.
//!
//! ```text
//! serve_bench                  # full run: 10k- and 100k-user workloads
//! serve_bench --quick          # CI smoke: small 10k-user workload only
//! serve_bench --threads 8      # worker threads (default: all cores)
//! serve_bench --out PATH       # report path (default: BENCH_serve.json)
//! ```
//!
//! Exit code is non-zero if any mode disagrees with the sequential
//! reference, so CI's smoke run doubles as a determinism check.

use std::sync::Arc;
use std::time::Instant;

use exrec_algo::batch::BatchPool;
use exrec_algo::cache::{CacheConfig, SimilarityCache};
use exrec_algo::{Ctx, Recommender, Scored, UserKnn};
use exrec_data::synth::{movies, WorldConfig};
use exrec_obs::Telemetry;
use exrec_types::UserId;
use serde::Serialize;

/// One synthetic serving workload.
struct Workload {
    name: &'static str,
    n_users: usize,
    n_items: usize,
    density: f64,
    /// Users served per mode.
    requests: usize,
    /// Top-k size per request.
    k: usize,
}

const FULL: &[Workload] = &[
    Workload {
        name: "synthetic-10k",
        n_users: 10_000,
        n_items: 400,
        density: 0.05,
        requests: 24,
        k: 10,
    },
    Workload {
        name: "synthetic-100k",
        n_users: 100_000,
        n_items: 500,
        density: 0.1,
        requests: 8,
        k: 10,
    },
];

const QUICK: &[Workload] = &[Workload {
    name: "synthetic-10k-quick",
    n_users: 10_000,
    n_items: 400,
    density: 0.05,
    requests: 8,
    k: 10,
}];

#[derive(Serialize)]
struct CacheReport {
    hits: u64,
    misses: u64,
    evictions: u64,
    invalidations: u64,
    entries: usize,
    hit_rate: f64,
}

#[derive(Serialize)]
struct ModeReport {
    requests: usize,
    threads: usize,
    total_ms: f64,
    requests_per_sec: f64,
    /// Per-user results equal the sequential reference, bit for bit.
    identical_to_sequential: bool,
    /// Cache counters; `null` for the uncached modes.
    cache: Option<CacheReport>,
}

#[derive(Serialize)]
struct WorkloadReport {
    name: &'static str,
    n_users: usize,
    n_items: usize,
    n_ratings: usize,
    k: usize,
    sequential: ModeReport,
    batch: ModeReport,
    batch_cached: ModeReport,
    speedup_batch_vs_sequential: f64,
    speedup_batch_cached_vs_sequential: f64,
}

#[derive(Serialize)]
struct BenchReport {
    /// Report-layout version `benchdiff` checks before comparing.
    schema_version: u32,
    benchmark: &'static str,
    quick: bool,
    threads: usize,
    /// Build/world stamp (`benchdiff` refuses cross-world diffs).
    meta: exrec_bench::benchdiff::RunMeta,
    workloads: Vec<WorkloadReport>,
}

/// Times `run` and folds the outcome into a [`ModeReport`].
fn measure(
    requests: usize,
    threads: usize,
    reference: Option<&[Vec<Scored>]>,
    run: impl FnOnce() -> Vec<Vec<Scored>>,
) -> (ModeReport, Vec<Vec<Scored>>) {
    let started = Instant::now();
    let results = run();
    let elapsed = started.elapsed();
    let total_ms = elapsed.as_secs_f64() * 1e3;
    let report = ModeReport {
        requests,
        threads,
        total_ms,
        requests_per_sec: requests as f64 / elapsed.as_secs_f64(),
        identical_to_sequential: reference.map(|r| r == results.as_slice()).unwrap_or(true),
        cache: None,
    };
    (report, results)
}

fn run_workload(w: &Workload, threads: usize, telemetry: &Telemetry) -> WorkloadReport {
    eprintln!(
        "[serve_bench] generating {}: {} users x {} items @ density {}",
        w.name, w.n_users, w.n_items, w.density
    );
    let world = movies::generate(&WorldConfig {
        n_users: w.n_users,
        n_items: w.n_items,
        density: w.density,
        seed: 0xBE_AC,
        ..WorldConfig::default()
    });
    let ctx = Ctx::new(&world.ratings, &world.catalog);
    eprintln!(
        "[serve_bench]   generated {} ratings (revision {})",
        world.ratings.n_ratings(),
        world.ratings.revision()
    );

    // Deterministic request mix: users spread evenly over the id space.
    let stride = (w.n_users / w.requests).max(1);
    let users: Vec<UserId> = (0..w.requests)
        .map(|r| UserId::new(((r * stride) % w.n_users) as u32))
        .collect();

    let uncached = UserKnn::default();

    eprintln!("[serve_bench]   mode 1/3: sequential (uncached, 1 thread)");
    let (sequential, reference) = measure(users.len(), 1, None, || {
        uncached.recommend_batch(&ctx, &users, w.k)
    });

    eprintln!("[serve_bench]   mode 2/3: batch ({threads} threads, uncached)");
    let pool = BatchPool::new(threads).with_telemetry(telemetry.clone());
    let (batch, _) = measure(users.len(), threads, Some(&reference), || {
        pool.recommend_batch(&uncached, &ctx, &users, w.k)
    });

    eprintln!("[serve_bench]   mode 3/3: batch + sharded similarity cache");
    let cache = Arc::new(SimilarityCache::instrumented(
        CacheConfig {
            shards: 64,
            capacity_per_shard: 32_768,
        },
        telemetry.metrics(),
        w.name,
    ));
    let cached_model = UserKnn::default().with_cache(Arc::clone(&cache));
    let (mut batch_cached, _) = measure(users.len(), threads, Some(&reference), || {
        pool.recommend_batch(&cached_model, &ctx, &users, w.k)
    });
    let stats = cache.stats();
    batch_cached.cache = Some(CacheReport {
        hits: stats.hits,
        misses: stats.misses,
        evictions: stats.evictions,
        invalidations: stats.invalidations,
        entries: stats.entries,
        hit_rate: stats.hit_rate(),
    });

    WorkloadReport {
        name: w.name,
        n_users: w.n_users,
        n_items: w.n_items,
        n_ratings: world.ratings.n_ratings(),
        k: w.k,
        speedup_batch_vs_sequential: batch.requests_per_sec / sequential.requests_per_sec,
        speedup_batch_cached_vs_sequential: batch_cached.requests_per_sec
            / sequential.requests_per_sec,
        sequential,
        batch,
        batch_cached,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut out = "BENCH_serve.json".to_owned();
    let mut threads = 0usize;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => {
                quick = true;
                i += 1;
            }
            "--out" => {
                if i + 1 >= args.len() {
                    eprintln!("--out requires a path");
                    std::process::exit(2);
                }
                out = args[i + 1].clone();
                i += 2;
            }
            "--threads" => {
                let parsed = args.get(i + 1).and_then(|a| a.parse::<usize>().ok());
                match parsed {
                    Some(n) => threads = n,
                    None => {
                        eprintln!("--threads requires a number");
                        std::process::exit(2);
                    }
                }
                i += 2;
            }
            other => {
                eprintln!("unknown argument {other}; usage: serve_bench [--quick] [--threads N] [--out PATH]");
                std::process::exit(2);
            }
        }
    }
    let threads = if threads == 0 {
        exrec_algo::batch::default_threads()
    } else {
        threads
    };

    let telemetry = Telemetry::default();
    let workloads: Vec<WorkloadReport> = if quick { QUICK } else { FULL }
        .iter()
        .map(|w| run_workload(w, threads, &telemetry))
        .collect();

    let mut ok = true;
    for w in &workloads {
        println!(
            "{:<20} seq {:>8.2} req/s | batch {:>8.2} req/s ({:.2}x) | batch+cache {:>8.2} req/s ({:.2}x, hit rate {:.1}%)",
            w.name,
            w.sequential.requests_per_sec,
            w.batch.requests_per_sec,
            w.speedup_batch_vs_sequential,
            w.batch_cached.requests_per_sec,
            w.speedup_batch_cached_vs_sequential,
            w.batch_cached
                .cache
                .as_ref()
                .map(|c| c.hit_rate * 100.0)
                .unwrap_or(0.0),
        );
        if !w.batch.identical_to_sequential || !w.batch_cached.identical_to_sequential {
            eprintln!(
                "[serve_bench] ERROR: {} results diverged from the sequential reference",
                w.name
            );
            ok = false;
        }
    }

    let world = workloads
        .iter()
        .map(|w| w.name)
        .collect::<Vec<_>>()
        .join("+");
    let report = BenchReport {
        schema_version: exrec_bench::benchdiff::SCHEMA_VERSION,
        benchmark: "serve_bench",
        quick,
        threads,
        meta: exrec_bench::benchdiff::RunMeta::capture(world, threads),
        workloads,
    };
    let json = serde_json::to_string_pretty(&report).expect("serialize bench report");
    std::fs::write(&out, json + "\n").expect("write bench report");
    println!("wrote {out}");

    let metrics = telemetry.report();
    if !metrics.is_empty() {
        println!("{}", metrics.render_ascii());
    }

    if !ok {
        std::process::exit(1);
    }
}

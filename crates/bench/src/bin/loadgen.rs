//! `loadgen` — open-loop load generator for the `exrec-serve` edge.
//!
//! Drives a concurrency sweep against a running server (or one it
//! spawns in-process on loopback) and records latency percentiles plus
//! the shed/timeout counts that prove admission control works
//! (`BENCH_serve_net.json`, see `docs/benchmarking.md`).
//!
//! **Open loop.** Request *i* of a sweep point is scheduled at
//! `start + i / offered_rps`, independent of when earlier responses
//! arrive, and its latency is measured from that scheduled instant —
//! so a slow server accrues queueing delay in the numbers instead of
//! silently slowing the generator down (no coordinated omission). A
//! fixed pool of client threads executes the schedule; each request
//! uses a fresh connection (`Connection: close`), which is what makes
//! the server's per-connection admission control observable.
//!
//! ```text
//! loadgen                      # full sweep, spawns a server in-process
//! loadgen --quick              # CI smoke: small world, short sweep
//! loadgen --ingest             # mixed 90/10 read/write benchmark on the
//!                              # 100k world → BENCH_serve_ingest.json,
//!                              # plus a restart-recovery identity check
//! loadgen --addr HOST:PORT     # target an already-running server
//! loadgen --out PATH           # report path (default BENCH_serve_net.json)
//! loadgen --incident           # watchdog smoke: induce an error burst,
//!                              # assert exactly one latched incident
//! ```
//!
//! The request mix includes journaled writes (`POST /v1/rate`), so the
//! in-process server runs with a temp `--wal-path`; the final metrics
//! scrape requires the `ingest_*`/`wal_*` families alongside `serve_*`.
//! `--ingest` additionally proves recovery: after the sweep drains (and
//! compacts), the world is reopened from the snapshot — and again from
//! snapshot + a freshly written WAL tail — asserting bit-identical
//! recommendations each time.
//!
//! Exit code is non-zero when any response falls outside the expected
//! classes (2xx, 422 explanation-withheld, 429 shed, 504 deadline), a
//! 2xx arrives without its
//! `x-exrec-trace-id` header, any transport error occurs, or the final
//! `/metrics` scrape (with `Accept: text/plain`) fails the Prometheus
//! exposition checks in [`exrec_bench::promcheck`] — CI runs `--quick`
//! as a correctness gate on the edge.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use exrec_obs::Telemetry;
use exrec_serve::app::{AppConfig, ExplainApp};
use exrec_serve::server::{self, ServerConfig, ServerHandle};
use serde::Serialize;

/// One point of the sweep: an offered arrival rate and a request count.
struct SweepPoint {
    name: &'static str,
    offered_rps: f64,
    requests: usize,
    clients: usize,
    /// Per-request deadline sent on the wire, ms (`None` = server default).
    deadline_ms: Option<u64>,
}

const FULL_SWEEP: &[SweepPoint] = &[
    SweepPoint {
        name: "light",
        offered_rps: 50.0,
        requests: 400,
        clients: 8,
        deadline_ms: None,
    },
    SweepPoint {
        name: "moderate",
        offered_rps: 200.0,
        requests: 1_200,
        clients: 16,
        deadline_ms: None,
    },
    SweepPoint {
        name: "heavy",
        offered_rps: 600.0,
        requests: 2_400,
        clients: 32,
        deadline_ms: Some(2_000),
    },
    // Far above capacity with a small admission queue: most of this
    // point MUST be shed with 429s while admitted requests stay correct.
    SweepPoint {
        name: "overload",
        offered_rps: 4_000.0,
        requests: 4_000,
        clients: 48,
        deadline_ms: Some(1_000),
    },
];

/// The `--ingest` sweep: a 90/10 read/write mix against the same
/// 100k-user world `BENCH_serve.json` scans, offered well inside
/// capacity — the point is the latency of reads *while writes flow*
/// (plus CSR re-patch cost landing on the next read), not overload.
/// Rates are sized for the 1-core bench machine (~35 ms/scan).
const INGEST_SWEEP: &[SweepPoint] = &[
    SweepPoint {
        name: "mixed-light",
        offered_rps: 6.0,
        requests: 180,
        clients: 8,
        deadline_ms: None,
    },
    SweepPoint {
        name: "mixed-moderate",
        offered_rps: 12.0,
        requests: 360,
        clients: 12,
        deadline_ms: None,
    },
];

const INGEST_QUICK_SWEEP: &[SweepPoint] = &[SweepPoint {
    name: "mixed-quick",
    offered_rps: 50.0,
    requests: 200,
    clients: 8,
    deadline_ms: None,
}];

const QUICK_SWEEP: &[SweepPoint] = &[
    SweepPoint {
        name: "light-quick",
        offered_rps: 50.0,
        requests: 120,
        clients: 8,
        deadline_ms: None,
    },
    SweepPoint {
        name: "overload-quick",
        offered_rps: 2_000.0,
        requests: 600,
        clients: 24,
        deadline_ms: Some(1_000),
    },
];

/// Outcome of one request; the expected classes carry their latency
/// (from scheduled arrival) so the report can digest each class
/// separately — a fast 429 and a slow 504 are different stories.
enum Outcome {
    Ok2xx(f64),
    Shed429(f64),
    Timeout504(f64),
    /// A 2xx without the `x-exrec-trace-id` header — fails the run
    /// (every routed response must carry its trace id).
    NoTraceHeader,
    /// 422 from `/v1/explain`: the server withheld an explanation it
    /// could not justify. Correct behaviour for some user/item pairs
    /// in the mix, so counted but not a failure.
    Unprocessable422,
    /// Unexpected status class — fails the run.
    Unexpected(u16),
    /// Socket-level failure — fails the run.
    Transport,
}

/// Latency digest in milliseconds.
#[derive(Clone, Serialize)]
struct LatencyMs {
    p50: f64,
    p95: f64,
    p99: f64,
    mean: f64,
    max: f64,
}

#[derive(Serialize)]
struct PointReport {
    name: &'static str,
    offered_rps: f64,
    clients: usize,
    requests: usize,
    status_2xx: usize,
    unprocessable_422: usize,
    shed_429: usize,
    timeout_504: usize,
    unexpected: usize,
    transport_errors: usize,
    wall_ms: f64,
    achieved_rps: f64,
    /// Successful writes (`/v1/rate*` 2xx), a subset of `status_2xx`.
    write_2xx: usize,
    /// Latencies of successful **read** (2xx) requests, from scheduled
    /// arrival. This is the digest `benchdiff` gates on; keeping writes
    /// out preserves comparability with pre-ingest baselines.
    latency_ms: LatencyMs,
    /// Latencies of successful **write** (2xx) requests; absent when no
    /// write succeeded (e.g. everything shed under overload).
    write_latency_ms: Option<LatencyMs>,
    /// Per-class latency digests (`"2xx"`, `"write_2xx"`, `"429"`,
    /// `"504"`), present only for classes that occurred. Not gated:
    /// shed/timeout latency is diagnostic, not an objective.
    class_latency_ms: std::collections::BTreeMap<String, LatencyMs>,
}

#[derive(Serialize)]
struct ServerInfo {
    addr: String,
    in_process: bool,
    workers: usize,
    queue_bound: usize,
    default_deadline_ms: u64,
    world_users: usize,
    world_items: usize,
}

/// Outcome of the `--ingest` restart-recovery identity check: the
/// served world, reopened from its compaction snapshot and then from
/// snapshot + a fresh WAL tail, must recommend bit-identically.
#[derive(Serialize)]
struct RecoveryReport {
    /// Restart after a clean drain loaded the compaction snapshot and
    /// served recommendations identical to the live server's.
    snapshot_restart_identical: bool,
    /// Records in the WAL tail written (uncompacted) after the snapshot.
    tail_records_replayed: u64,
    /// Restart over snapshot + tail replay reproduced the post-write
    /// recommendations exactly.
    replay_restart_identical: bool,
}

#[derive(Serialize)]
struct LoadgenReport {
    /// Report-layout version `benchdiff` checks before comparing.
    schema_version: u32,
    benchmark: &'static str,
    quick: bool,
    /// Build/world stamp (`benchdiff` refuses cross-world diffs).
    meta: exrec_bench::benchdiff::RunMeta,
    server: ServerInfo,
    points: Vec<PointReport>,
    /// Present only for `--ingest` runs against the in-process server.
    #[serde(skip_serializing_if = "Option::is_none")]
    recovery: Option<RecoveryReport>,
}

/// The deterministic 90/10 read/write mix: mostly plain ranking, some
/// explained ranking, some single-pair explanations, and one journaled
/// write per ten requests (every fifth write a 3-op batch).
///
/// With `single_read` the plain-ranking case ranks ONE user (the shape
/// `BENCH_serve.json` digests per scan), so the `--ingest` read p50 is
/// directly comparable against the read-only serve bench.
fn request_body(
    i: usize,
    n_users: usize,
    deadline_ms: Option<u64>,
    single_read: bool,
) -> (&'static str, String) {
    let user = (i * 17) % n_users;
    let deadline = deadline_ms
        .map(|ms| format!(", \"deadline_ms\": {ms}"))
        .unwrap_or_default();
    match i % 10 {
        // 10%: one explained pair through /v1/explain.
        0 => (
            "/v1/explain",
            format!(
                "{{\"user\": {user}, \"item\": {}, \"interface\": \"item_average\"{deadline}}}",
                (i * 7) % 100
            ),
        ),
        // 20%: explained top-k.
        1 | 2 => (
            "/v1/recommend",
            format!("{{\"users\": [{user}], \"n\": 5, \"explain\": true{deadline}}}"),
        ),
        // 10%: a journaled write — whole-star upserts on catalog items.
        3 if i % 50 == 23 => (
            "/v1/rate/batch",
            format!(
                "{{\"ops\": [\
                 {{\"user\": {user}, \"item\": {}, \"value\": {:.1}}}, \
                 {{\"user\": {}, \"item\": {}, \"value\": {:.1}}}, \
                 {{\"user\": {user}, \"item\": {}}}]{deadline}}}",
                (i * 7) % 100,
                1.0 + ((i / 10) % 5) as f64,
                (user + 1) % n_users,
                (i * 13) % 100,
                1.0 + ((i / 7) % 5) as f64,
                (i * 3) % 100,
            ),
        ),
        3 => (
            "/v1/rate",
            format!(
                "{{\"user\": {user}, \"item\": {}, \"value\": {:.1}{deadline}}}",
                (i * 7) % 100,
                1.0 + ((i / 10) % 5) as f64,
            ),
        ),
        // 60%: plain top-k.
        _ if single_read => (
            "/v1/recommend",
            format!("{{\"users\": [{user}], \"n\": 10{deadline}}}"),
        ),
        _ => (
            "/v1/recommend",
            format!(
                "{{\"users\": [{user}, {}], \"n\": 10{deadline}}}",
                (user + 1) % n_users
            ),
        ),
    }
}

/// Sends one request on a fresh connection and classifies the outcome.
/// Latency is measured from `scheduled` (open-loop semantics).
fn fire(addr: SocketAddr, path: &str, body: &str, scheduled: Instant) -> Outcome {
    let Ok(stream) = TcpStream::connect(addr) else {
        return Outcome::Transport;
    };
    if stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .is_err()
    {
        return Outcome::Transport;
    }
    let request = format!(
        "POST {path} HTTP/1.1\r\nhost: loadgen\r\nconnection: close\r\ncontent-length: {}\r\n\r\n{body}",
        body.len(),
    );
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return Outcome::Transport,
    };
    // The server may shed (answer + close) before reading the body; a
    // write error here still has a response waiting to be read.
    let _ = writer.write_all(request.as_bytes());
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    if reader.read_line(&mut status_line).unwrap_or(0) == 0 {
        return Outcome::Transport;
    }
    let Some(status) = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
    else {
        return Outcome::Transport;
    };
    // Drain headers + body so the latency covers the full response.
    let mut content_length = 0usize;
    let mut has_trace_id = false;
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line).unwrap_or(0) == 0 {
            return Outcome::Transport;
        }
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().unwrap_or(0);
            }
            if name.trim().eq_ignore_ascii_case("x-exrec-trace-id") {
                has_trace_id = !value.trim().is_empty();
            }
        }
    }
    let mut body = vec![0u8; content_length];
    if reader.read_exact(&mut body).is_err() {
        return Outcome::Transport;
    }
    let latency_ms = scheduled.elapsed().as_secs_f64() * 1e3;
    match status {
        200..=299 if has_trace_id => Outcome::Ok2xx(latency_ms),
        200..=299 => Outcome::NoTraceHeader,
        422 => Outcome::Unprocessable422,
        429 => Outcome::Shed429(latency_ms),
        504 => Outcome::Timeout504(latency_ms),
        other => Outcome::Unexpected(other),
    }
}

/// `GET /metrics` with `Accept: text/plain`, returning the content-type
/// header and the exposition body.
fn scrape_metrics(addr: SocketAddr) -> Option<(String, String)> {
    let stream = TcpStream::connect(addr).ok()?;
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .ok()?;
    let mut writer = stream.try_clone().ok()?;
    writer
        .write_all(
            b"GET /metrics HTTP/1.1\r\nhost: loadgen\r\naccept: text/plain\r\n\
              connection: close\r\ncontent-length: 0\r\n\r\n",
        )
        .ok()?;
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line).ok()?;
    if status_line.split_whitespace().nth(1)? != "200" {
        return None;
    }
    let mut content_type = String::new();
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line).ok()? == 0 {
            return None;
        }
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            match name.trim().to_ascii_lowercase().as_str() {
                "content-type" => content_type = value.trim().to_owned(),
                "content-length" => content_length = value.trim().parse().ok()?,
                _ => {}
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).ok()?;
    Some((content_type, String::from_utf8(body).ok()?))
}

/// Scrapes the exposition endpoint and validates it: correct content
/// type, grammatically valid per [`exrec_bench::promcheck`], and the
/// `serve_*` + `ingest_*` families present (`wal_*` and the
/// `ts_*`/`watch_*` telemetry families too when the server is the
/// in-process one, whose fast sampler tick and registered watchdog are
/// known). Returns the violations (empty = pass).
fn check_exposition(addr: SocketAddr, expect_wal: bool) -> Vec<String> {
    let Some((content_type, body)) = scrape_metrics(addr) else {
        return vec!["metrics scrape failed (transport or non-200)".to_owned()];
    };
    let mut errors = Vec::new();
    if content_type != "text/plain; version=0.0.4" {
        errors.push(format!(
            "unexpected exposition content-type {content_type:?}"
        ));
    }
    let mut report = exrec_bench::promcheck::check(&body);
    errors.append(&mut report.errors);
    for family in ["serve_requests", "serve_accepted", "serve_connections"] {
        if !report.has_family(family) {
            errors.push(format!("missing expected family {family}"));
        }
    }
    if report.families_with_prefix("serve_latency_ns").is_empty() {
        errors.push("no serve_latency_ns_* histogram family".to_owned());
    }
    // The sweep explains 10% of requests and the in-process server
    // samples every one (`quality_sample_every: 1`), so the quality
    // estimator must have exported its families by now.
    for family in ["quality_samples", "quality_fidelity"] {
        if !report.has_family(family) {
            errors.push(format!("missing expected family {family}"));
        }
    }
    if report.families_with_prefix("quality_score").is_empty() {
        errors.push("no quality_score* family".to_owned());
    }
    // The mix writes 10% of requests, so the ingestion families must be
    // exported; the journal gauges additionally require a WAL-backed
    // server (always true for the in-process one).
    for family in ["ingest_requests", "ingest_ops_applied"] {
        if !report.has_family(family) {
            errors.push(format!("missing expected family {family}"));
        }
    }
    if report.families_with_prefix("ingest_apply_ns").is_empty() {
        errors.push("no ingest_apply_ns* histogram family".to_owned());
    }
    if expect_wal {
        for family in ["wal_size_bytes", "wal_records", "wal_replayed"] {
            if !report.has_family(family) {
                errors.push(format!("missing expected family {family}"));
            }
        }
        if report
            .families_with_prefix("ingest_wal_append_ns")
            .is_empty()
        {
            errors.push("no ingest_wal_append_ns* histogram family".to_owned());
        }
        // The in-process server runs a fast sampler tick and a
        // registered watchdog, so the continuous-telemetry families
        // must have exported by sweep end.
        for family in [
            "ts_ticks",
            "ts_series",
            "watch_incidents",
            "watch_active",
            "watch_flight_dumps",
        ] {
            if !report.has_family(family) {
                errors.push(format!("missing expected family {family}"));
            }
        }
    }
    errors
}

/// `GET path` on a fresh connection, returning the parsed JSON body of
/// a 200. `None` on transport failure, non-200 or unparseable body.
fn fetch_json(addr: SocketAddr, path: &str) -> Option<serde_json::Value> {
    let stream = TcpStream::connect(addr).ok()?;
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .ok()?;
    let mut writer = stream.try_clone().ok()?;
    writer
        .write_all(
            format!(
                "GET {path} HTTP/1.1\r\nhost: loadgen\r\nconnection: close\r\n\
                 content-length: 0\r\n\r\n"
            )
            .as_bytes(),
        )
        .ok()?;
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line).ok()?;
    if status_line.split_whitespace().nth(1)? != "200" {
        return None;
    }
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line).ok()? == 0 {
            return None;
        }
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().ok()?;
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).ok()?;
    serde_json::from_str(std::str::from_utf8(&body).ok()?).ok()
}

/// `POST path` with a JSON body on a fresh connection, returning the
/// parsed JSON of a 200. `None` on transport failure or non-200.
fn post_json(addr: SocketAddr, path: &str, body: &str) -> Option<serde_json::Value> {
    let stream = TcpStream::connect(addr).ok()?;
    stream
        .set_read_timeout(Some(Duration::from_secs(600)))
        .ok()?;
    let mut writer = stream.try_clone().ok()?;
    writer
        .write_all(
            format!(
                "POST {path} HTTP/1.1\r\nhost: loadgen\r\nconnection: close\r\n\
                 content-length: {}\r\n\r\n{body}",
                body.len()
            )
            .as_bytes(),
        )
        .ok()?;
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line).ok()?;
    if status_line.split_whitespace().nth(1)? != "200" {
        return None;
    }
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line).ok()? == 0 {
            return None;
        }
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().ok()?;
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).ok()?;
    serde_json::from_str(std::str::from_utf8(&body).ok()?).ok()
}

/// Smokes the four `GET /debug/*` endpoints, validating each body's
/// JSON shape after the sweep has populated profiler, flight recorder
/// and quality estimator. Returns the violations (empty = pass).
fn check_debug_endpoints(addr: SocketAddr) -> Vec<String> {
    use serde_json::Value;
    let mut errors = Vec::new();

    match fetch_json(addr, "/debug/profile") {
        None => errors.push("GET /debug/profile failed or non-200".to_owned()),
        Some(body) => {
            let routes = body.get("routes").and_then(Value::as_array);
            match routes {
                None => errors.push("/debug/profile: missing routes[]".to_owned()),
                Some(routes) => {
                    if !routes.iter().any(|r| {
                        r.get("name").and_then(Value::as_str) == Some("recommend")
                            && r.get("calls").and_then(Value::as_u64).unwrap_or(0) > 0
                    }) {
                        errors.push(
                            "/debug/profile: no profiled recommend route after the sweep"
                                .to_owned(),
                        );
                    }
                }
            }
            match body.get("collapsed").and_then(Value::as_str) {
                None => errors.push("/debug/profile: missing collapsed text".to_owned()),
                Some(text) => {
                    let malformed = text.lines().any(|line| {
                        line.rsplit_once(' ')
                            .and_then(|(stack, n)| {
                                (!stack.is_empty()).then(|| n.parse::<u64>().ok())?
                            })
                            .is_none()
                    });
                    if malformed {
                        errors
                            .push("/debug/profile: collapsed line not `stack self_ns`".to_owned());
                    }
                }
            }
        }
    }

    match fetch_json(addr, "/debug/requests") {
        None => errors.push("GET /debug/requests failed or non-200".to_owned()),
        Some(body) => {
            if body.get("capacity").and_then(Value::as_u64).is_none()
                || body.get("recorded").and_then(Value::as_u64).is_none()
            {
                errors.push("/debug/requests: missing capacity/recorded".to_owned());
            }
            match body.get("requests").and_then(Value::as_array) {
                None => errors.push("/debug/requests: missing requests[]".to_owned()),
                Some([]) => {
                    errors.push("/debug/requests: flight ring empty after the sweep".to_owned())
                }
                Some(requests) => {
                    for field in ["trace_id", "route", "outcome"] {
                        if !requests.iter().all(|r| r.get(field).is_some()) {
                            errors.push(format!("/debug/requests: record missing {field}"));
                        }
                    }
                    if !requests.iter().any(|r| {
                        r.get("phases")
                            .and_then(Value::as_array)
                            .is_some_and(|p| !p.is_empty())
                    }) {
                        errors.push(
                            "/debug/requests: no record carries a phase breakdown".to_owned(),
                        );
                    }
                }
            }
        }
    }

    match fetch_json(addr, "/debug/quality") {
        None => errors.push("GET /debug/quality failed or non-200".to_owned()),
        Some(body) => {
            match body.get("offline").and_then(Value::as_array) {
                None => errors.push("/debug/quality: missing offline[]".to_owned()),
                Some([]) => {
                    errors.push("/debug/quality: startup scoring left no offline rows".to_owned())
                }
                Some(rows) => {
                    for field in ["name", "fidelity", "evidence_f1", "coverage"] {
                        if !rows.iter().all(|r| r.get(field).is_some()) {
                            errors.push(format!("/debug/quality: offline row missing {field}"));
                        }
                    }
                }
            }
            if body
                .pointer("/online/samples")
                .and_then(Value::as_u64)
                .unwrap_or(0)
                == 0
            {
                errors.push("/debug/quality: no online quality samples after the sweep".to_owned());
            }
            match body.get("selection").and_then(Value::as_array) {
                None => errors.push("/debug/quality: missing selection[]".to_owned()),
                Some(rows) => {
                    if rows.len() != 7 {
                        errors.push(format!(
                            "/debug/quality: {} selection rows, want one per aim",
                            rows.len()
                        ));
                    }
                    for field in ["aim", "selected", "score"] {
                        if !rows.iter().all(|r| r.get(field).is_some()) {
                            errors.push(format!("/debug/quality: selection row missing {field}"));
                        }
                    }
                }
            }
        }
    }

    match fetch_json(addr, "/debug/world") {
        None => errors.push("GET /debug/world failed or non-200".to_owned()),
        Some(body) => {
            for field in ["users", "items", "ratings"] {
                if body.get(field).and_then(Value::as_u64).unwrap_or(0) == 0 {
                    errors.push(format!("/debug/world: {field} missing or zero"));
                }
            }
            if body.get("model").and_then(Value::as_str).is_none() {
                errors.push("/debug/world: missing model name".to_owned());
            }
            if body
                .pointer("/cache/hit_ratio")
                .and_then(Value::as_f64)
                .is_none()
            {
                errors.push("/debug/world: missing cache.hit_ratio".to_owned());
            }
            // Satellite of the ingest subsystem: the scan block must
            // surface CSR-vs-matrix divergence and patch counters.
            for field in ["scan/csr_patches", "scan/index_patches"] {
                if body.pointer(&format!("/{field}")).is_none() {
                    errors.push(format!("/debug/world: missing {field}"));
                }
            }
        }
    }

    match fetch_json(addr, "/debug/ingest") {
        None => errors.push("GET /debug/ingest failed or non-200".to_owned()),
        Some(body) => {
            if body.get("requests").and_then(Value::as_u64).unwrap_or(0) == 0 {
                errors.push("/debug/ingest: no write requests counted after the sweep".to_owned());
            }
            if body.get("applied").and_then(Value::as_u64).unwrap_or(0) == 0 {
                errors.push("/debug/ingest: no ops applied after the sweep".to_owned());
            }
            if body.get("revision").and_then(Value::as_u64).unwrap_or(0) == 0 {
                errors.push("/debug/ingest: ratings revision never advanced".to_owned());
            }
            match body.get("wal") {
                None | Some(Value::Null) => {
                    errors.push("/debug/ingest: journaled server reports no wal block".to_owned())
                }
                Some(wal) => {
                    if wal.get("size_bytes").and_then(Value::as_u64).unwrap_or(0) == 0 {
                        errors
                            .push("/debug/ingest: wal.size_bytes is zero after writes".to_owned());
                    }
                }
            }
        }
    }

    match fetch_json(addr, "/debug/timeseries") {
        None => errors.push("GET /debug/timeseries failed or non-200".to_owned()),
        Some(body) => {
            for field in ["schema", "interval_ns", "retention"] {
                if body.get(field).and_then(Value::as_u64).unwrap_or(0) == 0 {
                    errors.push(format!("/debug/timeseries: {field} missing or zero"));
                }
            }
            if body.get("ticks").and_then(Value::as_u64).unwrap_or(0) == 0 {
                errors.push("/debug/timeseries: no sampler ticks after the sweep".to_owned());
            }
            match body
                .pointer("/counters/serve.accepted")
                .and_then(Value::as_array)
            {
                None | Some([]) => {
                    errors.push("/debug/timeseries: no serve.accepted rate series".to_owned())
                }
                Some(points) => {
                    for field in ["epoch", "delta", "rate_per_sec"] {
                        if !points.iter().all(|p| p.get(field).is_some()) {
                            errors.push(format!("/debug/timeseries: rate point missing {field}"));
                        }
                    }
                }
            }
            let windowed = body
                .get("histograms")
                .and_then(Value::as_object)
                .into_iter()
                .flat_map(|histograms| histograms.iter().map(|(_name, series)| series))
                .flat_map(|series| series.as_array().into_iter().flatten());
            let mut any_hist_point = false;
            for point in windowed {
                any_hist_point = true;
                let p50 = point.get("p50_ns").and_then(Value::as_u64);
                let p99 = point.get("p99_ns").and_then(Value::as_u64);
                match (p50, p99) {
                    (Some(p50), Some(p99)) if p50 <= p99 => {}
                    _ => {
                        errors.push(format!(
                            "/debug/timeseries: bad windowed digest point {point:?}"
                        ));
                        break;
                    }
                }
            }
            if !any_hist_point {
                errors.push("/debug/timeseries: no windowed histogram points".to_owned());
            }
        }
    }

    match fetch_json(addr, "/debug/incidents") {
        None => errors.push("GET /debug/incidents failed or non-200".to_owned()),
        Some(body) => {
            if body.get("capacity").and_then(Value::as_u64).unwrap_or(0) == 0 {
                errors.push("/debug/incidents: capacity missing or zero".to_owned());
            }
            for field in ["schema", "opened", "active", "flight_dumps"] {
                if body.get(field).and_then(Value::as_u64).is_none() {
                    errors.push(format!("/debug/incidents: missing {field}"));
                }
            }
            match body.get("incidents").and_then(Value::as_array) {
                None => errors.push("/debug/incidents: missing incidents[]".to_owned()),
                Some(incidents) => {
                    for field in ["seq", "rule", "kind", "opened_offset_ns"] {
                        if !incidents.iter().all(|i| i.get(field).is_some()) {
                            errors.push(format!("/debug/incidents: incident missing {field}"));
                        }
                    }
                }
            }
        }
    }

    errors
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Sorts `latencies` in place and digests them (zeros when empty).
fn digest(latencies: &mut [f64]) -> LatencyMs {
    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let mean = if latencies.is_empty() {
        0.0
    } else {
        latencies.iter().sum::<f64>() / latencies.len() as f64
    };
    LatencyMs {
        p50: percentile(latencies, 0.50),
        p95: percentile(latencies, 0.95),
        p99: percentile(latencies, 0.99),
        mean,
        max: latencies.last().copied().unwrap_or(0.0),
    }
}

/// Runs one sweep point with a fixed client-thread pool executing the
/// open-loop schedule.
fn run_point(
    addr: SocketAddr,
    n_users: usize,
    point: &SweepPoint,
    single_read: bool,
) -> PointReport {
    eprintln!(
        "[loadgen] point {:<14} offered {:>6.0} rps, {} requests, {} clients",
        point.name, point.offered_rps, point.requests, point.clients
    );
    let next = AtomicUsize::new(0);
    let outcomes: Mutex<Vec<(bool, Outcome)>> = Mutex::new(Vec::with_capacity(point.requests));
    let interval = Duration::from_secs_f64(1.0 / point.offered_rps);
    let started = Instant::now();

    std::thread::scope(|scope| {
        for _ in 0..point.clients {
            scope.spawn(|| {
                let mut local = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= point.requests {
                        break;
                    }
                    let scheduled = started + interval.mul_f64(i as f64);
                    let now = Instant::now();
                    if scheduled > now {
                        std::thread::sleep(scheduled - now);
                    }
                    let (path, body) = request_body(i, n_users, point.deadline_ms, single_read);
                    let is_write = path.starts_with("/v1/rate");
                    local.push((is_write, fire(addr, path, &body, scheduled)));
                }
                outcomes
                    .lock()
                    .unwrap_or_else(|p| p.into_inner())
                    .extend(local);
            });
        }
    });
    let wall = started.elapsed();

    let outcomes = outcomes.into_inner().unwrap_or_else(|p| p.into_inner());
    let mut read_latencies: Vec<f64> = Vec::new();
    let mut write_latencies: Vec<f64> = Vec::new();
    let mut shed_latencies: Vec<f64> = Vec::new();
    let mut timeout_latencies: Vec<f64> = Vec::new();
    let (mut ok, mut write_ok, mut unprocessable, mut shed, mut timeout) = (0, 0, 0, 0, 0);
    let (mut unexpected, mut transport) = (0, 0);
    for (is_write, outcome) in &outcomes {
        match outcome {
            Outcome::Ok2xx(ms) => {
                ok += 1;
                if *is_write {
                    write_ok += 1;
                    write_latencies.push(*ms);
                } else {
                    read_latencies.push(*ms);
                }
            }
            Outcome::Unprocessable422 => unprocessable += 1,
            Outcome::Shed429(ms) => {
                shed += 1;
                shed_latencies.push(*ms);
            }
            Outcome::Timeout504(ms) => {
                timeout += 1;
                timeout_latencies.push(*ms);
            }
            Outcome::NoTraceHeader => {
                eprintln!("[loadgen]   2xx without x-exrec-trace-id header");
                unexpected += 1;
            }
            Outcome::Unexpected(status) => {
                eprintln!("[loadgen]   unexpected status {status}");
                unexpected += 1;
            }
            Outcome::Transport => transport += 1,
        }
    }
    let read_digest = digest(&mut read_latencies);
    let write_digest = (!write_latencies.is_empty()).then(|| digest(&mut write_latencies));
    let mut class_latency_ms = std::collections::BTreeMap::new();
    if !read_latencies.is_empty() {
        class_latency_ms.insert("2xx".to_owned(), read_digest.clone());
    }
    if let Some(w) = &write_digest {
        class_latency_ms.insert("write_2xx".to_owned(), w.clone());
    }
    if !shed_latencies.is_empty() {
        class_latency_ms.insert("429".to_owned(), digest(&mut shed_latencies));
    }
    if !timeout_latencies.is_empty() {
        class_latency_ms.insert("504".to_owned(), digest(&mut timeout_latencies));
    }
    let report = PointReport {
        name: point.name,
        offered_rps: point.offered_rps,
        clients: point.clients,
        requests: point.requests,
        status_2xx: ok,
        unprocessable_422: unprocessable,
        shed_429: shed,
        timeout_504: timeout,
        unexpected,
        transport_errors: transport,
        wall_ms: wall.as_secs_f64() * 1e3,
        achieved_rps: outcomes.len() as f64 / wall.as_secs_f64(),
        write_2xx: write_ok,
        latency_ms: read_digest,
        write_latency_ms: write_digest,
        class_latency_ms,
    };
    eprintln!(
        "[loadgen]   2xx {} (writes {}) / 422 {} / shed {} / timeout {} / bad {} / transport {}",
        ok, write_ok, unprocessable, shed, timeout, unexpected, transport,
    );
    for (class, digest) in &report.class_latency_ms {
        eprintln!(
            "[loadgen]   {class}: p50 {:.1}ms p95 {:.1}ms p99 {:.1}ms mean {:.1}ms max {:.1}ms",
            digest.p50, digest.p95, digest.p99, digest.mean, digest.max
        );
    }
    report
}

/// Read-p50 ceiling for the full `--ingest` run: 2x the read-only
/// baseline (`BENCH_serve.json` synthetic-100k pruned scan p50,
/// 34.59 ms) — "reads hold their SLO while writes flow".
const INGEST_READ_P50_BUDGET_MS: f64 = 69.2;
/// Write-p50 ceiling for the full `--ingest` run.
const INGEST_WRITE_P50_BUDGET_MS: f64 = 5.0;

/// Neuters every tick-evaluated watchdog rule, so sweeps whose whole
/// point is to overload the edge (shed bursts, deadline storms) do not
/// spam incidents and flight dumps into the smoke logs. The
/// `--incident` mode re-arms exactly the rule it regresses.
fn disarm_watchdog(config: &mut ServerConfig) {
    config.watch.latency_zscore = 1e12;
    config.watch.error_rate_max = f64::INFINITY;
    config.watch.shed_rate_max = f64::INFINITY;
    config.watch.quality_min = -1.0;
    config.watch.hit_ratio_min = -1.0;
    config.watch.revision_lag_max = f64::INFINITY;
    config.watch.prune_ratio_min = -1.0;
}

/// The incident smoke: spawn a faulty-injectable server with a fast
/// sampler tick and only the 5xx-rate rule armed, induce a panic burst
/// spanning several tick windows, and assert the full incident story —
/// exactly one latched incident, one flight dump, `/healthz` degraded,
/// and the `ts_*`/`watch_*` families valid under promcheck. Exits the
/// process with the verdict.
fn run_incident_smoke() -> ! {
    use serde_json::Value;
    eprintln!("[loadgen] incident smoke: inducing a 5xx burst");
    let mut server_config = ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 2,
        queue_bound: 32,
        default_deadline_ms: 10_000,
        debug_endpoints: true,
        ..ServerConfig::default()
    };
    server_config.ts.interval_ns = 25_000_000;
    disarm_watchdog(&mut server_config);
    // Exactly one armed detector, and an effectively-infinite clear
    // threshold so the latch provably holds through recovery traffic.
    server_config.watch.error_rate_max = 0.5;
    server_config.watch.trip_after = 2;
    server_config.watch.clear_after = 1_000_000;
    server_config.slo.target = 0.0; // keep the SLO external trigger quiet
    let app_config = AppConfig {
        n_users: 200,
        n_items: 100,
        density: 0.1,
        fault_injection: true,
        quality_sample_every: 0,
        ..AppConfig::default()
    };
    let telemetry = Telemetry::default();
    let app = ExplainApp::new(app_config, telemetry.clone());
    let handle = server::start(app, server_config, telemetry).expect("spawn loopback server");
    let addr = handle.addr();
    let mut failures: Vec<String> = Vec::new();

    let clean = r#"{"users": [1], "n": 2}"#;
    let faulty = r#"{"users": [1], "inject_panic": true}"#;
    // Clean warmup across several tick windows.
    for _ in 0..20 {
        let _ = fire(addr, "/v1/recommend", clean, Instant::now());
        std::thread::sleep(Duration::from_millis(3));
    }
    // The regression: ~300ms of panicking requests (≈12 tick windows).
    let burst_deadline = Instant::now() + Duration::from_millis(300);
    while Instant::now() < burst_deadline {
        let _ = fire(addr, "/v1/recommend", faulty, Instant::now());
        std::thread::sleep(Duration::from_millis(3));
    }
    // Recovery traffic: the latch must hold and nothing new may open.
    for _ in 0..30 {
        let _ = fire(addr, "/v1/recommend", clean, Instant::now());
        std::thread::sleep(Duration::from_millis(3));
    }

    match fetch_json(addr, "/debug/incidents") {
        None => failures.push("GET /debug/incidents failed or non-200".to_owned()),
        Some(body) => {
            for (field, want) in [("opened", 1), ("active", 1), ("flight_dumps", 1)] {
                let got = body.get(field).and_then(Value::as_u64);
                if got != Some(want) {
                    failures.push(format!("/debug/incidents: {field} = {got:?}, want {want}"));
                }
            }
            match body.get("incidents").and_then(Value::as_array) {
                Some([incident]) => {
                    if incident.get("rule").and_then(Value::as_str) != Some("error_rate") {
                        failures.push(format!("incident is not the error_rate rule: {incident:?}"));
                    }
                    if !incident
                        .get("closed_epoch")
                        .is_some_and(|epoch| matches!(epoch, Value::Null))
                    {
                        failures.push("incident closed: the latch did not hold".to_owned());
                    }
                }
                other => failures.push(format!("want exactly one incident, got {other:?}")),
            }
        }
    }
    match fetch_json(addr, "/healthz") {
        None => failures.push("GET /healthz failed or non-200".to_owned()),
        Some(body) => {
            if body.get("status").and_then(Value::as_str) != Some("degraded") {
                failures.push(format!(
                    "healthz status {:?}, want \"degraded\" while an incident stands",
                    body.get("status")
                ));
            }
            if body.pointer("/incidents/active").and_then(Value::as_u64) != Some(1) {
                failures.push("healthz incident standing does not show 1 active".to_owned());
            }
        }
    }
    match fetch_json(addr, "/metrics") {
        None => failures.push("GET /metrics failed or non-200".to_owned()),
        Some(body) => {
            for (path, want) in [
                ("/counters/watch.incidents", 1),
                ("/counters/watch.flight_dumps", 1),
            ] {
                if body.pointer(path).and_then(Value::as_u64) != Some(want) {
                    failures.push(format!("metrics {path} != {want}"));
                }
            }
            if body
                .pointer("/counters/serve.panic")
                .and_then(Value::as_u64)
                .unwrap_or(0)
                == 0
            {
                failures.push("metrics serve.panic never incremented — no burst?".to_owned());
            }
            if body.pointer("/gauges/watch.active").and_then(Value::as_f64) != Some(1.0) {
                failures.push("metrics gauge watch.active != 1".to_owned());
            }
        }
    }
    // The telemetry families must also be grammatical Prometheus text.
    match scrape_metrics(addr) {
        None => failures.push("text /metrics scrape failed".to_owned()),
        Some((_content_type, text)) => {
            let mut report = exrec_bench::promcheck::check(&text);
            failures.append(&mut report.errors);
            for family in [
                "ts_ticks",
                "watch_incidents",
                "watch_active",
                "watch_flight_dumps",
            ] {
                if !report.has_family(family) {
                    failures.push(format!("missing expected family {family}"));
                }
            }
        }
    }

    handle.shutdown();
    if failures.is_empty() {
        eprintln!("[loadgen] incident smoke OK");
        std::process::exit(0);
    }
    for failure in &failures {
        eprintln!("[loadgen]   incident: {failure}");
    }
    eprintln!(
        "[loadgen] FAIL: incident smoke ({} violations)",
        failures.len()
    );
    std::process::exit(1);
}

fn main() {
    let mut quick = false;
    let mut ingest = false;
    let mut incident = false;
    let mut out: Option<String> = None;
    let mut external: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--ingest" => ingest = true,
            "--incident" => incident = true,
            "--out" => out = args.next().or(out),
            "--addr" => external = args.next(),
            other => {
                eprintln!(
                    "usage: loadgen [--quick] [--ingest] [--incident] [--addr HOST:PORT] [--out PATH] ({other:?}?)"
                );
                std::process::exit(2);
            }
        }
    }
    if incident {
        run_incident_smoke();
    }
    if ingest && external.is_some() {
        eprintln!("[loadgen] --ingest needs the in-process server (it restarts the world)");
        std::process::exit(2);
    }
    let out = out.unwrap_or_else(|| {
        if ingest {
            "BENCH_serve_ingest.json".to_owned()
        } else {
            "BENCH_serve_net.json".to_owned()
        }
    });

    // Edge tuning chosen so the overload point genuinely overruns the
    // queue: small admission bound, few workers. The ingest run is an
    // in-capacity latency measurement instead, so it gets a deeper
    // queue — shedding there would just hide the read-latency story.
    let mut server_config = ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 4,
        queue_bound: if ingest { 32 } else { 8 },
        default_deadline_ms: 2_000,
        // The smoke run validates the introspection surface too.
        debug_endpoints: true,
        ..ServerConfig::default()
    };
    // A fast sampler tick so the ts_* families and /debug/timeseries
    // fill during the sweep; the overload points overrun the edge *by
    // design*, so the anomaly rules are disarmed here (the dedicated
    // `--incident` smoke arms and asserts them).
    server_config.ts.interval_ns = 200_000_000;
    disarm_watchdog(&mut server_config);
    // Every in-process run journals to a temp WAL so the write mix and
    // the wal_* metric families are exercised end to end.
    let wal_dir = std::env::temp_dir().join(format!("exrec-loadgen-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&wal_dir);
    std::fs::create_dir_all(&wal_dir).expect("create temp WAL dir");
    let app_config = if ingest && !quick {
        AppConfig {
            // The BENCH_serve.json synthetic-100k world.
            n_users: 100_000,
            n_items: 500,
            density: 0.1,
            // Sampled scoring and a light startup book: quality is not
            // what this run measures, but the families must export.
            quality_sample_every: 8,
            quality_pairs: 2,
            wal_path: Some(wal_dir.join("serve.wal")),
            ..AppConfig::default()
        }
    } else {
        AppConfig {
            n_users: if quick { 500 } else { 2_000 },
            n_items: 300,
            density: 0.05,
            // Score every explained request so the smoke run exercises
            // the live quality estimator deterministically.
            quality_sample_every: 1,
            wal_path: external.is_none().then(|| wal_dir.join("serve.wal")),
            ..AppConfig::default()
        }
    };
    let n_users = app_config.n_users;
    let n_items = app_config.n_items;
    let world_desc = format!(
        "{}x{}@{}",
        app_config.n_users, app_config.n_items, app_config.density
    );

    let mut spawned: Option<ServerHandle> = None;
    let addr: SocketAddr = match &external {
        Some(addr) => addr.parse().unwrap_or_else(|_| {
            eprintln!("[loadgen] bad --addr {addr:?}");
            std::process::exit(2);
        }),
        None => {
            eprintln!(
                "[loadgen] spawning server in-process ({} users, {} workers, queue {})",
                n_users, server_config.workers, server_config.queue_bound
            );
            let telemetry = Telemetry::default();
            let app = ExplainApp::new(app_config.clone(), telemetry.clone());
            let handle = server::start(app, server_config.clone(), telemetry)
                .expect("spawn loopback server");
            let addr = handle.addr();
            spawned = Some(handle);
            addr
        }
    };

    // Warm the similarity cache so the sweep measures steady state.
    eprintln!("[loadgen] warmup");
    for i in 0..24 {
        let (path, body) = request_body(i, n_users, None, ingest);
        let _ = fire(addr, path, &body, Instant::now());
    }

    let sweep = match (ingest, quick) {
        (true, false) => INGEST_SWEEP,
        (true, true) => INGEST_QUICK_SWEEP,
        (false, true) => QUICK_SWEEP,
        (false, false) => FULL_SWEEP,
    };
    let points: Vec<PointReport> = sweep
        .iter()
        .map(|point| run_point(addr, n_users, point, ingest))
        .collect();

    // Scrape /metrics as a Prometheus client would and validate the
    // exposition before the server goes away.
    eprintln!("[loadgen] validating /metrics exposition");
    let exposition_errors = check_exposition(addr, spawned.is_some());
    // The in-process server runs with --debug-endpoints; validate the
    // introspection surface too. An external server may not have the
    // flag on, so only the spawned case is gated.
    let debug_errors = if spawned.is_some() {
        eprintln!("[loadgen] validating /debug endpoints");
        check_debug_endpoints(addr)
    } else {
        Vec::new()
    };

    // Drain the server. Ingest runs additionally prove recovery on the
    // way out: restart from the compaction snapshot, then from snapshot
    // + a fresh WAL tail, asserting bit-identical recommendations.
    let mut quality_at_drain = None;
    let mut recovery = None;
    if let Some(handle) = spawned.take() {
        quality_at_drain = Some(handle.quality_snapshot());
        if ingest {
            recovery = Some(run_recovery_check(handle, addr, &app_config));
        } else {
            handle.shutdown();
        }
    }

    let report = LoadgenReport {
        schema_version: exrec_bench::benchdiff::SCHEMA_VERSION,
        benchmark: if ingest { "serve_ingest" } else { "serve_net" },
        quick,
        meta: exrec_bench::benchdiff::RunMeta::capture(world_desc, server_config.workers),
        server: ServerInfo {
            addr: addr.to_string(),
            in_process: external.is_none(),
            workers: server_config.workers,
            queue_bound: server_config.queue_bound,
            default_deadline_ms: server_config.default_deadline_ms,
            world_users: n_users,
            world_items: n_items,
        },
        points,
        recovery,
    };

    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    // Parse it back before writing: CI fails on a report that does not
    // round-trip (the "latency-report parse error" gate).
    if serde_json::from_str::<serde_json::Value>(&json).is_err() {
        eprintln!("[loadgen] FAIL: report does not parse back");
        std::process::exit(1);
    }
    std::fs::write(&out, &json).expect("write report");
    eprintln!("[loadgen] wrote {out}");

    if let Some(quality) = quality_at_drain {
        if quality.samples > 0 {
            eprintln!(
                "[loadgen] explanation quality at drain ({} samples, mean score {:.3}):",
                quality.samples, quality.mean_score
            );
            for s in &quality.interfaces {
                eprintln!(
                    "[loadgen]   {:<24} {} samples, score {:.3}, fidelity {:.3}",
                    s.name, s.samples, s.score, s.fidelity
                );
            }
        }
    }
    let _ = std::fs::remove_dir_all(&wal_dir);

    let bad: usize = report
        .points
        .iter()
        .map(|p| p.unexpected + p.transport_errors)
        .sum();
    let ok: usize = report.points.iter().map(|p| p.status_2xx).sum();
    if bad > 0 {
        eprintln!("[loadgen] FAIL: {bad} responses outside the expected classes");
        std::process::exit(1);
    }
    if ok == 0 {
        eprintln!("[loadgen] FAIL: no successful responses at all");
        std::process::exit(1);
    }
    if !exposition_errors.is_empty() {
        for error in &exposition_errors {
            eprintln!("[loadgen]   exposition: {error}");
        }
        eprintln!(
            "[loadgen] FAIL: /metrics exposition invalid ({} violations)",
            exposition_errors.len()
        );
        std::process::exit(1);
    }
    if !debug_errors.is_empty() {
        for error in &debug_errors {
            eprintln!("[loadgen]   debug: {error}");
        }
        eprintln!(
            "[loadgen] FAIL: /debug endpoints invalid ({} violations)",
            debug_errors.len()
        );
        std::process::exit(1);
    }
    if let Some(recovery) = &report.recovery {
        eprintln!(
            "[loadgen] recovery: snapshot restart identical {}, tail replayed {} records, replay restart identical {}",
            recovery.snapshot_restart_identical,
            recovery.tail_records_replayed,
            recovery.replay_restart_identical,
        );
        if !recovery.snapshot_restart_identical || !recovery.replay_restart_identical {
            eprintln!("[loadgen] FAIL: a restart did not reproduce the served world exactly");
            std::process::exit(1);
        }
        if recovery.tail_records_replayed == 0 {
            eprintln!("[loadgen] FAIL: the replay restart never exercised the WAL tail");
            std::process::exit(1);
        }
    }
    if ingest && !quick {
        let mut slo_failures = 0;
        for p in &report.points {
            if p.latency_ms.p50 > INGEST_READ_P50_BUDGET_MS {
                eprintln!(
                    "[loadgen] FAIL: {} read p50 {:.2}ms exceeds the {:.1}ms budget (2x read-only baseline)",
                    p.name, p.latency_ms.p50, INGEST_READ_P50_BUDGET_MS
                );
                slo_failures += 1;
            }
            match &p.write_latency_ms {
                Some(w) if w.p50 < INGEST_WRITE_P50_BUDGET_MS => {}
                Some(w) => {
                    eprintln!(
                        "[loadgen] FAIL: {} write p50 {:.2}ms exceeds the {:.1}ms budget",
                        p.name, w.p50, INGEST_WRITE_P50_BUDGET_MS
                    );
                    slo_failures += 1;
                }
                None => {
                    eprintln!("[loadgen] FAIL: {} measured no successful writes", p.name);
                    slo_failures += 1;
                }
            }
        }
        if slo_failures > 0 {
            std::process::exit(1);
        }
    }
    eprintln!("[loadgen] OK");
}

/// Drains the server (which compacts its journal on the way out), then
/// proves warm restart twice over: (1) reopen from the compaction
/// snapshot and serve recommendations bit-identical to the live
/// server's final answers; (2) journal fresh writes, drop the world
/// *without* compacting — a crash after the last append — reopen over
/// snapshot + WAL tail, and serve bit-identical to the pre-drop world.
/// The second leg also pits the incremental CSR patch (live world)
/// against a from-scratch rebuild (replayed world): identity requires
/// them to agree.
fn run_recovery_check(
    handle: ServerHandle,
    addr: SocketAddr,
    app_config: &AppConfig,
) -> RecoveryReport {
    use exrec_serve::app::Deadline;
    use exrec_serve::proto::{RateRequest, RecommendRequest};

    let probe = RecommendRequest {
        users: vec![0, 1, 2, 3, 17, 42],
        n: Some(10),
        interface: None,
        explain: None,
        deadline_ms: None,
        inject_panic: None,
        inject_delay_ms: None,
    };
    let probe_body = serde_json::to_string(&probe).expect("serialize probe");
    eprintln!("[loadgen] recovery: capturing live recommendations");
    let live = post_json(addr, "/v1/recommend", &probe_body).expect("live recommend probe");
    eprintln!("[loadgen] recovery: draining (compacts the journal)");
    handle.shutdown();
    let deadline = || Deadline::after_ms(600_000);

    eprintln!("[loadgen] recovery: restarting from the compaction snapshot");
    let app =
        ExplainApp::try_new(app_config.clone(), Telemetry::default()).expect("snapshot restart");
    assert!(
        app.snapshot_loaded(),
        "restart must load the compaction snapshot"
    );
    assert_eq!(
        app.wal_stats().expect("journal open").replayed,
        0,
        "a clean drain leaves no WAL tail"
    );
    let after_snapshot = app
        .recommend(&probe, deadline())
        .expect("recommend on the restarted world");
    let after_snapshot = serde_json::to_value(&after_snapshot);
    let snapshot_restart_identical = after_snapshot == live;

    // Journal a deterministic tail of whole-star upserts, read the
    // world it produced, then drop without compacting.
    for k in 0..16u32 {
        let req = RateRequest {
            user: (k * 977) % app_config.n_users as u32,
            item: (k * 31) % app_config.n_items as u32,
            value: Some(1.0 + (k % 5) as f64),
            deadline_ms: None,
        };
        app.rate(&req, deadline()).expect("journaled tail write");
    }
    let with_tail = app
        .recommend(&probe, deadline())
        .expect("recommend after tail writes");
    let with_tail = serde_json::to_value(&with_tail);
    drop(app);

    eprintln!("[loadgen] recovery: restarting over snapshot + WAL tail");
    let app =
        ExplainApp::try_new(app_config.clone(), Telemetry::default()).expect("replay restart");
    assert!(app.snapshot_loaded(), "snapshot still precedes the tail");
    let tail_records_replayed = app.wal_stats().expect("journal open").replayed;
    let replayed = app
        .recommend(&probe, deadline())
        .expect("recommend on the replayed world");
    let replayed = serde_json::to_value(&replayed);

    RecoveryReport {
        snapshot_restart_identical,
        tail_records_replayed,
        replay_restart_identical: replayed == with_tail,
    }
}

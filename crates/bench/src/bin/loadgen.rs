//! `loadgen` — open-loop load generator for the `exrec-serve` edge.
//!
//! Drives a concurrency sweep against a running server (or one it
//! spawns in-process on loopback) and records latency percentiles plus
//! the shed/timeout counts that prove admission control works
//! (`BENCH_serve_net.json`, see `docs/benchmarking.md`).
//!
//! **Open loop.** Request *i* of a sweep point is scheduled at
//! `start + i / offered_rps`, independent of when earlier responses
//! arrive, and its latency is measured from that scheduled instant —
//! so a slow server accrues queueing delay in the numbers instead of
//! silently slowing the generator down (no coordinated omission). A
//! fixed pool of client threads executes the schedule; each request
//! uses a fresh connection (`Connection: close`), which is what makes
//! the server's per-connection admission control observable.
//!
//! ```text
//! loadgen                      # full sweep, spawns a server in-process
//! loadgen --quick              # CI smoke: small world, short sweep
//! loadgen --addr HOST:PORT     # target an already-running server
//! loadgen --out PATH           # report path (default BENCH_serve_net.json)
//! ```
//!
//! Exit code is non-zero when any response falls outside the expected
//! classes (2xx, 422 explanation-withheld, 429 shed, 504 deadline), a
//! 2xx arrives without its
//! `x-exrec-trace-id` header, any transport error occurs, or the final
//! `/metrics` scrape (with `Accept: text/plain`) fails the Prometheus
//! exposition checks in [`exrec_bench::promcheck`] — CI runs `--quick`
//! as a correctness gate on the edge.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use exrec_obs::Telemetry;
use exrec_serve::app::{AppConfig, ExplainApp};
use exrec_serve::server::{self, ServerConfig, ServerHandle};
use serde::Serialize;

/// One point of the sweep: an offered arrival rate and a request count.
struct SweepPoint {
    name: &'static str,
    offered_rps: f64,
    requests: usize,
    clients: usize,
    /// Per-request deadline sent on the wire, ms (`None` = server default).
    deadline_ms: Option<u64>,
}

const FULL_SWEEP: &[SweepPoint] = &[
    SweepPoint {
        name: "light",
        offered_rps: 50.0,
        requests: 400,
        clients: 8,
        deadline_ms: None,
    },
    SweepPoint {
        name: "moderate",
        offered_rps: 200.0,
        requests: 1_200,
        clients: 16,
        deadline_ms: None,
    },
    SweepPoint {
        name: "heavy",
        offered_rps: 600.0,
        requests: 2_400,
        clients: 32,
        deadline_ms: Some(2_000),
    },
    // Far above capacity with a small admission queue: most of this
    // point MUST be shed with 429s while admitted requests stay correct.
    SweepPoint {
        name: "overload",
        offered_rps: 4_000.0,
        requests: 4_000,
        clients: 48,
        deadline_ms: Some(1_000),
    },
];

const QUICK_SWEEP: &[SweepPoint] = &[
    SweepPoint {
        name: "light-quick",
        offered_rps: 50.0,
        requests: 120,
        clients: 8,
        deadline_ms: None,
    },
    SweepPoint {
        name: "overload-quick",
        offered_rps: 2_000.0,
        requests: 600,
        clients: 24,
        deadline_ms: Some(1_000),
    },
];

/// Outcome of one request; the expected classes carry their latency
/// (from scheduled arrival) so the report can digest each class
/// separately — a fast 429 and a slow 504 are different stories.
enum Outcome {
    Ok2xx(f64),
    Shed429(f64),
    Timeout504(f64),
    /// A 2xx without the `x-exrec-trace-id` header — fails the run
    /// (every routed response must carry its trace id).
    NoTraceHeader,
    /// 422 from `/v1/explain`: the server withheld an explanation it
    /// could not justify. Correct behaviour for some user/item pairs
    /// in the mix, so counted but not a failure.
    Unprocessable422,
    /// Unexpected status class — fails the run.
    Unexpected(u16),
    /// Socket-level failure — fails the run.
    Transport,
}

/// Latency digest in milliseconds.
#[derive(Clone, Serialize)]
struct LatencyMs {
    p50: f64,
    p95: f64,
    p99: f64,
    mean: f64,
    max: f64,
}

#[derive(Serialize)]
struct PointReport {
    name: &'static str,
    offered_rps: f64,
    clients: usize,
    requests: usize,
    status_2xx: usize,
    unprocessable_422: usize,
    shed_429: usize,
    timeout_504: usize,
    unexpected: usize,
    transport_errors: usize,
    wall_ms: f64,
    achieved_rps: f64,
    /// Latencies of successful (2xx) requests, from scheduled arrival.
    /// This is the digest `benchdiff` gates on.
    latency_ms: LatencyMs,
    /// Per-class latency digests (`"2xx"`, `"429"`, `"504"`), present
    /// only for classes that occurred. Not gated: shed/timeout latency
    /// is diagnostic, not an objective.
    class_latency_ms: std::collections::BTreeMap<String, LatencyMs>,
}

#[derive(Serialize)]
struct ServerInfo {
    addr: String,
    in_process: bool,
    workers: usize,
    queue_bound: usize,
    default_deadline_ms: u64,
    world_users: usize,
    world_items: usize,
}

#[derive(Serialize)]
struct LoadgenReport {
    /// Report-layout version `benchdiff` checks before comparing.
    schema_version: u32,
    benchmark: &'static str,
    quick: bool,
    /// Build/world stamp (`benchdiff` refuses cross-world diffs).
    meta: exrec_bench::benchdiff::RunMeta,
    server: ServerInfo,
    points: Vec<PointReport>,
}

/// The deterministic request mix: mostly plain ranking, some explained
/// ranking, some single-pair explanations.
fn request_body(i: usize, n_users: usize, deadline_ms: Option<u64>) -> (&'static str, String) {
    let user = (i * 17) % n_users;
    let deadline = deadline_ms
        .map(|ms| format!(", \"deadline_ms\": {ms}"))
        .unwrap_or_default();
    match i % 10 {
        // 10%: one explained pair through /v1/explain.
        0 => (
            "/v1/explain",
            format!(
                "{{\"user\": {user}, \"item\": {}, \"interface\": \"item_average\"{deadline}}}",
                (i * 7) % 100
            ),
        ),
        // 20%: explained top-k.
        1 | 2 => (
            "/v1/recommend",
            format!("{{\"users\": [{user}], \"n\": 5, \"explain\": true{deadline}}}"),
        ),
        // 70%: plain top-k for a couple of users.
        _ => (
            "/v1/recommend",
            format!(
                "{{\"users\": [{user}, {}], \"n\": 10{deadline}}}",
                (user + 1) % n_users
            ),
        ),
    }
}

/// Sends one request on a fresh connection and classifies the outcome.
/// Latency is measured from `scheduled` (open-loop semantics).
fn fire(addr: SocketAddr, path: &str, body: &str, scheduled: Instant) -> Outcome {
    let Ok(stream) = TcpStream::connect(addr) else {
        return Outcome::Transport;
    };
    if stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .is_err()
    {
        return Outcome::Transport;
    }
    let request = format!(
        "POST {path} HTTP/1.1\r\nhost: loadgen\r\nconnection: close\r\ncontent-length: {}\r\n\r\n{body}",
        body.len(),
    );
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return Outcome::Transport,
    };
    // The server may shed (answer + close) before reading the body; a
    // write error here still has a response waiting to be read.
    let _ = writer.write_all(request.as_bytes());
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    if reader.read_line(&mut status_line).unwrap_or(0) == 0 {
        return Outcome::Transport;
    }
    let Some(status) = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
    else {
        return Outcome::Transport;
    };
    // Drain headers + body so the latency covers the full response.
    let mut content_length = 0usize;
    let mut has_trace_id = false;
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line).unwrap_or(0) == 0 {
            return Outcome::Transport;
        }
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().unwrap_or(0);
            }
            if name.trim().eq_ignore_ascii_case("x-exrec-trace-id") {
                has_trace_id = !value.trim().is_empty();
            }
        }
    }
    let mut body = vec![0u8; content_length];
    if reader.read_exact(&mut body).is_err() {
        return Outcome::Transport;
    }
    let latency_ms = scheduled.elapsed().as_secs_f64() * 1e3;
    match status {
        200..=299 if has_trace_id => Outcome::Ok2xx(latency_ms),
        200..=299 => Outcome::NoTraceHeader,
        422 => Outcome::Unprocessable422,
        429 => Outcome::Shed429(latency_ms),
        504 => Outcome::Timeout504(latency_ms),
        other => Outcome::Unexpected(other),
    }
}

/// `GET /metrics` with `Accept: text/plain`, returning the content-type
/// header and the exposition body.
fn scrape_metrics(addr: SocketAddr) -> Option<(String, String)> {
    let stream = TcpStream::connect(addr).ok()?;
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .ok()?;
    let mut writer = stream.try_clone().ok()?;
    writer
        .write_all(
            b"GET /metrics HTTP/1.1\r\nhost: loadgen\r\naccept: text/plain\r\n\
              connection: close\r\ncontent-length: 0\r\n\r\n",
        )
        .ok()?;
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line).ok()?;
    if status_line.split_whitespace().nth(1)? != "200" {
        return None;
    }
    let mut content_type = String::new();
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line).ok()? == 0 {
            return None;
        }
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            match name.trim().to_ascii_lowercase().as_str() {
                "content-type" => content_type = value.trim().to_owned(),
                "content-length" => content_length = value.trim().parse().ok()?,
                _ => {}
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).ok()?;
    Some((content_type, String::from_utf8(body).ok()?))
}

/// Scrapes the exposition endpoint and validates it: correct content
/// type, grammatically valid per [`exrec_bench::promcheck`], and the
/// `serve_*` families present. Returns the violations (empty = pass).
fn check_exposition(addr: SocketAddr) -> Vec<String> {
    let Some((content_type, body)) = scrape_metrics(addr) else {
        return vec!["metrics scrape failed (transport or non-200)".to_owned()];
    };
    let mut errors = Vec::new();
    if content_type != "text/plain; version=0.0.4" {
        errors.push(format!(
            "unexpected exposition content-type {content_type:?}"
        ));
    }
    let mut report = exrec_bench::promcheck::check(&body);
    errors.append(&mut report.errors);
    for family in ["serve_requests", "serve_accepted", "serve_connections"] {
        if !report.has_family(family) {
            errors.push(format!("missing expected family {family}"));
        }
    }
    if report.families_with_prefix("serve_latency_ns").is_empty() {
        errors.push("no serve_latency_ns_* histogram family".to_owned());
    }
    // The sweep explains 10% of requests and the in-process server
    // samples every one (`quality_sample_every: 1`), so the quality
    // estimator must have exported its families by now.
    for family in ["quality_samples", "quality_fidelity"] {
        if !report.has_family(family) {
            errors.push(format!("missing expected family {family}"));
        }
    }
    if report.families_with_prefix("quality_score").is_empty() {
        errors.push("no quality_score* family".to_owned());
    }
    errors
}

/// `GET path` on a fresh connection, returning the parsed JSON body of
/// a 200. `None` on transport failure, non-200 or unparseable body.
fn fetch_json(addr: SocketAddr, path: &str) -> Option<serde_json::Value> {
    let stream = TcpStream::connect(addr).ok()?;
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .ok()?;
    let mut writer = stream.try_clone().ok()?;
    writer
        .write_all(
            format!(
                "GET {path} HTTP/1.1\r\nhost: loadgen\r\nconnection: close\r\n\
                 content-length: 0\r\n\r\n"
            )
            .as_bytes(),
        )
        .ok()?;
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line).ok()?;
    if status_line.split_whitespace().nth(1)? != "200" {
        return None;
    }
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line).ok()? == 0 {
            return None;
        }
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().ok()?;
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).ok()?;
    serde_json::from_str(std::str::from_utf8(&body).ok()?).ok()
}

/// Smokes the four `GET /debug/*` endpoints, validating each body's
/// JSON shape after the sweep has populated profiler, flight recorder
/// and quality estimator. Returns the violations (empty = pass).
fn check_debug_endpoints(addr: SocketAddr) -> Vec<String> {
    use serde_json::Value;
    let mut errors = Vec::new();

    match fetch_json(addr, "/debug/profile") {
        None => errors.push("GET /debug/profile failed or non-200".to_owned()),
        Some(body) => {
            let routes = body.get("routes").and_then(Value::as_array);
            match routes {
                None => errors.push("/debug/profile: missing routes[]".to_owned()),
                Some(routes) => {
                    if !routes.iter().any(|r| {
                        r.get("name").and_then(Value::as_str) == Some("recommend")
                            && r.get("calls").and_then(Value::as_u64).unwrap_or(0) > 0
                    }) {
                        errors.push(
                            "/debug/profile: no profiled recommend route after the sweep"
                                .to_owned(),
                        );
                    }
                }
            }
            match body.get("collapsed").and_then(Value::as_str) {
                None => errors.push("/debug/profile: missing collapsed text".to_owned()),
                Some(text) => {
                    let malformed = text.lines().any(|line| {
                        line.rsplit_once(' ')
                            .and_then(|(stack, n)| {
                                (!stack.is_empty()).then(|| n.parse::<u64>().ok())?
                            })
                            .is_none()
                    });
                    if malformed {
                        errors
                            .push("/debug/profile: collapsed line not `stack self_ns`".to_owned());
                    }
                }
            }
        }
    }

    match fetch_json(addr, "/debug/requests") {
        None => errors.push("GET /debug/requests failed or non-200".to_owned()),
        Some(body) => {
            if body.get("capacity").and_then(Value::as_u64).is_none()
                || body.get("recorded").and_then(Value::as_u64).is_none()
            {
                errors.push("/debug/requests: missing capacity/recorded".to_owned());
            }
            match body.get("requests").and_then(Value::as_array) {
                None => errors.push("/debug/requests: missing requests[]".to_owned()),
                Some([]) => {
                    errors.push("/debug/requests: flight ring empty after the sweep".to_owned())
                }
                Some(requests) => {
                    for field in ["trace_id", "route", "outcome"] {
                        if !requests.iter().all(|r| r.get(field).is_some()) {
                            errors.push(format!("/debug/requests: record missing {field}"));
                        }
                    }
                    if !requests.iter().any(|r| {
                        r.get("phases")
                            .and_then(Value::as_array)
                            .is_some_and(|p| !p.is_empty())
                    }) {
                        errors.push(
                            "/debug/requests: no record carries a phase breakdown".to_owned(),
                        );
                    }
                }
            }
        }
    }

    match fetch_json(addr, "/debug/quality") {
        None => errors.push("GET /debug/quality failed or non-200".to_owned()),
        Some(body) => {
            match body.get("offline").and_then(Value::as_array) {
                None => errors.push("/debug/quality: missing offline[]".to_owned()),
                Some([]) => {
                    errors.push("/debug/quality: startup scoring left no offline rows".to_owned())
                }
                Some(rows) => {
                    for field in ["name", "fidelity", "evidence_f1", "coverage"] {
                        if !rows.iter().all(|r| r.get(field).is_some()) {
                            errors.push(format!("/debug/quality: offline row missing {field}"));
                        }
                    }
                }
            }
            if body
                .pointer("/online/samples")
                .and_then(Value::as_u64)
                .unwrap_or(0)
                == 0
            {
                errors.push("/debug/quality: no online quality samples after the sweep".to_owned());
            }
            match body.get("selection").and_then(Value::as_array) {
                None => errors.push("/debug/quality: missing selection[]".to_owned()),
                Some(rows) => {
                    if rows.len() != 7 {
                        errors.push(format!(
                            "/debug/quality: {} selection rows, want one per aim",
                            rows.len()
                        ));
                    }
                    for field in ["aim", "selected", "score"] {
                        if !rows.iter().all(|r| r.get(field).is_some()) {
                            errors.push(format!("/debug/quality: selection row missing {field}"));
                        }
                    }
                }
            }
        }
    }

    match fetch_json(addr, "/debug/world") {
        None => errors.push("GET /debug/world failed or non-200".to_owned()),
        Some(body) => {
            for field in ["users", "items", "ratings"] {
                if body.get(field).and_then(Value::as_u64).unwrap_or(0) == 0 {
                    errors.push(format!("/debug/world: {field} missing or zero"));
                }
            }
            if body.get("model").and_then(Value::as_str).is_none() {
                errors.push("/debug/world: missing model name".to_owned());
            }
            if body
                .pointer("/cache/hit_ratio")
                .and_then(Value::as_f64)
                .is_none()
            {
                errors.push("/debug/world: missing cache.hit_ratio".to_owned());
            }
        }
    }

    errors
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Sorts `latencies` in place and digests them (zeros when empty).
fn digest(latencies: &mut [f64]) -> LatencyMs {
    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let mean = if latencies.is_empty() {
        0.0
    } else {
        latencies.iter().sum::<f64>() / latencies.len() as f64
    };
    LatencyMs {
        p50: percentile(latencies, 0.50),
        p95: percentile(latencies, 0.95),
        p99: percentile(latencies, 0.99),
        mean,
        max: latencies.last().copied().unwrap_or(0.0),
    }
}

/// Runs one sweep point with a fixed client-thread pool executing the
/// open-loop schedule.
fn run_point(addr: SocketAddr, n_users: usize, point: &SweepPoint) -> PointReport {
    eprintln!(
        "[loadgen] point {:<14} offered {:>6.0} rps, {} requests, {} clients",
        point.name, point.offered_rps, point.requests, point.clients
    );
    let next = AtomicUsize::new(0);
    let outcomes: Mutex<Vec<Outcome>> = Mutex::new(Vec::with_capacity(point.requests));
    let interval = Duration::from_secs_f64(1.0 / point.offered_rps);
    let started = Instant::now();

    std::thread::scope(|scope| {
        for _ in 0..point.clients {
            scope.spawn(|| {
                let mut local = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= point.requests {
                        break;
                    }
                    let scheduled = started + interval.mul_f64(i as f64);
                    let now = Instant::now();
                    if scheduled > now {
                        std::thread::sleep(scheduled - now);
                    }
                    let (path, body) = request_body(i, n_users, point.deadline_ms);
                    local.push(fire(addr, path, &body, scheduled));
                }
                outcomes
                    .lock()
                    .unwrap_or_else(|p| p.into_inner())
                    .extend(local);
            });
        }
    });
    let wall = started.elapsed();

    let outcomes = outcomes.into_inner().unwrap_or_else(|p| p.into_inner());
    let mut ok_latencies: Vec<f64> = Vec::new();
    let mut shed_latencies: Vec<f64> = Vec::new();
    let mut timeout_latencies: Vec<f64> = Vec::new();
    let (mut ok, mut unprocessable, mut shed, mut timeout, mut unexpected, mut transport) =
        (0, 0, 0, 0, 0, 0);
    for outcome in &outcomes {
        match outcome {
            Outcome::Ok2xx(ms) => {
                ok += 1;
                ok_latencies.push(*ms);
            }
            Outcome::Unprocessable422 => unprocessable += 1,
            Outcome::Shed429(ms) => {
                shed += 1;
                shed_latencies.push(*ms);
            }
            Outcome::Timeout504(ms) => {
                timeout += 1;
                timeout_latencies.push(*ms);
            }
            Outcome::NoTraceHeader => {
                eprintln!("[loadgen]   2xx without x-exrec-trace-id header");
                unexpected += 1;
            }
            Outcome::Unexpected(status) => {
                eprintln!("[loadgen]   unexpected status {status}");
                unexpected += 1;
            }
            Outcome::Transport => transport += 1,
        }
    }
    let ok_digest = digest(&mut ok_latencies);
    let mut class_latency_ms = std::collections::BTreeMap::new();
    if !ok_latencies.is_empty() {
        class_latency_ms.insert("2xx".to_owned(), ok_digest.clone());
    }
    if !shed_latencies.is_empty() {
        class_latency_ms.insert("429".to_owned(), digest(&mut shed_latencies));
    }
    if !timeout_latencies.is_empty() {
        class_latency_ms.insert("504".to_owned(), digest(&mut timeout_latencies));
    }
    let report = PointReport {
        name: point.name,
        offered_rps: point.offered_rps,
        clients: point.clients,
        requests: point.requests,
        status_2xx: ok,
        unprocessable_422: unprocessable,
        shed_429: shed,
        timeout_504: timeout,
        unexpected,
        transport_errors: transport,
        wall_ms: wall.as_secs_f64() * 1e3,
        achieved_rps: outcomes.len() as f64 / wall.as_secs_f64(),
        latency_ms: ok_digest,
        class_latency_ms,
    };
    eprintln!(
        "[loadgen]   2xx {} / 422 {} / shed {} / timeout {} / bad {} / transport {}",
        ok, unprocessable, shed, timeout, unexpected, transport,
    );
    for (class, digest) in &report.class_latency_ms {
        eprintln!(
            "[loadgen]   {class}: p50 {:.1}ms p95 {:.1}ms p99 {:.1}ms mean {:.1}ms max {:.1}ms",
            digest.p50, digest.p95, digest.p99, digest.mean, digest.max
        );
    }
    report
}

fn main() {
    let mut quick = false;
    let mut out = "BENCH_serve_net.json".to_owned();
    let mut external: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => out = args.next().unwrap_or(out),
            "--addr" => external = args.next(),
            other => {
                eprintln!("usage: loadgen [--quick] [--addr HOST:PORT] [--out PATH] ({other:?}?)");
                std::process::exit(2);
            }
        }
    }

    // Edge tuning chosen so the overload point genuinely overruns the
    // queue: small admission bound, few workers.
    let server_config = ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 4,
        queue_bound: 8,
        default_deadline_ms: 2_000,
        // The smoke run validates the introspection surface too.
        debug_endpoints: true,
        ..ServerConfig::default()
    };
    let app_config = AppConfig {
        n_users: if quick { 500 } else { 2_000 },
        n_items: 300,
        density: 0.05,
        // Score every explained request so the smoke run exercises the
        // live quality estimator deterministically.
        quality_sample_every: 1,
        ..AppConfig::default()
    };
    let n_users = app_config.n_users;
    let world_desc = format!(
        "{}x{}@{}",
        app_config.n_users, app_config.n_items, app_config.density
    );

    let mut spawned: Option<ServerHandle> = None;
    let addr: SocketAddr = match &external {
        Some(addr) => addr.parse().unwrap_or_else(|_| {
            eprintln!("[loadgen] bad --addr {addr:?}");
            std::process::exit(2);
        }),
        None => {
            eprintln!(
                "[loadgen] spawning server in-process ({} users, {} workers, queue {})",
                n_users, server_config.workers, server_config.queue_bound
            );
            let telemetry = Telemetry::default();
            let app = ExplainApp::new(app_config, telemetry.clone());
            let handle = server::start(app, server_config.clone(), telemetry)
                .expect("spawn loopback server");
            let addr = handle.addr();
            spawned = Some(handle);
            addr
        }
    };

    // Warm the similarity cache so the sweep measures steady state.
    eprintln!("[loadgen] warmup");
    for i in 0..24 {
        let (path, body) = request_body(i, n_users, None);
        let _ = fire(addr, path, &body, Instant::now());
    }

    let sweep = if quick { QUICK_SWEEP } else { FULL_SWEEP };
    let points: Vec<PointReport> = sweep
        .iter()
        .map(|point| run_point(addr, n_users, point))
        .collect();

    let report = LoadgenReport {
        schema_version: exrec_bench::benchdiff::SCHEMA_VERSION,
        benchmark: "serve_net",
        quick,
        meta: exrec_bench::benchdiff::RunMeta::capture(world_desc, server_config.workers),
        server: ServerInfo {
            addr: addr.to_string(),
            in_process: external.is_none(),
            workers: server_config.workers,
            queue_bound: server_config.queue_bound,
            default_deadline_ms: server_config.default_deadline_ms,
            world_users: n_users,
            world_items: 300,
        },
        points,
    };
    // Scrape /metrics as a Prometheus client would and validate the
    // exposition before the server goes away.
    eprintln!("[loadgen] validating /metrics exposition");
    let exposition_errors = check_exposition(addr);
    // The in-process server runs with --debug-endpoints; validate the
    // introspection surface too. An external server may not have the
    // flag on, so only the spawned case is gated.
    let debug_errors = if spawned.is_some() {
        eprintln!("[loadgen] validating /debug endpoints");
        check_debug_endpoints(addr)
    } else {
        Vec::new()
    };

    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    // Parse it back before writing: CI fails on a report that does not
    // round-trip (the "latency-report parse error" gate).
    if serde_json::from_str::<serde_json::Value>(&json).is_err() {
        eprintln!("[loadgen] FAIL: report does not parse back");
        std::process::exit(1);
    }
    std::fs::write(&out, &json).expect("write report");
    eprintln!("[loadgen] wrote {out}");

    if let Some(handle) = spawned {
        let quality = handle.quality_snapshot();
        handle.shutdown();
        if quality.samples > 0 {
            eprintln!(
                "[loadgen] explanation quality at drain ({} samples, mean score {:.3}):",
                quality.samples, quality.mean_score
            );
            for s in &quality.interfaces {
                eprintln!(
                    "[loadgen]   {:<24} {} samples, score {:.3}, fidelity {:.3}",
                    s.name, s.samples, s.score, s.fidelity
                );
            }
        }
    }

    let bad: usize = report
        .points
        .iter()
        .map(|p| p.unexpected + p.transport_errors)
        .sum();
    let ok: usize = report.points.iter().map(|p| p.status_2xx).sum();
    if bad > 0 {
        eprintln!("[loadgen] FAIL: {bad} responses outside the expected classes");
        std::process::exit(1);
    }
    if ok == 0 {
        eprintln!("[loadgen] FAIL: no successful responses at all");
        std::process::exit(1);
    }
    if !exposition_errors.is_empty() {
        for error in &exposition_errors {
            eprintln!("[loadgen]   exposition: {error}");
        }
        eprintln!(
            "[loadgen] FAIL: /metrics exposition invalid ({} violations)",
            exposition_errors.len()
        );
        std::process::exit(1);
    }
    if !debug_errors.is_empty() {
        for error in &debug_errors {
            eprintln!("[loadgen]   debug: {error}");
        }
        eprintln!(
            "[loadgen] FAIL: /debug endpoints invalid ({} violations)",
            debug_errors.len()
        );
        std::process::exit(1);
    }
    eprintln!("[loadgen] OK");
}

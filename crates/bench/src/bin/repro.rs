//! `repro` — regenerates every table, figure and study of the reproduced
//! survey (Tintarev & Masthoff, ICDE'07 workshops).
//!
//! ```text
//! repro                 # everything
//! repro --table 3       # one of Tables 1-4
//! repro --figure 2      # one of Figures 1-3
//! repro --study E-PERS  # one study (E-PERS, E-SHIFT, E-EFK, E-EFC,
//!                       #  E-TRUST, E-TRA, E-SCR, E-SAT, A-TRADE,
//!                       #  E-MODAL, E-ACC)
//! repro --emulations    # the ten Table 4 live emulations
//! repro --json DIR      # also dump study reports (and telemetry) as
//!                       # JSON into DIR
//! repro --parallel [N]  # fan the full study suite out over N worker
//!                       # threads (default: available parallelism);
//!                       # reports are identical to the sequential run
//! repro --offline-metrics [--quick] [--out PATH]
//!                       # score every explanation interface x aim with
//!                       # the offline quality suite and write a
//!                       # benchdiff-comparable quality_report.json
//!                       # (--quick shrinks worlds and sample counts
//!                       #  for CI smoke runs)
//! ```
//!
//! Studies run under an `exrec-obs` telemetry registry; whenever at
//! least one study ran, the final metrics snapshot (per-study wall
//! clock, per-aim durations, simulated-user throughput) is printed
//! after the reports.

use exrec_bench::{figure1_text, figure2_treemap, figure2_world, figure3_text};
use exrec_eval::StudyReport;
use exrec_obs::Telemetry;
use exrec_registry::tables;

fn print_table(n: u32) {
    let spec = match n {
        1 => tables::table1(),
        2 => tables::table2(),
        3 => tables::table3(),
        4 => tables::table4(),
        _ => {
            eprintln!("no table {n}; tables are 1-4");
            std::process::exit(2);
        }
    };
    println!("{}", spec.render_ascii());
}

fn print_figure(n: u32) {
    match n {
        1 => {
            println!("-- Figure 1: scrutable adaptive hypertext (SASY) --\n");
            println!("{}", figure1_text(0xF1).expect("figure 1 generates"));
        }
        2 => {
            println!("-- Figure 2: treemap visualization of news --\n");
            let world = figure2_world();
            let map = figure2_treemap(&world);
            println!("{}", map.render_ascii(72, 20));
            println!(
                "({} stories; colour=topic, area=popularity, shade=recency; \
                 mean aspect ratio {:.2})",
                map.cells.len(),
                map.mean_aspect()
            );
        }
        3 => {
            println!("-- Figure 3: influence of ratings on a recommendation (LIBRA) --\n");
            println!("{}", figure3_text(0xF3).expect("figure 3 generates"));
        }
        _ => {
            eprintln!("no figure {n}; figures are 1-3");
            std::process::exit(2);
        }
    }
}

const ALL_STUDIES: [&str; 11] = exrec_eval::STUDY_IDS;

fn print_emulations() {
    for emu in exrec_registry::live::all() {
        println!("────────────────────────────────────────────────");
        match (emu.run)(0xACE) {
            Ok(t) => println!("{t}"),
            Err(e) => println!("{} FAILED: {e}", emu.name),
        }
    }
}

/// Runs the offline explanation-quality suite and writes a
/// schema-stamped, benchdiff-comparable report.
///
/// The report is a pure function of the config: `meta.threads` is
/// stamped `1` regardless of the worker count so reports produced at
/// different parallelism stay comparable (thread-count independence is
/// covered by the suite's own tests).
fn run_offline_metrics(quick: bool, out: &str, threads: usize) {
    use exrec_bench::benchdiff::RunMeta;
    use exrec_eval::quality::QualityConfig;
    use serde_json::Value;

    let config = if quick {
        QualityConfig::quick()
    } else {
        QualityConfig::default()
    };
    eprintln!(
        "[repro] scoring {} interfaces x {} aims (quick: {quick})",
        exrec_core::interfaces::InterfaceId::ALL.len(),
        exrec_core::aims::Aim::ALL.len(),
    );
    let report = exrec_eval::quality::run(&config, threads);

    println!(
        "-- Offline explanation-quality report ({}) --\n",
        report.world
    );
    println!(
        "{:<16} {:<22} {:>7}   {:<22} {:>7}",
        "aim", "best interface", "score", "static default", "score"
    );
    for aim in &report.aims {
        println!(
            "{:<16} {:<22} {:>7.3}   {:<22} {:>7.3}{}",
            aim.name,
            aim.best_interface,
            aim.score,
            aim.static_default,
            aim.static_score,
            if aim.best_interface != aim.static_default {
                "  *"
            } else {
                ""
            }
        );
    }
    println!("\n(* measured selection differs from the static default)");
    let measured = report.interfaces.iter().filter(|q| q.samples > 0).count();
    println!(
        "{} of {} interfaces measurable under the suite's model pairings",
        measured,
        report.interfaces.len()
    );

    // Stamp the benchmark name and run meta into the report object so
    // `benchdiff` accepts it (same shape contract as BENCH_serve.json).
    let mut value: Value = serde_json::from_str(&report.to_json()).expect("report round-trips");
    if let Value::Obj(fields) = &mut value {
        let meta = RunMeta::capture(report.world.clone(), 1);
        fields.insert(
            1,
            (
                "benchmark".to_owned(),
                Value::Str("offline_quality".to_owned()),
            ),
        );
        fields.insert(2, ("meta".to_owned(), serde_json::to_value(&meta)));
    }
    let json = serde_json::to_string_pretty(&value).expect("serialize report");
    std::fs::write(out, json).expect("write quality report");
    eprintln!("wrote {out}");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut json_dir: Option<String> = None;
    let mut parallel: Option<usize> = None;
    let mut offline_metrics = false;
    let mut quick = false;
    let mut out = "quality_report.json".to_owned();
    let mut actions: Vec<(String, String)> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--offline-metrics" => {
                offline_metrics = true;
                i += 1;
            }
            "--quick" => {
                quick = true;
                i += 1;
            }
            "--out" => {
                if i + 1 >= args.len() {
                    eprintln!("--out requires a path");
                    std::process::exit(2);
                }
                out = args[i + 1].clone();
                i += 2;
            }
            "--table" | "--figure" | "--study" => {
                if i + 1 >= args.len() {
                    eprintln!("{} requires an argument", args[i]);
                    std::process::exit(2);
                }
                actions.push((args[i].clone(), args[i + 1].clone()));
                i += 2;
            }
            "--emulations" => {
                actions.push(("--emulations".to_owned(), String::new()));
                i += 1;
            }
            "--json" => {
                if i + 1 >= args.len() {
                    eprintln!("--json requires a directory");
                    std::process::exit(2);
                }
                json_dir = Some(args[i + 1].clone());
                i += 2;
            }
            "--parallel" => {
                // Optional numeric argument; 0 = available parallelism.
                if i + 1 < args.len() {
                    if let Ok(n) = args[i + 1].parse::<usize>() {
                        parallel = Some(n);
                        i += 2;
                        continue;
                    }
                }
                parallel = Some(0);
                i += 1;
            }
            "--all" => {
                i += 1;
            }
            other => {
                eprintln!("unknown argument {other}");
                std::process::exit(2);
            }
        }
    }

    if offline_metrics {
        run_offline_metrics(quick, &out, parallel.unwrap_or(0));
        return;
    }

    let telemetry = Telemetry::default();
    let mut reports: Vec<StudyReport> = Vec::new();
    if actions.is_empty() {
        for t in 1..=4 {
            print_table(t);
        }
        for f in 1..=3 {
            print_figure(f);
        }
        match parallel {
            Some(threads) => {
                // Run the whole suite on the worker pool, then print in
                // canonical order (reports are scheduling-independent).
                reports = exrec_eval::run_all_studies_with_threads(&telemetry, threads);
                for report in &reports {
                    println!("{}", report.render_ascii());
                }
            }
            None => {
                for id in ALL_STUDIES {
                    let report = exrec_eval::run_study_with(&telemetry, id).expect("known id");
                    println!("{}", report.render_ascii());
                    reports.push(report);
                }
            }
        }
        print_emulations();
    } else {
        for (flag, value) in actions {
            match flag.as_str() {
                "--table" => print_table(value.parse().unwrap_or(0)),
                "--figure" => print_figure(value.parse().unwrap_or(0)),
                "--study" => match exrec_eval::run_study_with(&telemetry, &value) {
                    Some(report) => {
                        println!("{}", report.render_ascii());
                        reports.push(report);
                    }
                    None => {
                        eprintln!("unknown study {value}; options: {ALL_STUDIES:?}");
                        std::process::exit(2);
                    }
                },
                "--emulations" => print_emulations(),
                _ => unreachable!(),
            }
        }
    }

    let metrics = telemetry.report();
    if !metrics.is_empty() {
        println!("{}", metrics.render_ascii());
    }

    if let Some(dir) = json_dir {
        std::fs::create_dir_all(&dir).expect("create json dir");
        for report in &reports {
            let path = format!("{dir}/{}.json", report.id);
            std::fs::write(&path, report.to_json()).expect("write report");
            eprintln!("wrote {path}");
        }
        if !metrics.is_empty() {
            let path = format!("{dir}/telemetry.json");
            let json = serde_json::to_string_pretty(&metrics).expect("serialize telemetry");
            std::fs::write(&path, json).expect("write telemetry");
            eprintln!("wrote {path}");
        }
    }
}

//! Validator for the Prometheus text exposition format (version 0.0.4)
//! as produced by `GET /metrics` with `Accept: text/plain`.
//!
//! The loadgen smoke test scrapes the edge after a sweep and runs the
//! body through [`check`]; CI fails on any malformed line or missing
//! expected family. The checks cover the grammar subset the toolkit
//! emits (no timestamps, no `# HELP`-only families):
//!
//! * every line is blank, a comment, a `# TYPE` declaration, or a
//!   sample `name{labels} value`;
//! * metric names match `[a-zA-Z_:][a-zA-Z0-9_:]*`;
//! * each family is declared by exactly one `# TYPE` line *before* its
//!   first sample, with a known type;
//! * every sample belongs to a declared family (for a histogram `f`,
//!   the members are `f_bucket`, `f_sum` and `f_count`);
//! * values parse as floats, with `+Inf`/`-Inf`/`NaN` spelled exactly;
//! * histogram buckets are cumulative (non-decreasing in order), end
//!   with `le="+Inf"`, and `_count` equals the `+Inf` bucket.

use std::collections::BTreeMap;

/// Result of validating one exposition body.
#[derive(Debug, Default)]
pub struct ExpositionReport {
    /// Families declared by `# TYPE` lines, with their declared type.
    pub families: BTreeMap<String, String>,
    /// Total sample lines parsed.
    pub samples: usize,
    /// Everything wrong, one message per violation (empty = valid).
    pub errors: Vec<String>,
}

impl ExpositionReport {
    /// True when the body satisfied every check.
    pub fn is_ok(&self) -> bool {
        self.errors.is_empty()
    }

    /// True when `family` was declared via `# TYPE`.
    pub fn has_family(&self, family: &str) -> bool {
        self.families.contains_key(family)
    }

    /// Declared families whose name starts with `prefix`.
    pub fn families_with_prefix(&self, prefix: &str) -> Vec<&str> {
        self.families
            .keys()
            .filter(|f| f.starts_with(prefix))
            .map(String::as_str)
            .collect()
    }
}

/// Is `name` a valid metric/family name?
fn valid_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Parses an exposition value: a float, or the exact spellings `+Inf`,
/// `-Inf`, `NaN`.
fn parse_value(s: &str) -> Option<f64> {
    match s {
        "+Inf" => Some(f64::INFINITY),
        "-Inf" => Some(f64::NEG_INFINITY),
        "NaN" => Some(f64::NAN),
        // Reject the float-parser spellings the format does not allow.
        "inf" | "Inf" | "-inf" | "-Inf " | "nan" => None,
        other => other.parse().ok(),
    }
}

/// Splits a sample line into (name, label block, value), respecting
/// quoted label values (which may contain spaces and escaped quotes).
fn split_sample(line: &str) -> Option<(&str, Option<&str>, &str)> {
    if let Some(brace) = line.find('{') {
        let name = &line[..brace];
        let rest = &line[brace + 1..];
        // Scan for the closing brace outside quotes.
        let mut in_quotes = false;
        let mut escaped = false;
        let mut close = None;
        for (i, c) in rest.char_indices() {
            if escaped {
                escaped = false;
                continue;
            }
            match c {
                '\\' if in_quotes => escaped = true,
                '"' => in_quotes = !in_quotes,
                '}' if !in_quotes => {
                    close = Some(i);
                    break;
                }
                _ => {}
            }
        }
        let close = close?;
        let labels = &rest[..close];
        let value = rest[close + 1..].trim();
        Some((name, Some(labels), value))
    } else {
        let mut parts = line.splitn(2, [' ', '\t']);
        let name = parts.next()?;
        let value = parts.next()?.trim();
        Some((name, None, value))
    }
}

/// Extracts the `le` label value from a bucket's label block.
fn le_of(labels: &str) -> Option<String> {
    for pair in labels.split(',') {
        let (key, value) = pair.split_once('=')?;
        if key.trim() == "le" {
            return Some(value.trim().trim_matches('"').to_owned());
        }
    }
    None
}

/// The family a sample name belongs to, given the declared families.
/// Histogram members map back through their `_bucket`/`_sum`/`_count`
/// suffix; everything else must match a family exactly.
fn family_of<'a>(name: &'a str, families: &BTreeMap<String, String>) -> Option<(&'a str, bool)> {
    if families.contains_key(name) {
        return Some((name, false));
    }
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(stem) = name.strip_suffix(suffix) {
            if families.get(stem).map(String::as_str) == Some("histogram") {
                return Some((stem, true));
            }
        }
    }
    None
}

/// Validates one exposition body. Never panics on malformed input —
/// every violation lands in [`ExpositionReport::errors`].
pub fn check(text: &str) -> ExpositionReport {
    let mut report = ExpositionReport::default();
    // Per histogram family: buckets in file order, and the _count value.
    let mut buckets: BTreeMap<String, Vec<(String, f64)>> = BTreeMap::new();
    let mut counts: BTreeMap<String, f64> = BTreeMap::new();

    for (lineno, line) in text.lines().enumerate() {
        let lineno = lineno + 1;
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let comment = comment.trim_start();
            if let Some(decl) = comment.strip_prefix("TYPE ") {
                let mut parts = decl.split_whitespace();
                let (name, kind) = match (parts.next(), parts.next(), parts.next()) {
                    (Some(name), Some(kind), None) => (name, kind),
                    _ => {
                        report.errors.push(format!(
                            "line {lineno}: malformed TYPE declaration: {line:?}"
                        ));
                        continue;
                    }
                };
                if !valid_name(name) {
                    report
                        .errors
                        .push(format!("line {lineno}: invalid family name {name:?}"));
                    continue;
                }
                if !matches!(
                    kind,
                    "counter" | "gauge" | "histogram" | "summary" | "untyped"
                ) {
                    report
                        .errors
                        .push(format!("line {lineno}: unknown metric type {kind:?}"));
                    continue;
                }
                if report
                    .families
                    .insert(name.to_owned(), kind.to_owned())
                    .is_some()
                {
                    report
                        .errors
                        .push(format!("line {lineno}: duplicate TYPE for family {name:?}"));
                }
            }
            // `# HELP` and free-form comments are legal and ignored.
            continue;
        }

        // A sample line.
        let Some((name, labels, value)) = split_sample(line) else {
            report
                .errors
                .push(format!("line {lineno}: unparseable sample line: {line:?}"));
            continue;
        };
        if !valid_name(name) {
            report
                .errors
                .push(format!("line {lineno}: invalid metric name {name:?}"));
            continue;
        }
        let Some(value) = parse_value(value) else {
            report
                .errors
                .push(format!("line {lineno}: unparseable value in: {line:?}"));
            continue;
        };
        report.samples += 1;
        let Some((family, is_histogram_member)) = family_of(name, &report.families) else {
            report.errors.push(format!(
                "line {lineno}: sample {name:?} has no preceding TYPE declaration"
            ));
            continue;
        };
        if is_histogram_member {
            if name.ends_with("_bucket") {
                match labels.and_then(le_of) {
                    Some(le) => buckets
                        .entry(family.to_owned())
                        .or_default()
                        .push((le, value)),
                    None => report.errors.push(format!(
                        "line {lineno}: histogram bucket without an le label: {line:?}"
                    )),
                }
            } else if name.ends_with("_count") {
                counts.insert(family.to_owned(), value);
            }
        }
    }

    // Histogram shape: cumulative, +Inf-terminated, _count consistent.
    for (family, series) in &buckets {
        let mut last = f64::NEG_INFINITY;
        for (le, value) in series {
            if *value < last {
                report.errors.push(format!(
                    "histogram {family}: bucket le={le} count {value} below previous {last} \
                     (buckets must be cumulative)"
                ));
            }
            last = *value;
        }
        match series.last() {
            Some((le, inf_count)) if le == "+Inf" => match counts.get(family) {
                Some(count) if count == inf_count => {}
                Some(count) => report.errors.push(format!(
                    "histogram {family}: _count {count} != +Inf bucket {inf_count}"
                )),
                None => report
                    .errors
                    .push(format!("histogram {family}: missing _count sample")),
            },
            _ => report.errors.push(format!(
                "histogram {family}: bucket series does not end with le=\"+Inf\""
            )),
        }
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_a_well_formed_exposition() {
        let text = "\
# TYPE serve_requests counter
serve_requests 17
# TYPE serve_queue_depth gauge
serve_queue_depth 0.5
# TYPE span_ns_batch histogram
span_ns_batch_bucket{le=\"1024\"} 2
span_ns_batch_bucket{le=\"2048\"} 5
span_ns_batch_bucket{le=\"+Inf\"} 5
span_ns_batch_sum 7000
span_ns_batch_count 5
";
        let report = check(text);
        assert!(report.is_ok(), "{:?}", report.errors);
        assert_eq!(report.samples, 7);
        assert!(report.has_family("serve_requests"));
        assert_eq!(
            report.families_with_prefix("serve_"),
            vec!["serve_queue_depth", "serve_requests"]
        );
        assert_eq!(report.families["span_ns_batch"], "histogram");
    }

    #[test]
    fn rejects_undeclared_and_malformed_samples() {
        let report = check("undeclared_metric 1\n# TYPE ok counter\nok not_a_number\n");
        assert_eq!(report.errors.len(), 2);
        assert!(report.errors[0].contains("no preceding TYPE"));
        assert!(report.errors[1].contains("unparseable value"));
    }

    #[test]
    fn rejects_bad_type_lines_and_names() {
        let report = check("# TYPE 9lives counter\n# TYPE ok nonsense\n# TYPE trailing\n");
        assert_eq!(report.errors.len(), 3);
        let report = check("# TYPE ok counter\n# TYPE ok counter\nok 1\n");
        assert_eq!(report.errors.len(), 1);
        assert!(report.errors[0].contains("duplicate TYPE"));
    }

    #[test]
    fn rejects_non_cumulative_or_unterminated_histograms() {
        let text = "\
# TYPE h histogram
h_bucket{le=\"1\"} 5
h_bucket{le=\"2\"} 3
h_bucket{le=\"+Inf\"} 5
h_sum 9
h_count 4
";
        let report = check(text);
        assert_eq!(report.errors.len(), 2, "{:?}", report.errors);
        assert!(report.errors[0].contains("cumulative"));
        assert!(report.errors[1].contains("_count 4 != +Inf bucket 5"));

        let report = check("# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_count 1\n");
        assert_eq!(report.errors.len(), 1);
        assert!(report.errors[0].contains("+Inf"));
    }

    #[test]
    fn special_values_and_quoted_labels_parse() {
        let text = "\
# TYPE g gauge
g{note=\"has } and \\\" inside\"} +Inf
g{other=\"x\"} NaN
g -Inf
";
        let report = check(text);
        assert!(report.is_ok(), "{:?}", report.errors);
        assert_eq!(report.samples, 3);
        // Lowercase spellings are NOT part of the format.
        let report = check("# TYPE g gauge\ng inf\n");
        assert_eq!(report.errors.len(), 1);
    }
}

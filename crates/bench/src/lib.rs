//! # exrec-bench
//!
//! Benchmark harness and reproduction driver. The `repro` binary
//! regenerates every table and figure of the reproduced survey plus all
//! Section 3 studies; the Criterion benches under `benches/` measure the
//! toolkit's moving parts (one bench group per experiment artifact, plus
//! performance benches for the algorithms).
//!
//! Small, shared workload builders live here so the binary and the
//! benches agree on what they measure.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod benchdiff;
pub mod doccheck;
pub mod promcheck;

use exrec_core::influence::loo_influences;
use exrec_core::render::{PlainRenderer, Render};
use exrec_data::synth::{movies, news, WorldConfig};
use exrec_data::World;
use exrec_present::treemap::{layout, Layout, Rect, Treemap, TreemapNode};
use exrec_types::Result;

/// Standard benchmark movie world.
pub fn bench_movie_world() -> World {
    movies::generate(&WorldConfig {
        n_users: 100,
        n_items: 80,
        density: 0.2,
        seed: 0xBE,
        ..WorldConfig::default()
    })
}

/// The Figure 2 news treemap: topic → colour group, popularity → area,
/// recency → shade.
pub fn figure2_treemap(world: &World) -> Treemap {
    let nodes: Vec<TreemapNode> = world
        .catalog
        .iter()
        .map(|it| TreemapNode {
            label: it.title.clone(),
            weight: it.attrs.num("popularity").unwrap_or(1.0).max(1.0),
            group: world.prototypes[it.id.index()],
            shade: it.attrs.num("recency").unwrap_or(50.0) / 100.0,
        })
        .collect();
    layout(nodes, Rect::UNIT, Layout::Squarified)
}

/// Builds the news world used by Figure 2.
pub fn figure2_world() -> World {
    news::generate(&WorldConfig {
        n_users: 30,
        n_items: 40,
        density: 0.2,
        seed: 0xF2,
        ..WorldConfig::default()
    })
}

/// The Figure 3 reproduction: LIBRA-style influence list rendered as
/// text, via the registry's live emulation.
///
/// # Errors
///
/// Propagates the emulation's errors.
pub fn figure3_text(seed: u64) -> Result<String> {
    exrec_registry::live::run("libra", seed)
}

/// The Figure 1 reproduction: SASY scrutable profile transcript.
///
/// # Errors
///
/// Propagates the emulation's errors.
pub fn figure1_text(seed: u64) -> Result<String> {
    exrec_registry::live::run("sasy", seed)
}

/// A generic leave-one-out influence workload over the bench world
/// (exercises the algorithm-agnostic Figure 3 path).
///
/// # Errors
///
/// Propagates prediction errors.
pub fn loo_influence_workload(world: &World) -> Result<usize> {
    use exrec_algo::{Ctx, Recommender, UserKnn};
    let knn = UserKnn::default();
    let ctx = Ctx::new(&world.ratings, &world.catalog);
    for u in world.ratings.users() {
        if world.ratings.user_ratings(u).len() < 5 {
            continue;
        }
        for i in world.catalog.ids() {
            if world.ratings.rating(u, i).is_none() && knn.predict(&ctx, u, i).is_ok() {
                let infl = loo_influences(&knn, &world.ratings, &world.catalog, u, i)?;
                return Ok(infl.len());
            }
        }
    }
    Ok(0)
}

/// Renders an explanation for benchmarking the full explain pipeline.
pub fn render_explanation(explanation: &exrec_core::explanation::Explanation) -> String {
    PlainRenderer.render(explanation)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure2_layout_covers_unit_square() {
        let world = figure2_world();
        let t = figure2_treemap(&world);
        assert_eq!(t.cells.len(), world.catalog.len());
        let area: f64 = t.cells.iter().map(|(_, r)| r.area()).sum();
        assert!((area - 1.0).abs() < 1e-6);
    }

    #[test]
    fn figure_texts_generate() {
        assert!(figure1_text(1).unwrap().contains("SASY"));
        assert!(figure3_text(1).unwrap().contains("influenced"));
    }

    #[test]
    fn loo_workload_runs() {
        let world = bench_movie_world();
        let n = loo_influence_workload(&world).unwrap();
        assert!(n > 0, "expected at least one influence");
    }
}

//! Schema-versioned comparison of benchmark reports — the
//! perf-regression gate behind the `benchdiff` binary.
//!
//! The serving benchmarks (`serve_bench` → `BENCH_serve.json`,
//! `loadgen` → `BENCH_serve_net.json`) stamp every report with a
//! [`SCHEMA_VERSION`] and a [`RunMeta`] block (git revision, world
//! shape, thread count). [`compare`] takes two such reports and walks
//! their numeric leaves generically:
//!
//! * **throughput metrics** (`requests_per_sec`, `speedup_*`) are
//!   higher-better;
//! * **latency metrics** (`latency_ms.{p50,p95,p99,mean,max}`) are
//!   lower-better;
//! * **accuracy metrics** (`recall_at_k`, offline quality leaves) are
//!   higher-better;
//! * everything else (counts, configuration echoes) is ignored.
//!
//! A comparison **refuses** (instead of reporting a bogus pass or
//! fail) when the reports disagree on schema version, benchmark name,
//! world shape or thread count — numbers from different worlds are not
//! comparable. Git revisions are *expected* to differ; comparing
//! across revisions is the point.
//!
//! The `benchdiff` binary exits `0` when every shared metric is within
//! the threshold, `1` on any regression, and `2` on usage errors or
//! incompatible reports, so CI can gate merges on it directly.

use serde_json::Value;
use std::collections::BTreeMap;

/// Build/world metadata stamped into every benchmark report; shared
/// with the serving edge's `/healthz` build block via `exrec_obs`.
pub use exrec_obs::meta::RunMeta;

/// Version of the report layout `compare` understands. Bump when a
/// report's metric paths or meta block change incompatibly.
pub const SCHEMA_VERSION: u32 = 1;

/// Which way a metric improves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Bigger is better (throughput, speedups).
    HigherBetter,
    /// Smaller is better (latency).
    LowerBetter,
}

/// One metric present in both reports, with its relative change.
#[derive(Debug, Clone)]
pub struct MetricDelta {
    /// Dot-joined path of the metric (array elements keyed by their
    /// `name` field when present).
    pub path: String,
    /// Improvement direction the comparison applied.
    pub direction: Direction,
    /// Baseline value.
    pub old: f64,
    /// Candidate value.
    pub new: f64,
    /// `(new − old) / old × 100`, signed.
    pub change_pct: f64,
    /// Whether the change worsens past the threshold.
    pub regressed: bool,
}

/// Outcome of [`compare`].
#[derive(Debug, Clone)]
pub struct Comparison {
    /// Every metric present in both reports, in path order.
    pub deltas: Vec<MetricDelta>,
    /// Metric paths present only in the baseline (workloads dropped).
    pub only_old: Vec<String>,
    /// Metric paths present only in the candidate (workloads added).
    pub only_new: Vec<String>,
}

impl Comparison {
    /// The deltas that regressed past the threshold.
    pub fn regressions(&self) -> Vec<&MetricDelta> {
        self.deltas.iter().filter(|d| d.regressed).collect()
    }
}

/// Compares two benchmark reports (parsed JSON), flagging metrics that
/// worsened by more than `threshold_pct` percent.
///
/// # Errors
///
/// Returns a human-readable refusal when the reports cannot be
/// compared: missing or mismatched `schema_version`, `benchmark`,
/// `meta.world` or `meta.threads`, or a schema version this build does
/// not understand.
pub fn compare(old: &Value, new: &Value, threshold_pct: f64) -> Result<Comparison, String> {
    for pointer in [
        "/schema_version",
        "/benchmark",
        "/meta/world",
        "/meta/threads",
    ] {
        require_match(old, new, pointer)?;
    }
    let version = old
        .pointer("/schema_version")
        .and_then(Value::as_u64)
        .unwrap_or(0);
    if version != u64::from(SCHEMA_VERSION) {
        return Err(format!(
            "schema_version {version} unsupported (this build understands {SCHEMA_VERSION})"
        ));
    }

    let old_metrics = collect_metrics(old);
    let new_metrics = collect_metrics(new);
    let mut deltas = Vec::new();
    let mut only_old = Vec::new();
    for (path, &(direction, old_value)) in &old_metrics {
        let Some(&(_, new_value)) = new_metrics.get(path) else {
            only_old.push(path.clone());
            continue;
        };
        // A zero baseline (e.g. latency digest with no samples) has no
        // meaningful relative change; skip rather than divide by it.
        if old_value <= 0.0 {
            continue;
        }
        let change_pct = (new_value - old_value) / old_value * 100.0;
        let regressed = match direction {
            Direction::HigherBetter => change_pct < -threshold_pct,
            Direction::LowerBetter => change_pct > threshold_pct,
        };
        deltas.push(MetricDelta {
            path: path.clone(),
            direction,
            old: old_value,
            new: new_value,
            change_pct,
            regressed,
        });
    }
    let only_new = new_metrics
        .keys()
        .filter(|path| !old_metrics.contains_key(*path))
        .cloned()
        .collect();
    Ok(Comparison {
        deltas,
        only_old,
        only_new,
    })
}

/// Requires the same value at `pointer` in both reports.
fn require_match(old: &Value, new: &Value, pointer: &str) -> Result<(), String> {
    match (old.pointer(pointer), new.pointer(pointer)) {
        (Some(a), Some(b)) if a == b => Ok(()),
        (Some(a), Some(b)) => Err(format!(
            "{pointer} mismatch: {} vs {}",
            serde_json::to_string(a).unwrap_or_default(),
            serde_json::to_string(b).unwrap_or_default(),
        )),
        _ => Err(format!(
            "{pointer} missing from a report (regenerate with the current benchmark writers)"
        )),
    }
}

/// Improvement direction of the leaf at `path`, `None` for
/// non-performance numbers (counts, configuration echoes).
fn direction_of(path: &[String]) -> Option<Direction> {
    let leaf = path.last()?.as_str();
    if leaf == "requests_per_sec" || leaf.starts_with("speedup_") {
        return Some(Direction::HigherBetter);
    }
    // The pruned neighbour scan's accuracy leaf (`serve_bench` →
    // `workloads.*.scan.recall_at_k`): losing recall is a regression
    // even when latency improves (docs/kernels.md#the-recallk-guarantee).
    if leaf == "recall_at_k" {
        return Some(Direction::HigherBetter);
    }
    let parent = path.len().checked_sub(2).map(|i| path[i].as_str());
    if parent == Some("latency_ms") && matches!(leaf, "p50" | "p95" | "p99" | "mean" | "max") {
        return Some(Direction::LowerBetter);
    }
    // Offline explanation-quality reports (`repro --offline-metrics` →
    // `quality_report.json`, benchmark `offline_quality`): per-interface
    // fidelity/precision/recall/coverage and per-aim scores are
    // higher-better quality metrics; sample counts, provenance depth
    // and reading cost stay unclassified (structural, not gated).
    let top = path.first().map(|s| s.as_str());
    if top == Some("interfaces")
        && matches!(
            leaf,
            "fidelity" | "evidence_precision" | "evidence_recall" | "evidence_f1" | "coverage"
        )
    {
        return Some(Direction::HigherBetter);
    }
    if top == Some("aims") && matches!(leaf, "score" | "static_score") {
        return Some(Direction::HigherBetter);
    }
    None
}

/// Walks a report, collecting every direction-classified numeric leaf
/// keyed by dot-joined path. Array elements are keyed by their `name`
/// field when present (workloads, sweep points), else by index, so
/// paths stay stable across runs.
fn collect_metrics(value: &Value) -> BTreeMap<String, (Direction, f64)> {
    let mut out = BTreeMap::new();
    let mut path = Vec::new();
    walk(value, &mut path, &mut out);
    out
}

fn walk(value: &Value, path: &mut Vec<String>, out: &mut BTreeMap<String, (Direction, f64)>) {
    match value {
        Value::Obj(fields) => {
            for (key, child) in fields {
                path.push(key.clone());
                walk(child, path, out);
                path.pop();
            }
        }
        Value::Arr(items) => {
            for (index, child) in items.iter().enumerate() {
                let label = child
                    .get("name")
                    .and_then(Value::as_str)
                    .map(str::to_owned)
                    .unwrap_or_else(|| index.to_string());
                path.push(label);
                walk(child, path, out);
                path.pop();
            }
        }
        Value::Num(n) => {
            if let Some(direction) = direction_of(path) {
                out.insert(path.join("."), (direction, *n));
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The vendored `serde_json` has no `json!` macro, so fixtures are
    // formatted JSON strings parsed through the real deserializer —
    // which also exercises the path `benchdiff` takes on disk files.
    fn parse(text: &str) -> Value {
        serde_json::from_str(text).expect("fixture JSON parses")
    }

    fn workload_json(name: &str, n_users: u64, requests: u64, rps: f64, p99: f64) -> String {
        format!(
            r#"{{
                "name": "{name}",
                "n_users": {n_users},
                "sequential": {{"requests": {requests}, "requests_per_sec": {rps:?}}},
                "latency_ms": {{"p50": {p50:?}, "p99": {p99:?}}},
                "speedup_batch_vs_sequential": 3.0
            }}"#,
            p50 = p99 / 2.0,
        )
    }

    fn report_with(
        schema: u32,
        git_rev: &str,
        world: &str,
        threads: u64,
        workloads: &[String],
    ) -> Value {
        parse(&format!(
            r#"{{
                "schema_version": {schema},
                "benchmark": "serve_bench",
                "quick": true,
                "meta": {{"git_rev": "{git_rev}", "world": "{world}", "threads": {threads}}},
                "threads": {threads},
                "workloads": [{workloads}]
            }}"#,
            workloads = workloads.join(","),
        ))
    }

    fn report(rps: f64, p99: f64) -> Value {
        report_with(
            SCHEMA_VERSION,
            "abc123",
            "synthetic-10k-quick",
            4,
            &[workload_json("synthetic-10k-quick", 10_000, 8, rps, p99)],
        )
    }

    #[test]
    fn self_comparison_passes() {
        let r = report(100.0, 10.0);
        let cmp = compare(&r, &r, 10.0).unwrap();
        assert!(!cmp.deltas.is_empty(), "metrics were collected");
        assert!(cmp.regressions().is_empty());
        assert!(cmp.only_old.is_empty() && cmp.only_new.is_empty());
    }

    #[test]
    fn twenty_percent_throughput_drop_regresses_at_ten_percent_threshold() {
        let old = report(100.0, 10.0);
        let new = report(80.0, 10.0);
        let cmp = compare(&old, &new, 10.0).unwrap();
        let regressions = cmp.regressions();
        assert_eq!(regressions.len(), 1);
        assert!(regressions[0].path.ends_with("requests_per_sec"));
        assert!((regressions[0].change_pct - -20.0).abs() < 1e-9);
    }

    #[test]
    fn twenty_percent_latency_rise_regresses_but_improvement_does_not() {
        let old = report(100.0, 10.0);
        let slower = report(100.0, 12.0);
        let cmp = compare(&old, &slower, 10.0).unwrap();
        // p50 and p99 both scale with the fixture's p99 argument.
        assert_eq!(cmp.regressions().len(), 2);

        let faster = report(100.0, 5.0);
        let cmp = compare(&old, &faster, 10.0).unwrap();
        assert!(
            cmp.regressions().is_empty(),
            "improvement is not a regression"
        );
    }

    #[test]
    fn drop_within_threshold_passes() {
        let old = report(100.0, 10.0);
        let new = report(95.0, 10.4);
        let cmp = compare(&old, &new, 10.0).unwrap();
        assert!(cmp.regressions().is_empty());
    }

    #[test]
    fn schema_version_mismatch_is_refused() {
        let old = report(100.0, 10.0);
        let new = report_with(
            SCHEMA_VERSION + 1,
            "abc123",
            "synthetic-10k-quick",
            4,
            &[workload_json("synthetic-10k-quick", 10_000, 8, 100.0, 10.0)],
        );
        let err = compare(&old, &new, 10.0).unwrap_err();
        assert!(err.contains("schema_version"), "{err}");
    }

    #[test]
    fn missing_schema_version_is_refused() {
        let old = report(100.0, 10.0);
        let new = parse(
            r#"{
                "benchmark": "serve_bench",
                "meta": {"git_rev": "abc123", "world": "synthetic-10k-quick", "threads": 4},
                "workloads": []
            }"#,
        );
        assert!(compare(&old, &new, 10.0).is_err());
    }

    #[test]
    fn world_or_thread_mismatch_is_refused() {
        let wl = || workload_json("synthetic-10k-quick", 10_000, 8, 100.0, 10.0);
        let old = report(100.0, 10.0);
        let new = report_with(SCHEMA_VERSION, "abc123", "synthetic-100k", 4, &[wl()]);
        assert!(compare(&old, &new, 10.0).unwrap_err().contains("world"));

        let new = report_with(SCHEMA_VERSION, "abc123", "synthetic-10k-quick", 8, &[wl()]);
        assert!(compare(&old, &new, 10.0).unwrap_err().contains("threads"));
    }

    #[test]
    fn differing_git_revs_are_comparable() {
        let old = report(100.0, 10.0);
        let new = report_with(
            SCHEMA_VERSION,
            "def456",
            "synthetic-10k-quick",
            4,
            &[workload_json("synthetic-10k-quick", 10_000, 8, 100.0, 10.0)],
        );
        assert!(compare(&old, &new, 10.0).is_ok());
    }

    #[test]
    fn workloads_keyed_by_name_tolerate_reordering_and_flag_additions() {
        let main = workload_json("synthetic-10k-quick", 10_000, 8, 100.0, 10.0);
        let extra =
            r#"{"name": "synthetic-100k", "sequential": {"requests_per_sec": 50.0}}"#.to_owned();
        let old = report_with(
            SCHEMA_VERSION,
            "abc123",
            "synthetic-10k-quick",
            4,
            &[main.clone(), extra.clone()],
        );
        let new = report_with(
            SCHEMA_VERSION,
            "abc123",
            "synthetic-10k-quick",
            4,
            &[extra, main],
        );
        let cmp = compare(&old, &new, 10.0).unwrap();
        assert!(cmp.regressions().is_empty(), "order must not matter");
        assert!(cmp.only_old.is_empty() && cmp.only_new.is_empty());
    }

    #[test]
    fn counts_and_config_echoes_are_ignored() {
        let old = report(100.0, 10.0);
        // Same perf numbers, wildly different counts/config echoes.
        let new = report_with(
            SCHEMA_VERSION,
            "abc123",
            "synthetic-10k-quick",
            4,
            &[workload_json(
                "synthetic-10k-quick",
                999_999,
                1,
                100.0,
                10.0,
            )],
        );
        let cmp = compare(&old, &new, 10.0).unwrap();
        assert!(cmp.regressions().is_empty());
        assert!(cmp.deltas.iter().all(|d| !d.path.ends_with("n_users")));
    }

    fn quality_report(fidelity: f64, trust_score: f64) -> Value {
        parse(&format!(
            r#"{{
                "schema_version": {SCHEMA_VERSION},
                "benchmark": "offline_quality",
                "meta": {{"git_rev": "abc123", "world": "movies+cameras", "threads": 1}},
                "world": "movies+cameras",
                "interfaces": [
                    {{
                        "name": "histogram",
                        "samples": 40,
                        "fidelity": {fidelity:?},
                        "evidence_precision": 0.6,
                        "evidence_recall": 0.5,
                        "evidence_f1": 0.54,
                        "coverage": 0.8,
                        "provenance_depth": 1.5,
                        "reading_cost": 7.0
                    }}
                ],
                "aims": [
                    {{
                        "name": "trust",
                        "best_interface": "histogram",
                        "score": {trust_score:?},
                        "static_default": "clustered_histogram",
                        "static_score": 0.4,
                        "candidates": 5
                    }}
                ]
            }}"#,
        ))
    }

    #[test]
    fn quality_report_self_comparison_collects_quality_leaves() {
        let r = quality_report(0.7, 0.55);
        let cmp = compare(&r, &r, 5.0).unwrap();
        assert!(cmp.regressions().is_empty());
        let paths: Vec<&str> = cmp.deltas.iter().map(|d| d.path.as_str()).collect();
        assert!(
            paths.contains(&"interfaces.histogram.fidelity"),
            "{paths:?}"
        );
        assert!(paths.contains(&"interfaces.histogram.evidence_f1"));
        assert!(paths.contains(&"aims.trust.score"));
        assert!(
            !paths
                .iter()
                .any(|p| p.ends_with("samples") || p.ends_with("candidates")),
            "counts stay unclassified: {paths:?}"
        );
    }

    #[test]
    fn quality_drop_regresses_as_higher_better() {
        let old = quality_report(0.7, 0.55);
        let new = quality_report(0.5, 0.55);
        let cmp = compare(&old, &new, 10.0).unwrap();
        let regressions = cmp.regressions();
        assert_eq!(regressions.len(), 1, "{:?}", cmp.deltas);
        assert_eq!(regressions[0].path, "interfaces.histogram.fidelity");
        assert_eq!(regressions[0].direction, Direction::HigherBetter);

        // A per-aim score drop is gated the same way.
        let cmp = compare(&quality_report(0.7, 0.55), &quality_report(0.7, 0.3), 10.0).unwrap();
        assert_eq!(cmp.regressions().len(), 1);
        assert_eq!(cmp.regressions()[0].path, "aims.trust.score");
    }

    fn scan_report(recall: f64, p50: f64) -> Value {
        parse(&format!(
            r#"{{
                "schema_version": {SCHEMA_VERSION},
                "benchmark": "serve_bench",
                "meta": {{"git_rev": "abc123", "world": "synthetic-10k-quick", "threads": 4}},
                "workloads": [
                    {{
                        "name": "synthetic-10k-quick",
                        "scan": {{
                            "recall_probes": 64,
                            "recall_k": 20,
                            "recall_at_k": {recall:?},
                            "pruned": {{"latency_ms": {{"p50": {p50:?}}}}}
                        }}
                    }}
                ]
            }}"#,
        ))
    }

    #[test]
    fn recall_leaf_is_higher_better_and_counts_stay_unclassified() {
        let old = scan_report(0.999, 8.0);
        let cmp = compare(&old, &scan_report(0.90, 8.0), 5.0).unwrap();
        let regressions = cmp.regressions();
        assert_eq!(regressions.len(), 1, "{:?}", cmp.deltas);
        assert_eq!(
            regressions[0].path,
            "workloads.synthetic-10k-quick.scan.recall_at_k"
        );
        assert_eq!(regressions[0].direction, Direction::HigherBetter);

        // A recall improvement is not a regression; probe counts are
        // configuration echoes and stay out of the gate.
        let cmp = compare(&old, &scan_report(1.0, 8.0), 5.0).unwrap();
        assert!(cmp.regressions().is_empty());
        assert!(cmp
            .deltas
            .iter()
            .all(|d| !d.path.ends_with("recall_probes") && !d.path.ends_with("recall_k")));

        // The pruned latency digest rides the existing latency rule.
        let cmp = compare(&old, &scan_report(0.999, 16.0), 5.0).unwrap();
        assert_eq!(cmp.regressions().len(), 1);
        assert!(cmp.regressions()[0].path.ends_with("latency_ms.p50"));
    }

    #[test]
    fn run_meta_capture_fills_every_field() {
        let meta = RunMeta::capture("w", 4);
        assert!(!meta.git_rev.is_empty());
        assert_eq!(meta.world, "w");
        assert_eq!(meta.threads, 4);
    }
}

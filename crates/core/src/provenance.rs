//! Profile-fact provenance (survey Figure 1 / Section 3.2).
//!
//! Czarkowski's scrutable hypertext showed users *why* the system believes
//! what it believes about them: facts they volunteered versus facts the
//! system inferred from observation. Scrutable explanations render these
//! facts with their provenance, and the scrutinization tooling in
//! `exrec-interact` lets users edit or delete them.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Where a profile fact came from.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Source {
    /// The user stated it explicitly.
    Volunteered,
    /// The system inferred it; the payload describes the observation
    /// ("you recorded 12 war documentaries").
    Inferred {
        /// Human-readable account of the evidence behind the inference.
        evidence: String,
    },
    /// A default assumption never confirmed by the user.
    Assumed,
}

impl Source {
    /// Whether the user can be blamed for the fact (volunteered) or the
    /// system (inferred/assumed) — drives the phrasing of scrutable
    /// explanations.
    pub fn is_user_stated(&self) -> bool {
        matches!(self, Source::Volunteered)
    }
}

/// One fact in a scrutable user profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProfileFact {
    /// Machine key (e.g. `"likes_genre"`).
    pub key: String,
    /// Value (e.g. `"comedy"`).
    pub value: String,
    /// Provenance.
    pub source: Source,
}

impl ProfileFact {
    /// A volunteered fact.
    pub fn volunteered(key: &str, value: &str) -> Self {
        Self {
            key: key.to_owned(),
            value: value.to_owned(),
            source: Source::Volunteered,
        }
    }

    /// An inferred fact with its observation.
    pub fn inferred(key: &str, value: &str, evidence: &str) -> Self {
        Self {
            key: key.to_owned(),
            value: value.to_owned(),
            source: Source::Inferred {
                evidence: evidence.to_owned(),
            },
        }
    }

    /// An assumed (default) fact.
    pub fn assumed(key: &str, value: &str) -> Self {
        Self {
            key: key.to_owned(),
            value: value.to_owned(),
            source: Source::Assumed,
        }
    }

    /// The scrutable sentence for this fact, in SASY's style.
    pub fn scrutable_sentence(&self) -> String {
        match &self.source {
            Source::Volunteered => format!(
                "You told us that your {} is \"{}\". You can change this at any time.",
                self.key.replace('_', " "),
                self.value
            ),
            Source::Inferred { evidence } => format!(
                "We inferred that your {} is \"{}\" because {}. If this is wrong, you can \
                 correct it.",
                self.key.replace('_', " "),
                self.value,
                evidence
            ),
            Source::Assumed => format!(
                "We assumed your {} is \"{}\" by default. Please confirm or change it.",
                self.key.replace('_', " "),
                self.value
            ),
        }
    }
}

impl fmt::Display for ProfileFact {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let tag = match &self.source {
            Source::Volunteered => "volunteered",
            Source::Inferred { .. } => "inferred",
            Source::Assumed => "assumed",
        };
        write!(f, "{}={} [{tag}]", self.key, self.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sentences_reflect_provenance() {
        let v = ProfileFact::volunteered("home_airport", "ABZ");
        assert!(v.scrutable_sentence().starts_with("You told us"));

        let i = ProfileFact::inferred(
            "likes_genre",
            "documentary",
            "you recorded 12 documentaries this month",
        );
        let s = i.scrutable_sentence();
        assert!(s.starts_with("We inferred"));
        assert!(s.contains("12 documentaries"));

        let a = ProfileFact::assumed("adult_content", "hidden");
        assert!(a.scrutable_sentence().starts_with("We assumed"));
    }

    #[test]
    fn user_stated_detection() {
        assert!(Source::Volunteered.is_user_stated());
        assert!(!Source::Assumed.is_user_stated());
        assert!(!Source::Inferred {
            evidence: String::new()
        }
        .is_user_stated());
    }

    #[test]
    fn display_tags() {
        assert_eq!(
            ProfileFact::volunteered("a", "b").to_string(),
            "a=b [volunteered]"
        );
        assert_eq!(
            ProfileFact::inferred("a", "b", "c").to_string(),
            "a=b [inferred]"
        );
    }

    #[test]
    fn underscores_become_spaces_in_sentences() {
        let f = ProfileFact::volunteered("favourite_sport", "football");
        assert!(f.scrutable_sentence().contains("favourite sport"));
    }
}

//! The [`Explainer`]: recommender + interface → explained recommendations.
//!
//! This is the survey's pipeline made concrete: any [`Recommender`] can be
//! paired with any [`InterfaceId`] whose evidence needs it satisfies,
//! because explanation content is generated from typed evidence rather
//! than from the algorithm's internals.

use crate::explanation::Explanation;
use crate::interfaces::{ExplainInput, InterfaceId};
use exrec_algo::{Ctx, Recommender, Scored};
use exrec_types::{ItemId, Prediction, Result, UserId};

/// Pairs a recommender with an explanation interface.
///
/// ```
/// use exrec_algo::baseline::Popularity;
/// use exrec_algo::{Ctx, Recommender};
/// use exrec_core::engine::Explainer;
/// use exrec_core::interfaces::InterfaceId;
/// use exrec_data::synth::{movies, WorldConfig};
///
/// let world = movies::generate(&WorldConfig::default());
/// let ctx = Ctx::new(&world.ratings, &world.catalog);
/// let model = Popularity::default();
/// let explainer = Explainer::new(&model, InterfaceId::MovieAverage);
/// let user = world.ratings.users().next().unwrap();
/// let explained = explainer.recommend_explained(&ctx, user, 3);
/// assert_eq!(explained.len(), 3);
/// assert_eq!(explained[0].1.interface, "item_average");
/// ```
pub struct Explainer<'r> {
    recommender: &'r dyn Recommender,
    interface: InterfaceId,
}

impl<'r> Explainer<'r> {
    /// Builds an explainer.
    pub fn new(recommender: &'r dyn Recommender, interface: InterfaceId) -> Self {
        Self {
            recommender,
            interface,
        }
    }

    /// The active interface.
    pub fn interface(&self) -> InterfaceId {
        self.interface
    }

    /// Swaps the interface (e.g. between study conditions).
    pub fn set_interface(&mut self, interface: InterfaceId) {
        self.interface = interface;
    }

    /// Predicts and explains one `(user, item)` pair.
    ///
    /// # Errors
    ///
    /// Propagates prediction errors and
    /// [`exrec_types::Error::MissingEvidence`] when the interface cannot
    /// run on this recommender's evidence.
    pub fn explain(
        &self,
        ctx: &Ctx<'_>,
        user: UserId,
        item: ItemId,
    ) -> Result<(Prediction, Explanation)> {
        let prediction = self.recommender.predict(ctx, user, item)?;
        let evidence = self.recommender.evidence(ctx, user, item)?;
        let input = ExplainInput {
            ctx,
            user,
            item,
            prediction,
            evidence: &evidence,
        };
        let explanation = self.interface.generate(&input)?;
        Ok((prediction, explanation))
    }

    /// Top-n recommendations, each with its explanation. Items whose
    /// explanation cannot be generated are skipped (a recommendation the
    /// system cannot justify is withheld — the survey's transparency aim
    /// taken seriously).
    pub fn recommend_explained(
        &self,
        ctx: &Ctx<'_>,
        user: UserId,
        n: usize,
    ) -> Vec<(Scored, Explanation)> {
        self.recommender
            .recommend(ctx, user, n * 2)
            .into_iter()
            .filter_map(|scored| {
                let evidence = self.recommender.evidence(ctx, user, scored.item).ok()?;
                let input = ExplainInput {
                    ctx,
                    user,
                    item: scored.item,
                    prediction: scored.prediction,
                    evidence: &evidence,
                };
                let explanation = self.interface.generate(&input).ok()?;
                Some((scored, explanation))
            })
            .take(n)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exrec_algo::baseline::Popularity;
    use exrec_algo::UserKnn;
    use exrec_data::synth::{movies, WorldConfig};
    use exrec_data::World;

    fn world() -> World {
        movies::generate(&WorldConfig {
            n_users: 40,
            n_items: 40,
            density: 0.3,
            ..WorldConfig::default()
        })
    }

    #[test]
    fn knn_plus_histogram_explains() {
        let w = world();
        let ctx = Ctx::new(&w.ratings, &w.catalog);
        let knn = UserKnn::default();
        let explainer = Explainer::new(&knn, InterfaceId::ClusteredHistogram);
        let user = w
            .ratings
            .users()
            .find(|&u| w.ratings.user_ratings(u).len() >= 5)
            .unwrap();
        let recs = explainer.recommend_explained(&ctx, user, 3);
        assert!(!recs.is_empty());
        for (scored, expl) in &recs {
            assert!(w.ratings.rating(user, scored.item).is_none());
            assert_eq!(expl.interface, "clustered_histogram");
            assert!(expl.has_visual_content());
        }
    }

    #[test]
    fn mismatched_interface_errors_per_item() {
        let w = world();
        let ctx = Ctx::new(&w.ratings, &w.catalog);
        let pop = Popularity::default();
        // Popularity evidence cannot feed a neighbour histogram.
        let explainer = Explainer::new(&pop, InterfaceId::Histogram);
        let user = w.ratings.users().next().unwrap();
        let item = w.catalog.ids().next().unwrap();
        assert!(explainer.explain(&ctx, user, item).is_err());
        // …and recommend_explained silently skips, yielding nothing.
        assert!(explainer.recommend_explained(&ctx, user, 3).is_empty());
    }

    #[test]
    fn interface_swap() {
        let w = world();
        let ctx = Ctx::new(&w.ratings, &w.catalog);
        let pop = Popularity::default();
        let mut explainer = Explainer::new(&pop, InterfaceId::MovieAverage);
        let user = w.ratings.users().next().unwrap();
        let item = w.catalog.ids().next().unwrap();
        let (_, a) = explainer.explain(&ctx, user, item).unwrap();
        assert_eq!(a.interface, "item_average");
        explainer.set_interface(InterfaceId::WonAwards);
        let (_, b) = explainer.explain(&ctx, user, item).unwrap();
        assert_eq!(b.interface, "won_awards");
    }
}

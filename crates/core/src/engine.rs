//! The [`Explainer`]: recommender + interface → explained recommendations.
//!
//! This is the survey's pipeline made concrete: any [`Recommender`] can be
//! paired with any [`InterfaceId`] whose evidence needs it satisfies,
//! because explanation content is generated from typed evidence rather
//! than from the algorithm's internals.

use std::time::Instant;

use crate::explanation::Explanation;
use crate::interfaces::{ExplainInput, InterfaceId};
use exrec_algo::batch::BatchPool;
use exrec_algo::{Ctx, ModelEvidence, Recommender, Scored};
use exrec_obs::Telemetry;
use exrec_types::{Error, ItemId, Prediction, Result, UserId};

/// Pairs a recommender with an explanation interface.
///
/// ```
/// use exrec_algo::baseline::Popularity;
/// use exrec_algo::{Ctx, Recommender};
/// use exrec_core::engine::Explainer;
/// use exrec_core::interfaces::InterfaceId;
/// use exrec_data::synth::{movies, WorldConfig};
///
/// let world = movies::generate(&WorldConfig::default());
/// let ctx = Ctx::new(&world.ratings, &world.catalog);
/// let model = Popularity::default();
/// let explainer = Explainer::new(&model, InterfaceId::MovieAverage);
/// let user = world.ratings.users().next().unwrap();
/// let explained = explainer.recommend_explained(&ctx, user, 3);
/// assert_eq!(explained.len(), 3);
/// assert_eq!(explained[0].1.interface, "item_average");
/// ```
pub struct Explainer<'r> {
    recommender: &'r (dyn Recommender + Sync),
    interface: InterfaceId,
    telemetry: Option<Telemetry>,
}

impl<'r> Explainer<'r> {
    /// Builds an explainer.
    ///
    /// The recommender must be `Sync` so the batch paths
    /// ([`Explainer::explain_batch`],
    /// [`Explainer::recommend_explained_batch`]) can share it across
    /// worker threads; every model in `exrec-algo` is.
    pub fn new(recommender: &'r (dyn Recommender + Sync), interface: InterfaceId) -> Self {
        Self {
            recommender,
            interface,
            telemetry: None,
        }
    }

    /// Attaches a telemetry handle. The explainer then records, per
    /// call: evidence-gathering latency (`explain.evidence_ns`), which
    /// interface fired (`explain.fired.<key>`), and how often generation
    /// aborted for lack of evidence (`explain.abort.missing_evidence`).
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = Some(telemetry);
        self
    }

    /// The active interface.
    pub fn interface(&self) -> InterfaceId {
        self.interface
    }

    /// Swaps the interface (e.g. between study conditions).
    pub fn set_interface(&mut self, interface: InterfaceId) {
        self.interface = interface;
    }

    /// Gathers model evidence, timing it when telemetry is attached.
    /// Inside a request trace it also emits an `explain.evidence` span
    /// (backdated over the gathering), so evidence cost shows up in the
    /// request's span tree; the `explain.evidence_ns` histogram is
    /// recorded either way.
    fn gather_evidence(&self, ctx: &Ctx<'_>, user: UserId, item: ItemId) -> Result<ModelEvidence> {
        let _phase = exrec_obs::profile::phase("evidence");
        let started = Instant::now();
        let evidence = self.recommender.evidence(ctx, user, item);
        if let Some(t) = &self.telemetry {
            t.metrics()
                .histogram("explain.evidence_ns")
                .record(started.elapsed());
            if exrec_obs::trace::current().is_some() {
                let _span = exrec_obs::span!(t, "explain.evidence", user = user.0, item = item.0)
                    .started_at(started);
            }
        }
        evidence
    }

    /// Runs the interface on gathered evidence, recording fire/abort
    /// counts when telemetry is attached.
    fn generate(&self, input: &ExplainInput<'_>) -> Result<Explanation> {
        let _phase = exrec_obs::profile::phase("generate");
        let result = self.interface.generate(input);
        if let Some(t) = &self.telemetry {
            match &result {
                Ok(_) => t
                    .metrics()
                    .counter(&format!("explain.fired.{}", self.interface.key()))
                    .incr(),
                Err(Error::MissingEvidence { .. }) => {
                    t.metrics().counter("explain.abort.missing_evidence").incr();
                }
                Err(_) => {}
            }
        }
        result
    }

    /// Predicts and explains one `(user, item)` pair.
    ///
    /// # Errors
    ///
    /// Propagates prediction errors and
    /// [`exrec_types::Error::MissingEvidence`] when the interface cannot
    /// run on this recommender's evidence.
    pub fn explain(
        &self,
        ctx: &Ctx<'_>,
        user: UserId,
        item: ItemId,
    ) -> Result<(Prediction, Explanation)> {
        let prediction = self.recommender.predict(ctx, user, item)?;
        let evidence = self.gather_evidence(ctx, user, item)?;
        let input = ExplainInput {
            ctx,
            user,
            item,
            prediction,
            evidence: &evidence,
        };
        let explanation = self.generate(&input)?;
        Ok((prediction, explanation))
    }

    /// Top-n recommendations, each with its explanation. Items whose
    /// explanation cannot be generated are skipped (a recommendation the
    /// system cannot justify is withheld — the survey's transparency aim
    /// taken seriously).
    pub fn recommend_explained(
        &self,
        ctx: &Ctx<'_>,
        user: UserId,
        n: usize,
    ) -> Vec<(Scored, Explanation)> {
        let _span = self
            .telemetry
            .as_ref()
            .map(|t| exrec_obs::span!(t, "recommend_explained", interface = self.interface.key()));
        self.recommender
            .recommend(ctx, user, n * 2)
            .into_iter()
            .filter_map(|scored| {
                let evidence = self.gather_evidence(ctx, user, scored.item).ok()?;
                let input = ExplainInput {
                    ctx,
                    user,
                    item: scored.item,
                    prediction: scored.prediction,
                    evidence: &evidence,
                };
                let explanation = self.generate(&input).ok()?;
                Some((scored, explanation))
            })
            .take(n)
            .collect()
    }

    /// [`Explainer::explain`], additionally returning the gathered
    /// [`ModelEvidence`] — the hook the quality probes are built on:
    /// callers can ablate the cited evidence
    /// ([`crate::quality::ablation_fidelity`]) or measure how much of it
    /// the explanation surfaces ([`crate::quality::evidence_coverage`]).
    ///
    /// # Errors
    ///
    /// Same contract as [`Explainer::explain`].
    pub fn explain_with_evidence(
        &self,
        ctx: &Ctx<'_>,
        user: UserId,
        item: ItemId,
    ) -> Result<(Prediction, Explanation, ModelEvidence)> {
        let prediction = self.recommender.predict(ctx, user, item)?;
        let evidence = self.gather_evidence(ctx, user, item)?;
        let input = ExplainInput {
            ctx,
            user,
            item,
            prediction,
            evidence: &evidence,
        };
        let explanation = self.generate(&input)?;
        Ok((prediction, explanation, evidence))
    }

    /// Explains one pair and measures it with a quality probe: fidelity
    /// of the cited evidence under ablation, evidence coverage of the
    /// rendered fragments, and provenance depth. The ablation baseline
    /// is the user's observed mean rating (the model's no-evidence
    /// fallback), the normalizer the rating scale's span.
    ///
    /// # Errors
    ///
    /// Same contract as [`Explainer::explain`].
    pub fn explain_probed(
        &self,
        ctx: &Ctx<'_>,
        user: UserId,
        item: ItemId,
    ) -> Result<(Prediction, Explanation, crate::quality::QualityProbe)> {
        let (prediction, explanation, evidence) = self.explain_with_evidence(ctx, user, item)?;
        let baseline = ctx
            .ratings
            .user_mean(user)
            .unwrap_or_else(|| ctx.ratings.global_mean());
        let span = ctx.ratings.scale().span();
        let probe = crate::quality::QualityProbe::measure(&explanation, &evidence, baseline, span);
        Ok((prediction, explanation, probe))
    }

    /// [`Explainer::explain`] for a batch of `(user, item)` requests,
    /// fanned out over `pool`'s workers. Results come back in request
    /// order and each equals what the sequential call would return —
    /// workers only decide scheduling, never content.
    pub fn explain_batch(
        &self,
        ctx: &Ctx<'_>,
        pool: &BatchPool,
        requests: &[(UserId, ItemId)],
    ) -> Vec<Result<(Prediction, Explanation)>> {
        pool.run("explain", requests, |_, &(user, item)| {
            self.explain(ctx, user, item)
        })
    }

    /// [`Explainer::recommend_explained`] for a batch of users, fanned
    /// out over `pool`'s workers, in input order. The per-user output is
    /// identical to the sequential call.
    pub fn recommend_explained_batch(
        &self,
        ctx: &Ctx<'_>,
        pool: &BatchPool,
        users: &[UserId],
        n: usize,
    ) -> Vec<Vec<(Scored, Explanation)>> {
        pool.run("recommend_explained", users, |_, &user| {
            self.recommend_explained(ctx, user, n)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exrec_algo::baseline::Popularity;
    use exrec_algo::UserKnn;
    use exrec_data::synth::{movies, WorldConfig};
    use exrec_data::World;

    fn world() -> World {
        movies::generate(&WorldConfig {
            n_users: 40,
            n_items: 40,
            density: 0.3,
            ..WorldConfig::default()
        })
    }

    #[test]
    fn knn_plus_histogram_explains() {
        let w = world();
        let ctx = Ctx::new(&w.ratings, &w.catalog);
        let knn = UserKnn::default();
        let explainer = Explainer::new(&knn, InterfaceId::ClusteredHistogram);
        let user = w
            .ratings
            .users()
            .find(|&u| w.ratings.user_ratings(u).len() >= 5)
            .unwrap();
        let recs = explainer.recommend_explained(&ctx, user, 3);
        assert!(!recs.is_empty());
        for (scored, expl) in &recs {
            assert!(w.ratings.rating(user, scored.item).is_none());
            assert_eq!(expl.interface, "clustered_histogram");
            assert!(expl.has_visual_content());
        }
    }

    #[test]
    fn mismatched_interface_errors_per_item() {
        let w = world();
        let ctx = Ctx::new(&w.ratings, &w.catalog);
        let pop = Popularity::default();
        // Popularity evidence cannot feed a neighbour histogram.
        let explainer = Explainer::new(&pop, InterfaceId::Histogram);
        let user = w.ratings.users().next().unwrap();
        let item = w.catalog.ids().next().unwrap();
        assert!(explainer.explain(&ctx, user, item).is_err());
        // …and recommend_explained silently skips, yielding nothing.
        assert!(explainer.recommend_explained(&ctx, user, 3).is_empty());
    }

    #[test]
    fn interface_swap() {
        let w = world();
        let ctx = Ctx::new(&w.ratings, &w.catalog);
        let pop = Popularity::default();
        let mut explainer = Explainer::new(&pop, InterfaceId::MovieAverage);
        let user = w.ratings.users().next().unwrap();
        let item = w.catalog.ids().next().unwrap();
        let (_, a) = explainer.explain(&ctx, user, item).unwrap();
        assert_eq!(a.interface, "item_average");
        explainer.set_interface(InterfaceId::WonAwards);
        let (_, b) = explainer.explain(&ctx, user, item).unwrap();
        assert_eq!(b.interface, "won_awards");
    }

    #[test]
    fn batch_paths_match_sequential() {
        let w = world();
        let ctx = Ctx::new(&w.ratings, &w.catalog);
        let knn = UserKnn::default();
        let explainer = Explainer::new(&knn, InterfaceId::ClusteredHistogram);
        let users: Vec<_> = w.ratings.users().take(8).collect();
        let items: Vec<_> = w.catalog.ids().take(4).collect();
        let requests: Vec<_> = users
            .iter()
            .flat_map(|&u| items.iter().map(move |&i| (u, i)))
            .collect();

        for threads in [1, 4] {
            let pool = BatchPool::new(threads);
            let batched = explainer.explain_batch(&ctx, &pool, &requests);
            assert_eq!(batched.len(), requests.len());
            for (result, &(u, i)) in batched.iter().zip(&requests) {
                match (result, explainer.explain(&ctx, u, i)) {
                    (Ok((bp, be)), Ok((sp, se))) => {
                        assert_eq!(bp, &sp);
                        assert_eq!(be.interface, se.interface);
                    }
                    (Err(_), Err(_)) => {}
                    (b, s) => panic!("batch {b:?} disagrees with sequential {s:?}"),
                }
            }
            let explained = explainer.recommend_explained_batch(&ctx, &pool, &users, 3);
            for (per_user, &u) in explained.iter().zip(&users) {
                let sequential = explainer.recommend_explained(&ctx, u, 3);
                assert_eq!(per_user.len(), sequential.len());
                for ((bs, _), (ss, _)) in per_user.iter().zip(&sequential) {
                    assert_eq!(bs, ss);
                }
            }
        }
    }

    #[test]
    fn telemetry_counts_fires_and_aborts() {
        let w = world();
        let ctx = Ctx::new(&w.ratings, &w.catalog);
        let pop = Popularity::default();
        let obs = Telemetry::default();
        let mut explainer =
            Explainer::new(&pop, InterfaceId::MovieAverage).with_telemetry(obs.clone());
        let user = w.ratings.users().next().unwrap();
        let item = w.catalog.ids().next().unwrap();

        explainer.explain(&ctx, user, item).unwrap();
        explainer.explain(&ctx, user, item).unwrap();
        // Histogram needs neighbour evidence popularity cannot provide.
        explainer.set_interface(InterfaceId::Histogram);
        assert!(explainer.explain(&ctx, user, item).is_err());

        let report = obs.report();
        assert_eq!(report.counters["explain.fired.item_average"], 2);
        assert_eq!(report.counters["explain.abort.missing_evidence"], 1);
        assert_eq!(report.histograms["explain.evidence_ns"].count, 3);
    }

    #[test]
    fn evidence_spans_join_an_active_trace() {
        use exrec_obs::{trace, CountingSubscriber, IdSource, Subscriber};

        let w = world();
        let ctx = Ctx::new(&w.ratings, &w.catalog);
        let pop = Popularity::default();
        let collector = std::sync::Arc::new(CountingSubscriber::new());
        let obs = Telemetry::with_subscriber(
            std::sync::Arc::clone(&collector) as std::sync::Arc<dyn Subscriber>
        );
        let explainer = Explainer::new(&pop, InterfaceId::MovieAverage).with_telemetry(obs.clone());
        let user = w.ratings.users().next().unwrap();

        // Untraced call: the histogram records but no evidence span.
        assert!(!explainer.recommend_explained(&ctx, user, 2).is_empty());
        assert!(collector
            .events()
            .iter()
            .all(|e| e.name != "explain.evidence"));

        // Traced call: evidence spans appear, parented under the
        // recommend_explained span, all in the request's trace.
        let ids = std::sync::Arc::new(IdSource::seeded(3));
        let expected_trace;
        {
            let root = obs.root_span("request", &ids);
            expected_trace = root.trace_id_hex().unwrap();
            assert!(!explainer.recommend_explained(&ctx, user, 2).is_empty());
        }
        assert!(trace::current().is_none());
        let events = collector.events();
        let rec = events
            .iter()
            .find(|e| e.name == "recommend_explained" && e.trace_id.is_some())
            .unwrap();
        assert_eq!(rec.trace_id.as_deref(), Some(expected_trace.as_str()));
        let evidence: Vec<_> = events
            .iter()
            .filter(|e| e.name == "explain.evidence")
            .collect();
        assert!(!evidence.is_empty());
        for e in &evidence {
            assert_eq!(e.trace_id.as_deref(), Some(expected_trace.as_str()));
            assert_eq!(e.parent_id, rec.span_id);
        }
    }
}

//! Explanation modalities (survey Conclusion, future work #2).
//!
//! > "…rather than assuming that either text or images are preferable,
//! > see how they can compliment each other."
//!
//! This module classifies explanation fragments by modality, analyses an
//! explanation's modality mix, and provides a *complementary composer*
//! that pairs every chart with a one-line textual caption (and a text-only
//! explanation with a compact visual digest). The E-MODAL study in
//! `exrec-eval` measures the dual-coding payoff: complementary
//! presentations beat both single-modality variants on comprehension
//! without the full reading cost of duplicating everything.

use crate::explanation::{Explanation, Fragment, Tone};

/// Presentation modality of a fragment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Modality {
    /// Prose or labelled facts.
    Text,
    /// Charts and bars.
    Visual,
}

/// Classifies one fragment.
pub fn modality_of(fragment: &Fragment) -> Modality {
    match fragment {
        Fragment::Text(_) | Fragment::KeyValue { .. } | Fragment::Disclosure { .. } => {
            Modality::Text
        }
        Fragment::Histogram { .. } | Fragment::InfluenceBar { .. } => Modality::Visual,
    }
}

/// An explanation's modality mix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModalityMix {
    /// Textual fragment count.
    pub text: usize,
    /// Visual fragment count.
    pub visual: usize,
}

impl ModalityMix {
    /// Whether both modalities are present (the dual-coding condition).
    pub fn is_complementary(&self) -> bool {
        self.text > 0 && self.visual > 0
    }

    /// Whether this is a single-modality presentation.
    pub fn is_single(&self) -> bool {
        !self.is_complementary() && (self.text + self.visual) > 0
    }
}

/// Analyses an explanation's modality mix.
pub fn analyze(explanation: &Explanation) -> ModalityMix {
    let mut mix = ModalityMix { text: 0, visual: 0 };
    for f in &explanation.fragments {
        match modality_of(f) {
            Modality::Text => mix.text += 1,
            Modality::Visual => mix.visual += 1,
        }
    }
    mix
}

/// Strips an explanation down to one modality (the study's single-
/// modality control conditions).
pub fn restrict(explanation: &Explanation, keep: Modality) -> Explanation {
    let mut out = explanation.clone();
    out.fragments.retain(|f| modality_of(f) == keep);
    out
}

fn caption_for(fragment: &Fragment) -> Option<String> {
    match fragment {
        Fragment::Histogram { title, bins } => {
            let total: usize = bins.iter().map(|b| b.count).sum();
            if total == 0 {
                return Some(format!("{title}: no data yet."));
            }
            let good: usize = bins
                .iter()
                .filter(|b| b.tone == Tone::Good)
                .map(|b| b.count)
                .sum();
            let biggest = bins.iter().max_by_key(|b| b.count)?;
            Some(format!(
                "In words: {} of {} fall under \"{}\"{}.",
                biggest.count,
                total,
                biggest.label,
                if good > 0 {
                    format!(" ({good} favourable overall)")
                } else {
                    String::new()
                }
            ))
        }
        Fragment::InfluenceBar { title, share, .. } => Some(format!(
            "In words: \"{}\" accounts for {:.0}% of this recommendation.",
            title,
            share * 100.0
        )),
        _ => None,
    }
}

/// Composes the complementary variant: every visual fragment gains a
/// one-line caption right after it; a purely textual explanation gains a
/// compact visual digest where it mentions proportions. Idempotent-ish:
/// captions are only added for visuals not already followed by text.
pub fn complement(explanation: &Explanation) -> Explanation {
    let mut out = explanation.clone();
    let mut fragments = Vec::with_capacity(out.fragments.len() * 2);
    let source = std::mem::take(&mut out.fragments);
    for frag in source {
        let caption = if modality_of(&frag) == Modality::Visual {
            caption_for(&frag)
        } else {
            None
        };
        fragments.push(frag);
        if let Some(caption) = caption {
            fragments.push(Fragment::Text(caption));
        }
    }
    out.fragments = fragments;
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aims::AimProfile;
    use crate::explanation::HistBin;
    use crate::style::ExplanationStyle;

    fn mixed() -> Explanation {
        Explanation::new(
            "t",
            ExplanationStyle::CollaborativeBased,
            AimProfile::empty(),
            vec![
                Fragment::Text("Here is how people rated it:".into()),
                Fragment::Histogram {
                    title: "Ratings".into(),
                    bins: vec![
                        HistBin {
                            label: "liked it".into(),
                            count: 7,
                            tone: Tone::Good,
                        },
                        HistBin {
                            label: "disliked it".into(),
                            count: 2,
                            tone: Tone::Bad,
                        },
                    ],
                },
            ],
        )
    }

    #[test]
    fn classification() {
        assert_eq!(modality_of(&Fragment::Text("x".into())), Modality::Text);
        assert_eq!(
            modality_of(&Fragment::InfluenceBar {
                title: "x".into(),
                rating: 5.0,
                share: 0.4
            }),
            Modality::Visual
        );
    }

    #[test]
    fn analyze_counts() {
        let mix = analyze(&mixed());
        assert_eq!(mix, ModalityMix { text: 1, visual: 1 });
        assert!(mix.is_complementary());
        assert!(!mix.is_single());
    }

    #[test]
    fn restrict_produces_single_modality() {
        let text_only = restrict(&mixed(), Modality::Text);
        assert!(analyze(&text_only).is_single());
        assert_eq!(analyze(&text_only).visual, 0);

        let visual_only = restrict(&mixed(), Modality::Visual);
        assert_eq!(analyze(&visual_only).text, 0);
        assert_eq!(analyze(&visual_only).visual, 1);
    }

    #[test]
    fn complement_captions_charts() {
        let visual_only = restrict(&mixed(), Modality::Visual);
        let composed = complement(&visual_only);
        let mix = analyze(&composed);
        assert!(mix.is_complementary(), "caption added: {mix:?}");
        let caption = composed
            .fragments
            .iter()
            .find_map(|f| match f {
                Fragment::Text(s) => Some(s.clone()),
                _ => None,
            })
            .expect("caption text");
        assert!(caption.contains("7 of 9"), "caption summarizes: {caption}");
    }

    #[test]
    fn complement_preserves_reading_order() {
        let composed = complement(&mixed());
        // Chart still precedes its caption.
        let chart_pos = composed
            .fragments
            .iter()
            .position(|f| matches!(f, Fragment::Histogram { .. }))
            .unwrap();
        assert!(matches!(
            composed.fragments[chart_pos + 1],
            Fragment::Text(_)
        ));
    }

    #[test]
    fn empty_explanation_stays_empty() {
        let e = Explanation::none();
        assert_eq!(analyze(&e), ModalityMix { text: 0, visual: 0 });
        assert!(complement(&e).fragments.is_empty());
    }

    #[test]
    fn influence_bar_caption_mentions_share() {
        let e = Explanation::new(
            "t",
            ExplanationStyle::ContentBased,
            AimProfile::empty(),
            vec![Fragment::InfluenceBar {
                title: "Oliver Twist".into(),
                rating: 5.0,
                share: 0.42,
            }],
        );
        let composed = complement(&e);
        assert!(composed.text().contains("42%"));
        assert!(composed.text().contains("Oliver Twist"));
    }
}

//! Renderers: [`Explanation`] → plain text / ANSI / Markdown.
//!
//! The survey notes (Section 2.3) that presentation design itself affects
//! credibility; keeping rendering behind a trait lets studies vary "design
//! look" without touching content.

use crate::explanation::{Explanation, Fragment, HistBin, Tone};
use exrec_types::Confidence;
use std::fmt::Write as _;

/// Width of histogram/influence bars, in cells.
const BAR_WIDTH: usize = 20;

/// Renders explanations into a concrete textual format.
pub trait Render {
    /// Renders the whole explanation.
    fn render(&self, explanation: &Explanation) -> String;
}

fn bar(cells: usize) -> String {
    "█".repeat(cells)
}

fn scaled(count: usize, max: usize) -> usize {
    if max == 0 {
        0
    } else {
        (count * BAR_WIDTH).div_ceil(max)
    }
}

fn confidence_phrase(c: Confidence) -> String {
    format!("{} ({})", c.label(), c)
}

/// Plain UTF-8 text, no colour.
#[derive(Debug, Clone, Copy, Default)]
pub struct PlainRenderer;

/// ANSI-coloured terminal output (green good / red bad bars).
#[derive(Debug, Clone, Copy, Default)]
pub struct AnsiRenderer;

/// Markdown output (tables for key-values, code-fenced charts).
#[derive(Debug, Clone, Copy, Default)]
pub struct MarkdownRenderer;

fn render_bins_plain(out: &mut String, title: &str, bins: &[HistBin], colour: bool) {
    let max = bins.iter().map(|b| b.count).max().unwrap_or(0);
    let width = bins.iter().map(|b| b.label.len()).max().unwrap_or(0);
    let _ = writeln!(out, "{title}:");
    for b in bins {
        let painted = bar(scaled(b.count, max));
        let painted = if colour {
            match b.tone {
                Tone::Good => format!("\x1b[32m{painted}\x1b[0m"),
                Tone::Bad => format!("\x1b[31m{painted}\x1b[0m"),
                Tone::Neutral => painted,
            }
        } else {
            painted
        };
        let _ = writeln!(out, "  {:width$} {painted} {}", b.label, b.count);
    }
}

fn render_plainlike(explanation: &Explanation, colour: bool) -> String {
    let mut out = String::new();
    for frag in &explanation.fragments {
        match frag {
            Fragment::Text(s) => {
                let _ = writeln!(out, "{s}");
            }
            Fragment::Histogram { title, bins } => {
                render_bins_plain(&mut out, title, bins, colour);
            }
            Fragment::InfluenceBar {
                title,
                rating,
                share,
            } => {
                let painted = bar(scaled((share * 100.0) as usize, 100));
                let _ = writeln!(
                    out,
                    "  {painted} {:>3.0}%  \"{title}\" (your rating: {rating:.0})",
                    share * 100.0
                );
            }
            Fragment::KeyValue { key, value } => {
                let _ = writeln!(out, "  {key}: {value}");
            }
            Fragment::Disclosure {
                strength,
                confidence,
            } => match confidence {
                Some(c) => {
                    let _ = writeln!(
                        out,
                        "Predicted rating: {strength:.1} — the system is {}",
                        confidence_phrase(*c)
                    );
                }
                None => {
                    let _ = writeln!(out, "Predicted rating: {strength:.1}");
                }
            },
        }
    }
    out
}

impl Render for PlainRenderer {
    fn render(&self, explanation: &Explanation) -> String {
        render_plainlike(explanation, false)
    }
}

impl Render for AnsiRenderer {
    fn render(&self, explanation: &Explanation) -> String {
        render_plainlike(explanation, true)
    }
}

impl Render for MarkdownRenderer {
    fn render(&self, explanation: &Explanation) -> String {
        let mut out = String::new();
        let mut kv_open = false;
        for frag in &explanation.fragments {
            if kv_open && !matches!(frag, Fragment::KeyValue { .. }) {
                kv_open = false;
                out.push('\n');
            }
            match frag {
                Fragment::Text(s) => {
                    let _ = writeln!(out, "{s}\n");
                }
                Fragment::Histogram { title, bins } => {
                    let _ = writeln!(out, "**{title}**\n");
                    let _ = writeln!(out, "```");
                    let max = bins.iter().map(|b| b.count).max().unwrap_or(0);
                    for b in bins {
                        let _ = writeln!(
                            out,
                            "{:12} {} {}",
                            b.label,
                            bar(scaled(b.count, max)),
                            b.count
                        );
                    }
                    let _ = writeln!(out, "```\n");
                }
                Fragment::InfluenceBar {
                    title,
                    rating,
                    share,
                } => {
                    let _ = writeln!(
                        out,
                        "- **{:.0}%** — \"{title}\" (your rating: {rating:.0})",
                        share * 100.0
                    );
                }
                Fragment::KeyValue { key, value } => {
                    if !kv_open {
                        let _ = writeln!(out, "| | |\n|---|---|");
                        kv_open = true;
                    }
                    let _ = writeln!(out, "| {key} | {value} |");
                }
                Fragment::Disclosure {
                    strength,
                    confidence,
                } => match confidence {
                    Some(c) => {
                        let _ = writeln!(
                            out,
                            "> Predicted rating **{strength:.1}** — {}\n",
                            confidence_phrase(*c)
                        );
                    }
                    None => {
                        let _ = writeln!(out, "> Predicted rating **{strength:.1}**\n");
                    }
                },
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aims::AimProfile;
    use crate::style::ExplanationStyle;

    fn sample() -> Explanation {
        Explanation::new(
            "test",
            ExplanationStyle::CollaborativeBased,
            AimProfile::empty(),
            vec![
                Fragment::Text("How similar users rated it:".into()),
                Fragment::Histogram {
                    title: "Ratings".into(),
                    bins: vec![
                        HistBin {
                            label: "5★".into(),
                            count: 10,
                            tone: Tone::Good,
                        },
                        HistBin {
                            label: "1★".into(),
                            count: 2,
                            tone: Tone::Bad,
                        },
                    ],
                },
                Fragment::InfluenceBar {
                    title: "Oliver Twist".into(),
                    rating: 5.0,
                    share: 0.42,
                },
                Fragment::KeyValue {
                    key: "Average".into(),
                    value: "4.1★".into(),
                },
                Fragment::Disclosure {
                    strength: 4.3,
                    confidence: Some(Confidence::new(0.8)),
                },
            ],
        )
    }

    #[test]
    fn plain_renders_all_fragments() {
        let s = PlainRenderer.render(&sample());
        assert!(s.contains("How similar users rated it:"));
        assert!(s.contains("5★"));
        assert!(s.contains("█"));
        assert!(s.contains("42%"));
        assert!(s.contains("Oliver Twist"));
        assert!(s.contains("Average: 4.1★"));
        assert!(s.contains("Predicted rating: 4.3"));
        assert!(!s.contains("\x1b["), "plain output must not contain ANSI");
    }

    #[test]
    fn ansi_colours_toned_bars() {
        let s = AnsiRenderer.render(&sample());
        assert!(s.contains("\x1b[32m"), "good bars green");
        assert!(s.contains("\x1b[31m"), "bad bars red");
    }

    #[test]
    fn markdown_renders_structures() {
        let s = MarkdownRenderer.render(&sample());
        assert!(s.contains("**Ratings**"));
        assert!(s.contains("```"));
        assert!(s.contains("| Average | 4.1★ |"));
        assert!(s.contains("> Predicted rating **4.3**"));
        assert!(s.contains("- **42%**"));
    }

    #[test]
    fn biggest_bin_gets_full_bar() {
        let s = PlainRenderer.render(&sample());
        let line_5 = s.lines().find(|l| l.contains("5★")).unwrap();
        let blocks = line_5.matches('█').count();
        assert_eq!(blocks, BAR_WIDTH);
    }

    #[test]
    fn empty_explanation_renders_empty() {
        let e = Explanation::none();
        assert!(PlainRenderer.render(&e).is_empty());
        assert!(MarkdownRenderer.render(&e).is_empty());
    }

    #[test]
    fn disclosure_without_confidence() {
        let e = Explanation::new(
            "t",
            ExplanationStyle::None,
            AimProfile::empty(),
            vec![Fragment::Disclosure {
                strength: 3.0,
                confidence: None,
            }],
        );
        let s = PlainRenderer.render(&e);
        assert!(s.contains("Predicted rating: 3.0"));
        assert!(!s.contains("confident"));
    }
}

//! # exrec-core
//!
//! The explanation engine — the primary contribution of the reproduced
//! survey (Tintarev & Masthoff, *A Survey of Explanations in Recommender
//! Systems*, ICDE'07 workshops).
//!
//! The survey's framework, realized as an API:
//!
//! * [`aims`] — the seven aims of Table 1 (transparency, scrutability,
//!   trust, effectiveness, persuasiveness, efficiency, satisfaction) as a
//!   first-class type; every explanation interface declares which aims it
//!   serves, which is how Table 2 is *generated* rather than transcribed.
//! * [`style`] — the three explanation-content styles of the conclusion
//!   (content-based / collaborative-based / preference-based).
//! * [`explanation`] — the renderer-independent [`Explanation`] document
//!   model (text, histograms, influence bars, disclosures).
//! * [`interfaces`] — a catalog of 21 explanation interfaces modelled on
//!   Herlocker et al.'s CSCW'00 study (survey Section 3.4), each a pure
//!   function from typed model evidence to an [`Explanation`].
//! * [`influence`] — algorithm-agnostic leave-one-out influence
//!   computation (survey Figure 3).
//! * [`personality`] — the strength-vs-confidence "recommender
//!   personality" lens of Section 4.6.
//! * [`provenance`] — volunteered-vs-inferred profile facts, the raw
//!   material of scrutable explanations (Figure 1).
//! * [`render`] — plain, ANSI and Markdown renderers;
//! * [`group`] — Section 4.2 group explanations for Top-N lists.
//!
//! The survey's two stated future-work directions are implemented too:
//! [`similexp`] (user-adapted, user-readable similarity) and [`modality`]
//! (text/visual complementarity).

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod aims;
pub mod engine;
pub mod explanation;
pub mod group;
pub mod influence;
pub mod interfaces;
pub mod modality;
pub mod personality;
pub mod provenance;
pub mod quality;
pub mod render;
pub mod similexp;
pub mod style;
pub mod templates;

pub use aims::{Aim, AimProfile};
pub use engine::Explainer;
pub use explanation::{Explanation, Fragment, HistBin, Tone};
pub use interfaces::{InterfaceDescriptor, InterfaceId};
pub use personality::{Personality, PersonalityLens};
pub use provenance::{ProfileFact, Source};
pub use quality::QualityProbe;
pub use similexp::ExplainableSimilarity;
pub use style::ExplanationStyle;

//! User-adapted, user-readable similarity (survey Conclusion, future
//! work #1).
//!
//! > "One direction is to define similarity measures which are easily
//! > understood by users, and investigate how these measures can be
//! > adapted to each user."
//!
//! [`ExplainableSimilarity`] answers both halves. Similarity between two
//! items decomposes over *named schema attributes* (plus keyword
//! overlap), so every similarity score comes with a breakdown a user can
//! read; and the attribute weights are *learned per user* from how
//! strongly each attribute organizes that user's own ratings — a
//! genre-driven user gets a genre-heavy similarity, a price-driven
//! shopper a price-heavy one.

use exrec_algo::Ctx;
use exrec_types::{AttributeKind, Item, ItemId, Result, UserId};
use std::collections::HashMap;

/// One named contribution to an explainable similarity score.
#[derive(Debug, Clone, PartialEq)]
pub struct SimilarityTerm {
    /// Human-readable label ("same Genre (comedy)", "Price within 12%").
    pub label: String,
    /// Contribution in `[0, weight]`.
    pub contribution: f64,
    /// The attribute's learned weight for this user.
    pub weight: f64,
}

/// A per-user explainable similarity measure over a catalog's schema.
#[derive(Debug, Clone, PartialEq)]
pub struct ExplainableSimilarity {
    /// `(attribute name, weight)`; weights sum to 1 with the keyword
    /// weight.
    attribute_weights: Vec<(String, f64)>,
    /// Weight on keyword-bag overlap.
    keyword_weight: f64,
    /// Numeric attribute ranges at fit time.
    ranges: HashMap<String, (f64, f64)>,
}

/// Uniform prior mass mixed into learned weights so no attribute is ever
/// fully ignored.
const PRIOR_MIX: f64 = 0.3;

impl ExplainableSimilarity {
    /// Learns a user-adapted measure.
    ///
    /// Weight heuristic per attribute:
    /// * **categorical** — how much of the variance in the user's ratings
    ///   is *between* attribute values (a user whose comedy ratings and
    ///   horror ratings differ a lot is genre-driven);
    /// * **numeric** — |Pearson correlation| between the user's ratings
    ///   and the attribute values;
    /// * keywords get the mean of all attribute weights.
    ///
    /// Users with fewer than 3 ratings fall back to uniform weights.
    ///
    /// # Errors
    ///
    /// Returns [`exrec_types::Error::UnknownUser`] for out-of-range users.
    pub fn fit(ctx: &Ctx<'_>, user: UserId) -> Result<Self> {
        if user.index() >= ctx.ratings.n_users() {
            return Err(exrec_types::Error::UnknownUser { user });
        }
        let schema = ctx.catalog.schema();
        let rated: Vec<(ItemId, f64)> = ctx.ratings.user_ratings(user).to_vec();

        let mut raw: Vec<(String, f64)> = Vec::new();
        for def in schema.attributes() {
            let strength = match def.kind {
                AttributeKind::Categorical => {
                    categorical_strength(ctx, &rated, &def.name).unwrap_or(0.0)
                }
                AttributeKind::Numeric => numeric_strength(ctx, &rated, &def.name).unwrap_or(0.0),
                AttributeKind::Flag => flag_strength(ctx, &rated, &def.name).unwrap_or(0.0),
                AttributeKind::Text => continue, // folded into keywords
            };
            raw.push((def.name.clone(), strength));
        }
        if raw.is_empty() {
            raw.push(("(none)".to_owned(), 0.0));
        }

        // Mix with a uniform prior and normalize together with keywords.
        let n = raw.len() as f64;
        let uniform = 1.0 / (n + 1.0);
        let total_strength: f64 = raw.iter().map(|(_, s)| s).sum::<f64>().max(1e-9);
        let usable = rated.len() >= 3;
        let mut weights: Vec<(String, f64)> = raw
            .iter()
            .map(|(name, s)| {
                let learned = if usable { s / total_strength } else { uniform };
                (
                    name.clone(),
                    PRIOR_MIX * uniform + (1.0 - PRIOR_MIX) * learned * (n / (n + 1.0)),
                )
            })
            .collect();
        let keyword_weight = PRIOR_MIX * uniform + (1.0 - PRIOR_MIX) * (1.0 / (n + 1.0));
        // Renormalize to exactly 1.
        let sum: f64 = weights.iter().map(|(_, w)| w).sum::<f64>() + keyword_weight;
        for (_, w) in &mut weights {
            *w /= sum;
        }
        let keyword_weight = keyword_weight / sum;

        let ranges = ctx
            .catalog
            .schema()
            .attributes()
            .iter()
            .filter_map(|d| {
                ctx.catalog
                    .numeric_range(&d.name)
                    .map(|r| (d.name.clone(), r))
            })
            .collect();

        Ok(Self {
            attribute_weights: weights,
            keyword_weight,
            ranges,
        })
    }

    /// The learned weight of an attribute.
    pub fn weight_of(&self, attribute: &str) -> f64 {
        self.attribute_weights
            .iter()
            .find(|(n, _)| n == attribute)
            .map(|(_, w)| *w)
            .unwrap_or(0.0)
    }

    /// The keyword-overlap weight.
    pub fn keyword_weight(&self) -> f64 {
        self.keyword_weight
    }

    /// Similarity of two items in `[0, 1]`, with the named breakdown
    /// (largest contribution first).
    pub fn similarity(
        &self,
        a: &Item,
        b: &Item,
        schema: &exrec_types::DomainSchema,
    ) -> (f64, Vec<SimilarityTerm>) {
        let mut terms = Vec::new();
        for (name, weight) in &self.attribute_weights {
            let Some(def) = schema.attribute(name) else {
                continue;
            };
            let (match_frac, label) = match (a.attrs.get(name), b.attrs.get(name)) {
                (Some(va), Some(vb)) => match def.kind {
                    AttributeKind::Categorical => {
                        if va == vb {
                            (1.0, format!("same {} ({})", def.label.to_lowercase(), va))
                        } else {
                            (0.0, format!("different {}", def.label.to_lowercase()))
                        }
                    }
                    AttributeKind::Flag => {
                        if va == vb {
                            (1.0, format!("both {}: {}", def.label.to_lowercase(), va))
                        } else {
                            (0.0, format!("different {}", def.label.to_lowercase()))
                        }
                    }
                    AttributeKind::Numeric => {
                        let (lo, hi) = self.ranges.get(name).copied().unwrap_or((0.0, 1.0));
                        let span = (hi - lo).abs().max(1e-9);
                        let (x, y) = (
                            va.as_num().unwrap_or_default(),
                            vb.as_num().unwrap_or_default(),
                        );
                        let closeness = (1.0 - (x - y).abs() / span).max(0.0);
                        (
                            closeness,
                            format!(
                                "{} within {:.0}% of each other",
                                def.label.to_lowercase(),
                                (x - y).abs() / span * 100.0
                            ),
                        )
                    }
                    AttributeKind::Text => continue,
                },
                _ => (0.0, format!("{} not comparable", def.label.to_lowercase())),
            };
            terms.push(SimilarityTerm {
                label,
                contribution: weight * match_frac,
                weight: *weight,
            });
        }
        // Keyword overlap (Jaccard).
        let ka: std::collections::HashSet<&String> = a.keywords.iter().collect();
        let kb: std::collections::HashSet<&String> = b.keywords.iter().collect();
        let inter = ka.intersection(&kb).count();
        let union = ka.union(&kb).count().max(1);
        let jac = inter as f64 / union as f64;
        terms.push(SimilarityTerm {
            label: format!("{inter} shared keywords"),
            contribution: self.keyword_weight * jac,
            weight: self.keyword_weight,
        });

        terms.sort_by(|x, y| {
            y.contribution
                .partial_cmp(&x.contribution)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let total = terms
            .iter()
            .map(|t| t.contribution)
            .sum::<f64>()
            .clamp(0.0, 1.0);
        (total, terms)
    }

    /// A user-readable sentence: "For you, X and Y are 72% similar —
    /// mostly because same genre (comedy) and 2 shared keywords."
    pub fn explain_pair(&self, a: &Item, b: &Item, schema: &exrec_types::DomainSchema) -> String {
        let (total, terms) = self.similarity(a, b, schema);
        let top: Vec<String> = terms
            .iter()
            .filter(|t| t.contribution > 0.02)
            .take(2)
            .map(|t| t.label.clone())
            .collect();
        if top.is_empty() {
            format!(
                "For you, \"{}\" and \"{}\" are only {:.0}% similar — they share little \
                 that matters to you.",
                a.title,
                b.title,
                total * 100.0
            )
        } else {
            format!(
                "For you, \"{}\" and \"{}\" are {:.0}% similar — mostly because {}.",
                a.title,
                b.title,
                total * 100.0,
                crate::templates::join_natural(&top)
            )
        }
    }
}

/// Between-group variance share of the user's ratings across the values
/// of a categorical attribute.
fn categorical_strength(ctx: &Ctx<'_>, rated: &[(ItemId, f64)], attr: &str) -> Option<f64> {
    let mut groups: HashMap<String, Vec<f64>> = HashMap::new();
    for &(item, rating) in rated {
        let it = ctx.catalog.get(item).ok()?;
        if let Some(v) = it.attrs.cat(attr) {
            groups.entry(v.to_owned()).or_default().push(rating);
        }
    }
    let all: Vec<f64> = groups.values().flatten().copied().collect();
    if all.len() < 3 || groups.len() < 2 {
        return Some(0.0);
    }
    let grand = all.iter().sum::<f64>() / all.len() as f64;
    let total_ss: f64 = all.iter().map(|r| (r - grand).powi(2)).sum();
    if total_ss <= 1e-12 {
        return Some(0.0);
    }
    let between_ss: f64 = groups
        .values()
        .map(|g| {
            let m = g.iter().sum::<f64>() / g.len() as f64;
            g.len() as f64 * (m - grand).powi(2)
        })
        .sum();
    Some((between_ss / total_ss).clamp(0.0, 1.0))
}

/// |correlation| between the user's ratings and a numeric attribute.
fn numeric_strength(ctx: &Ctx<'_>, rated: &[(ItemId, f64)], attr: &str) -> Option<f64> {
    let pairs: Vec<(f64, f64)> = rated
        .iter()
        .filter_map(|&(item, rating)| {
            ctx.catalog
                .get(item)
                .ok()
                .and_then(|it| it.attrs.num(attr))
                .map(|v| (v, rating))
        })
        .collect();
    if pairs.len() < 3 {
        return Some(0.0);
    }
    Some(exrec_algo::similarity::pearson(&pairs).abs())
}

/// Flags behave like two-value categoricals.
fn flag_strength(ctx: &Ctx<'_>, rated: &[(ItemId, f64)], attr: &str) -> Option<f64> {
    let mut groups: HashMap<bool, Vec<f64>> = HashMap::new();
    for &(item, rating) in rated {
        let it = ctx.catalog.get(item).ok()?;
        if let Some(v) = it.attrs.flag(attr) {
            groups.entry(v).or_default().push(rating);
        }
    }
    if groups.len() < 2 {
        return Some(0.0);
    }
    let means: Vec<f64> = groups
        .values()
        .map(|g| g.iter().sum::<f64>() / g.len() as f64)
        .collect();
    let span = ctx.ratings.scale().span();
    Some(((means[0] - means[1]).abs() / span).clamp(0.0, 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use exrec_data::synth::{movies, WorldConfig};
    use exrec_data::World;

    fn world() -> World {
        movies::generate(&WorldConfig {
            n_users: 30,
            n_items: 50,
            density: 0.3,
            ..WorldConfig::default()
        })
    }

    /// Makes user 0 a pure genre-driven rater: 5★ for one genre, 1★ for
    /// everything else they rated.
    fn genre_driven(world: &mut World, genre: &str) -> UserId {
        let user = UserId::new(0);
        let rated: Vec<ItemId> = world
            .ratings
            .user_ratings(user)
            .iter()
            .map(|&(i, _)| i)
            .collect();
        for i in rated {
            world.ratings.unrate(user, i).unwrap();
        }
        let items: Vec<(ItemId, bool)> = world
            .catalog
            .iter()
            .take(20)
            .map(|it| (it.id, it.attrs.cat("genre") == Some(genre)))
            .collect();
        for (i, is_genre) in items {
            world
                .ratings
                .rate(user, i, if is_genre { 5.0 } else { 1.0 })
                .unwrap();
        }
        user
    }

    #[test]
    fn weights_adapt_to_the_user() {
        let mut w = world();
        let user = genre_driven(&mut w, "comedy");
        let ctx = Ctx::new(&w.ratings, &w.catalog);
        let sim = ExplainableSimilarity::fit(&ctx, user).unwrap();
        let genre_w = sim.weight_of("genre");
        // Genre must dominate every other single attribute for this user.
        for def in w.catalog.schema().attributes() {
            if def.name != "genre" && def.kind != AttributeKind::Text {
                assert!(
                    genre_w >= sim.weight_of(&def.name),
                    "genre ({genre_w:.3}) must outweigh {} ({:.3})",
                    def.name,
                    sim.weight_of(&def.name)
                );
            }
        }
    }

    #[test]
    fn weights_form_a_distribution() {
        let w = world();
        let ctx = Ctx::new(&w.ratings, &w.catalog);
        let user = w
            .ratings
            .users()
            .find(|&u| w.ratings.user_ratings(u).len() >= 5)
            .unwrap();
        let sim = ExplainableSimilarity::fit(&ctx, user).unwrap();
        let total: f64 = w
            .catalog
            .schema()
            .attributes()
            .iter()
            .map(|d| sim.weight_of(&d.name))
            .sum::<f64>()
            + sim.keyword_weight();
        assert!((total - 1.0).abs() < 1e-9, "weights sum to 1, got {total}");
    }

    #[test]
    fn decomposition_sums_to_total() {
        let w = world();
        let ctx = Ctx::new(&w.ratings, &w.catalog);
        let sim = ExplainableSimilarity::fit(&ctx, UserId::new(1)).unwrap();
        let a = w.catalog.get(ItemId::new(0)).unwrap();
        let b = w.catalog.get(ItemId::new(1)).unwrap();
        let (total, terms) = sim.similarity(a, b, w.catalog.schema());
        let sum: f64 = terms.iter().map(|t| t.contribution).sum();
        assert!((total - sum.clamp(0.0, 1.0)).abs() < 1e-9);
        assert!(terms
            .windows(2)
            .all(|p| p[0].contribution >= p[1].contribution));
        assert!((0.0..=1.0).contains(&total));
    }

    #[test]
    fn same_genre_pairs_score_higher_for_genre_driven_user() {
        let mut w = world();
        let user = genre_driven(&mut w, "comedy");
        let ctx = Ctx::new(&w.ratings, &w.catalog);
        let sim = ExplainableSimilarity::fit(&ctx, user).unwrap();
        let comedies: Vec<&Item> = w
            .catalog
            .iter()
            .filter(|it| it.attrs.cat("genre") == Some("comedy"))
            .take(2)
            .collect();
        let horror = w
            .catalog
            .iter()
            .find(|it| it.attrs.cat("genre") == Some("horror"))
            .unwrap();
        let (same, _) = sim.similarity(comedies[0], comedies[1], w.catalog.schema());
        let (cross, _) = sim.similarity(comedies[0], horror, w.catalog.schema());
        assert!(
            same > cross,
            "same-genre {same:.3} must beat cross-genre {cross:.3} for this user"
        );
    }

    #[test]
    fn sentence_is_user_readable() {
        let w = world();
        let ctx = Ctx::new(&w.ratings, &w.catalog);
        let sim = ExplainableSimilarity::fit(&ctx, UserId::new(2)).unwrap();
        let a = w.catalog.get(ItemId::new(0)).unwrap();
        let b = w.catalog.get(ItemId::new(1)).unwrap();
        let text = sim.explain_pair(a, b, w.catalog.schema());
        assert!(text.starts_with("For you,"));
        assert!(text.contains(&a.title));
        assert!(text.contains(&b.title));
        assert!(text.contains('%'));
    }

    #[test]
    fn cold_users_get_uniform_weights() {
        let w = world();
        let ctx = Ctx::new(&w.ratings, &w.catalog);
        let cold = w
            .ratings
            .users()
            .find(|&u| w.ratings.user_ratings(u).len() < 3);
        if let Some(cold) = cold {
            let sim = ExplainableSimilarity::fit(&ctx, cold).unwrap();
            let attrs = w.catalog.schema().attributes();
            let first = sim.weight_of(&attrs[0].name);
            for d in attrs.iter().skip(1) {
                if d.kind != AttributeKind::Text {
                    assert!((sim.weight_of(&d.name) - first).abs() < 1e-9);
                }
            }
        }
    }

    #[test]
    fn unknown_user_rejected() {
        let w = world();
        let ctx = Ctx::new(&w.ratings, &w.catalog);
        assert!(ExplainableSimilarity::fit(&ctx, UserId::new(9999)).is_err());
    }
}

//! Tiny template realization helpers.
//!
//! The survey's example explanations are natural-language sentences with
//! slots ("You have been watching a lot of {topic}, and {subtopic} in
//! particular…"). This module provides slot substitution and
//! list-joining so interface code stays readable.

use std::collections::HashMap;

/// Substitutes `{name}` slots in `template` from `values`. Unknown slots
/// are left verbatim (making missing data visible in tests rather than
/// silently dropped).
pub fn fill(template: &str, values: &HashMap<&str, String>) -> String {
    let mut out = String::with_capacity(template.len() + 16);
    let mut rest = template;
    while let Some(start) = rest.find('{') {
        out.push_str(&rest[..start]);
        match rest[start..].find('}') {
            Some(end_rel) => {
                let key = &rest[start + 1..start + end_rel];
                match values.get(key) {
                    Some(v) => out.push_str(v),
                    None => {
                        out.push('{');
                        out.push_str(key);
                        out.push('}');
                    }
                }
                rest = &rest[start + end_rel + 1..];
            }
            None => {
                out.push_str(&rest[start..]);
                rest = "";
            }
        }
    }
    out.push_str(rest);
    out
}

/// Joins items as natural language: `a`, `a and b`, `a, b and c`.
pub fn join_natural(items: &[String]) -> String {
    match items.len() {
        0 => String::new(),
        1 => items[0].clone(),
        2 => format!("{} and {}", items[0], items[1]),
        n => {
            let mut out = items[..n - 1].join(", ");
            out.push_str(" and ");
            out.push_str(&items[n - 1]);
            out
        }
    }
}

/// Formats a share as a percentage string: `0.347` → `"35%"`.
pub fn percent(share: f64) -> String {
    format!("{:.0}%", share * 100.0)
}

/// Formats a star rating compactly: `4.0` → `"4★"`, `3.5` → `"3.5★"`.
pub fn stars(rating: f64) -> String {
    if (rating.fract()).abs() < 1e-9 {
        format!("{}★", rating as i64)
    } else {
        format!("{rating:.1}★")
    }
}

/// Builds a one-entry slot map; `slots!` style convenience.
pub fn slots<const N: usize>(pairs: [(&'static str, String); N]) -> HashMap<&'static str, String> {
    pairs.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fill_substitutes_known_slots() {
        let vals = slots([
            ("item", "Pulp Fiction".to_owned()),
            ("actor", "Bruce Willis".to_owned()),
        ]);
        assert_eq!(
            fill("{item} is a thriller starring {actor}", &vals),
            "Pulp Fiction is a thriller starring Bruce Willis"
        );
    }

    #[test]
    fn fill_leaves_unknown_slots() {
        let vals = slots([("a", "x".to_owned())]);
        assert_eq!(fill("{a} {b}", &vals), "x {b}");
    }

    #[test]
    fn fill_handles_unclosed_brace() {
        let vals = slots([("a", "x".to_owned())]);
        assert_eq!(fill("{a} {oops", &vals), "x {oops");
    }

    #[test]
    fn join_natural_forms() {
        let v = |s: &[&str]| s.iter().map(|x| x.to_string()).collect::<Vec<_>>();
        assert_eq!(join_natural(&v(&[])), "");
        assert_eq!(join_natural(&v(&["a"])), "a");
        assert_eq!(join_natural(&v(&["a", "b"])), "a and b");
        assert_eq!(join_natural(&v(&["a", "b", "c"])), "a, b and c");
    }

    #[test]
    fn percent_and_stars() {
        assert_eq!(percent(0.347), "35%");
        assert_eq!(percent(1.0), "100%");
        assert_eq!(stars(4.0), "4★");
        assert_eq!(stars(3.5), "3.5★");
    }
}

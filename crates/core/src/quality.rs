//! Explanation-quality probes: does the explanation's cited evidence
//! actually drive the prediction?
//!
//! The survey evaluates explanation facilities by their *effects on
//! users*; the offline-metric literature that followed (Zanon et al.,
//! "Can Offline Metrics Measure Explanation Goals?"; Chen et al.,
//! "Measuring 'Why'") asks a complementary, machine-checkable question:
//! is the explanation *faithful* to the model? This module provides the
//! model-side primitives both the offline suite (`exrec-eval`) and the
//! online estimator (`exrec-obs`) build on:
//!
//! * [`evidence_units`] / [`evidence_score`] — every [`ModelEvidence`]
//!   variant decomposes into *citation units* (neighbors, anchors,
//!   features, utility terms) and an evidence-implied score recomputable
//!   with any prefix of the strongest citations removed;
//! * [`ablation_fidelity`] — the normalized score shift caused by
//!   ablating the top-cited units: high when the citations drive the
//!   prediction, zero when they are decorative;
//! * [`evidence_coverage`] — how much of the gathered evidence the
//!   rendered [`Explanation`] actually surfaces;
//! * [`provenance_depth`] — how many distinct evidence-bearing fragment
//!   kinds the explanation carries (a text-only paraphrase is shallow,
//!   a histogram + influence bars + disclosure is deep).
//!
//! All functions are pure and allocation-light; the online estimator
//! calls them on a 1-in-N sample of live requests.

use crate::explanation::{Explanation, Fragment};
use exrec_algo::ModelEvidence;

/// How many units the top-cited ablation removes by default. Matches the
/// "remove the strongest citation" probe of the fidelity literature.
pub const DEFAULT_ABLATE_TOP: usize = 1;

/// Number of discrete citation units the evidence decomposes into.
///
/// Unstructured evidence ([`ModelEvidence::Popularity`]) counts as a
/// single unit: the aggregate statistic is the citation.
pub fn evidence_units(evidence: &ModelEvidence) -> usize {
    match evidence {
        ModelEvidence::UserNeighbors { neighbors } => neighbors.len(),
        ModelEvidence::ItemNeighbors { anchors } => anchors.len(),
        ModelEvidence::Content {
            features,
            influences,
        } => {
            if influences.is_empty() {
                features.len()
            } else {
                influences.len()
            }
        }
        ModelEvidence::Utility { terms, .. } => terms.len(),
        ModelEvidence::Popularity { .. } => 1,
        ModelEvidence::Latent { terms, .. } => terms.len(),
        _ => 0,
    }
}

/// The evidence-implied score with the `exclude_top` strongest-cited
/// units removed.
///
/// Each variant recomputes the score the way its model family combines
/// the cited units (similarity-weighted rating means for neighbor
/// evidence, share-weighted rated-item influence for content,
/// satisfaction-weighted totals for utility, bias + contributions for
/// latent). Returns `None` when the exclusion leaves nothing to score —
/// the cited units *were* the entire evidence.
pub fn evidence_score(evidence: &ModelEvidence, exclude_top: usize) -> Option<f64> {
    fn weighted_mean(pairs: impl Iterator<Item = (f64, f64)>) -> Option<f64> {
        let (mut num, mut den) = (0.0f64, 0.0f64);
        for (w, v) in pairs {
            num += w.abs() * v;
            den += w.abs();
        }
        (den > 1e-12).then_some(num / den)
    }

    match evidence {
        ModelEvidence::UserNeighbors { neighbors } => weighted_mean(
            neighbors
                .iter()
                .skip(exclude_top)
                .map(|n| (n.similarity, n.rating)),
        ),
        ModelEvidence::ItemNeighbors { anchors } => weighted_mean(
            anchors
                .iter()
                .skip(exclude_top)
                .map(|a| (a.similarity, a.user_rating)),
        ),
        ModelEvidence::Content {
            features,
            influences,
        } => {
            if influences.is_empty() {
                // No rated-item influences: the feature weights *are*
                // the score decomposition.
                let rest: Vec<f64> = features
                    .iter()
                    .skip(exclude_top)
                    .map(|f| f.weight)
                    .collect();
                (!rest.is_empty()).then(|| rest.iter().sum())
            } else {
                weighted_mean(
                    influences
                        .iter()
                        .skip(exclude_top)
                        .map(|i| (i.share, i.user_rating)),
                )
            }
        }
        ModelEvidence::Utility { terms, .. } => {
            // Terms arrive in schema order; the citation order is by
            // weighted contribution, strongest first.
            let mut order: Vec<usize> = (0..terms.len()).collect();
            order.sort_by(|&a, &b| {
                let ka = terms[a].weight * terms[a].satisfaction;
                let kb = terms[b].weight * terms[b].satisfaction;
                kb.partial_cmp(&ka).unwrap_or(std::cmp::Ordering::Equal)
            });
            weighted_mean(
                order
                    .into_iter()
                    .skip(exclude_top)
                    .map(|i| (terms[i].weight, terms[i].satisfaction)),
            )
        }
        ModelEvidence::Popularity { mean, .. } => (exclude_top == 0).then_some(*mean),
        ModelEvidence::Latent { terms, bias } => {
            if exclude_top > terms.len() {
                None
            } else {
                Some(
                    bias + terms
                        .iter()
                        .skip(exclude_top)
                        .map(|t| t.contribution)
                        .sum::<f64>(),
                )
            }
        }
        _ => None,
    }
}

/// Citation-ablation fidelity in `[0, 1]`.
///
/// Removes the `ablate` strongest-cited evidence units, recomputes the
/// evidence-implied score, and returns the absolute shift normalized by
/// `span` (the rating-scale width for rating-valued evidence, `1.0` for
/// unit-interval evidence). When ablation leaves nothing to score, the
/// shift is measured against `baseline` — the model's no-evidence
/// fallback (a user or global mean for CF models, the scale midpoint
/// otherwise).
///
/// A high value means the cited evidence genuinely drives the
/// prediction; `0.0` means the citations are decorative (or the
/// evidence-implied score could not be computed at all).
pub fn ablation_fidelity(evidence: &ModelEvidence, ablate: usize, baseline: f64, span: f64) -> f64 {
    let Some(full) = evidence_score(evidence, 0) else {
        return 0.0;
    };
    let ablated = evidence_score(evidence, ablate.max(1)).unwrap_or(baseline);
    let span = if span.abs() > 1e-12 { span.abs() } else { 1.0 };
    ((full - ablated).abs() / span).clamp(0.0, 1.0)
}

/// How many evidence units the rendered explanation surfaces.
///
/// Counts the typed, evidence-bearing content: histogram bins, influence
/// bars, key-value facts and disclosures. Free text does not count — a
/// paraphrase surfaces a claim, not a citation.
pub fn surfaced_units(explanation: &Explanation) -> usize {
    explanation
        .fragments
        .iter()
        .map(|f| match f {
            Fragment::Histogram { bins, .. } => bins.len(),
            Fragment::InfluenceBar { .. } => 1,
            Fragment::KeyValue { .. } => 1,
            Fragment::Disclosure { .. } => 1,
            _ => 0,
        })
        .sum()
}

/// Evidence coverage in `[0, 1]`: surfaced units over gathered units.
///
/// An interface that shows all eight neighbors covers more of its
/// evidence than one that paraphrases them into a sentence; coverage 0
/// means the explanation cites nothing it could be checked against.
pub fn evidence_coverage(explanation: &Explanation, evidence: &ModelEvidence) -> f64 {
    let gathered = evidence_units(evidence);
    if gathered == 0 {
        return 0.0;
    }
    (surfaced_units(explanation) as f64 / gathered as f64).clamp(0.0, 1.0)
}

/// Provenance depth: the number of *distinct* evidence-bearing fragment
/// kinds (histogram, influence bar, key-value, disclosure) present.
///
/// Depth 0 is a bare paraphrase; each additional kind is another way
/// the user can trace the recommendation back to its evidence.
pub fn provenance_depth(explanation: &Explanation) -> usize {
    let mut hist = false;
    let mut bar = false;
    let mut kv = false;
    let mut disc = false;
    for f in &explanation.fragments {
        match f {
            Fragment::Histogram { .. } => hist = true,
            Fragment::InfluenceBar { .. } => bar = true,
            Fragment::KeyValue { .. } => kv = true,
            Fragment::Disclosure { .. } => disc = true,
            _ => {}
        }
    }
    usize::from(hist) + usize::from(bar) + usize::from(kv) + usize::from(disc)
}

/// Maximum provenance depth [`provenance_depth`] can report.
pub const MAX_PROVENANCE_DEPTH: usize = 4;

/// One sampled quality measurement over an (explanation, evidence) pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QualityProbe {
    /// Citation-ablation fidelity in `[0, 1]` ([`ablation_fidelity`]).
    pub fidelity: f64,
    /// Evidence coverage in `[0, 1]` ([`evidence_coverage`]).
    pub coverage: f64,
    /// Provenance depth, `0..=4` ([`provenance_depth`]).
    pub provenance_depth: usize,
}

impl QualityProbe {
    /// Measures one explanation against the evidence it was generated
    /// from. `baseline` and `span` parameterize the fidelity ablation
    /// (see [`ablation_fidelity`]).
    pub fn measure(
        explanation: &Explanation,
        evidence: &ModelEvidence,
        baseline: f64,
        span: f64,
    ) -> Self {
        QualityProbe {
            fidelity: ablation_fidelity(evidence, DEFAULT_ABLATE_TOP, baseline, span),
            coverage: evidence_coverage(explanation, evidence),
            provenance_depth: provenance_depth(explanation),
        }
    }

    /// Scalar summary in `[0, 1]` — the mean of fidelity, coverage and
    /// normalized provenance depth. This is the single number exported
    /// per request by the online estimator; the offline suite keeps the
    /// components separate.
    pub fn score(&self) -> f64 {
        let depth = self.provenance_depth as f64 / MAX_PROVENANCE_DEPTH as f64;
        ((self.fidelity + self.coverage + depth) / 3.0).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aims::AimProfile;
    use crate::explanation::HistBin;
    use crate::explanation::Tone;
    use crate::style::ExplanationStyle;
    use exrec_algo::recommender::{FeatureInfluence, NeighborContribution, UtilityTerm};
    use exrec_types::UserId;

    fn neighbors(spec: &[(f64, f64)]) -> ModelEvidence {
        ModelEvidence::UserNeighbors {
            neighbors: spec
                .iter()
                .enumerate()
                .map(|(i, &(similarity, rating))| NeighborContribution {
                    user: UserId::new(i as u32),
                    similarity,
                    rating,
                })
                .collect(),
        }
    }

    #[test]
    fn evidence_score_is_similarity_weighted_mean() {
        let ev = neighbors(&[(0.8, 5.0), (0.2, 1.0)]);
        let full = evidence_score(&ev, 0).unwrap();
        assert!((full - (0.8 * 5.0 + 0.2 * 1.0) / 1.0).abs() < 1e-12);
        let ablated = evidence_score(&ev, 1).unwrap();
        assert!((ablated - 1.0).abs() < 1e-12, "only the weak neighbor left");
        assert!(evidence_score(&ev, 2).is_none(), "nothing left to score");
    }

    #[test]
    fn fidelity_high_when_top_citation_drives_the_score() {
        // Strong neighbor loves the item, weak one hates it: removing
        // the citation swings the implied score across the scale.
        let driving = neighbors(&[(0.9, 5.0), (0.1, 1.0)]);
        let fidelity = ablation_fidelity(&driving, 1, 3.0, 4.0);
        assert!(fidelity > 0.5, "driving citation ablates hard: {fidelity}");

        // Decoy: every cited neighbor says the same thing, so removing
        // the top citation moves nothing.
        let decoy = neighbors(&[(0.9, 3.0), (0.1, 3.0)]);
        let flat = ablation_fidelity(&decoy, 1, 3.0, 4.0);
        assert!(flat < 1e-9, "decorative citation ablates to nothing");
        assert!(fidelity > flat);
    }

    #[test]
    fn fidelity_of_single_unit_measures_against_baseline() {
        let ev = neighbors(&[(1.0, 5.0)]);
        // Baseline (user mean) 3.0 on a span-4 scale: |5 - 3| / 4.
        let f = ablation_fidelity(&ev, 1, 3.0, 4.0);
        assert!((f - 0.5).abs() < 1e-12);
        let pop = ModelEvidence::Popularity {
            mean: 4.0,
            count: 10,
        };
        let f = ablation_fidelity(&pop, 1, 3.0, 4.0);
        assert!((f - 0.25).abs() < 1e-12);
    }

    #[test]
    fn utility_citation_order_is_by_weighted_contribution() {
        let ev = ModelEvidence::Utility {
            terms: vec![
                UtilityTerm {
                    attribute: "price".into(),
                    satisfaction: 0.2,
                    weight: 1.0,
                    detail: String::new(),
                },
                UtilityTerm {
                    attribute: "zoom".into(),
                    satisfaction: 0.9,
                    weight: 2.0,
                    detail: String::new(),
                },
            ],
            total: 0.66,
        };
        // Top citation is zoom (0.9 * 2.0), not price (schema order).
        let ablated = evidence_score(&ev, 1).unwrap();
        assert!((ablated - 0.2).abs() < 1e-12, "price term remains");
    }

    #[test]
    fn content_falls_back_to_feature_weights() {
        let ev = ModelEvidence::Content {
            features: vec![
                FeatureInfluence {
                    feature: "space".into(),
                    weight: 0.7,
                },
                FeatureInfluence {
                    feature: "robot".into(),
                    weight: 0.1,
                },
            ],
            influences: vec![],
        };
        assert_eq!(evidence_units(&ev), 2);
        let full = evidence_score(&ev, 0).unwrap();
        assert!((full - 0.8).abs() < 1e-12);
        let ablated = evidence_score(&ev, 1).unwrap();
        assert!((ablated - 0.1).abs() < 1e-12);
    }

    fn explanation_with(fragments: Vec<Fragment>) -> Explanation {
        Explanation::new(
            "test",
            ExplanationStyle::CollaborativeBased,
            AimProfile::empty(),
            fragments,
        )
    }

    #[test]
    fn coverage_counts_surfaced_over_gathered() {
        let ev = neighbors(&[(0.9, 5.0), (0.5, 4.0), (0.2, 2.0), (0.1, 3.0)]);
        let expl = explanation_with(vec![
            Fragment::Text("Your neighbors liked this.".into()),
            Fragment::Histogram {
                title: "Neighbors".into(),
                bins: vec![
                    HistBin {
                        label: "good".into(),
                        count: 2,
                        tone: Tone::Good,
                    },
                    HistBin {
                        label: "bad".into(),
                        count: 2,
                        tone: Tone::Bad,
                    },
                ],
            },
        ]);
        assert_eq!(surfaced_units(&expl), 2);
        assert!((evidence_coverage(&expl, &ev) - 0.5).abs() < 1e-12);
        let text_only = explanation_with(vec![Fragment::Text("Trust us.".into())]);
        assert_eq!(evidence_coverage(&text_only, &ev), 0.0);
    }

    #[test]
    fn provenance_depth_counts_distinct_kinds() {
        let shallow = explanation_with(vec![Fragment::Text("ok".into())]);
        assert_eq!(provenance_depth(&shallow), 0);
        let deep = explanation_with(vec![
            Fragment::Histogram {
                title: "h".into(),
                bins: vec![],
            },
            Fragment::InfluenceBar {
                title: "i".into(),
                rating: 4.0,
                share: 0.5,
            },
            Fragment::InfluenceBar {
                title: "j".into(),
                rating: 3.0,
                share: 0.2,
            },
            Fragment::KeyValue {
                key: "k".into(),
                value: "v".into(),
            },
            Fragment::Disclosure {
                strength: 4.2,
                confidence: None,
            },
        ]);
        assert_eq!(provenance_depth(&deep), MAX_PROVENANCE_DEPTH);
    }

    #[test]
    fn probe_score_is_bounded_and_monotone_in_components() {
        let ev = neighbors(&[(0.9, 5.0), (0.1, 1.0)]);
        let rich = explanation_with(vec![
            Fragment::Histogram {
                title: "h".into(),
                bins: vec![HistBin {
                    label: "5".into(),
                    count: 1,
                    tone: Tone::Good,
                }],
            },
            Fragment::Disclosure {
                strength: 4.5,
                confidence: None,
            },
        ]);
        let poor = explanation_with(vec![Fragment::Text("just trust the system".into())]);
        let rich_probe = QualityProbe::measure(&rich, &ev, 3.0, 4.0);
        let poor_probe = QualityProbe::measure(&poor, &ev, 3.0, 4.0);
        assert!(rich_probe.score() > poor_probe.score());
        assert!((0.0..=1.0).contains(&rich_probe.score()));
        assert!((0.0..=1.0).contains(&poor_probe.score()));
        assert_eq!(rich_probe.fidelity, poor_probe.fidelity, "same evidence");
    }
}

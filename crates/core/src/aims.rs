//! The seven aims of an explanation facility (survey Table 1).
//!
//! > *"When choosing and comparing explanation techniques, it is very
//! > important to agree on what the explanation is trying to achieve."*
//! > — survey, Conclusion
//!
//! Every explanation interface in the toolkit declares an [`AimProfile`];
//! the registry crate generates the survey's Table 1 and Table 2 from
//! these declarations, and the evaluation crate keys its per-aim metrics
//! off the same type.

use serde::{Deserialize, Serialize};
use std::fmt;

/// One of the seven aims an explanation facility can pursue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Aim {
    /// Explain how the system works.
    Transparency,
    /// Allow users to tell the system it is wrong.
    Scrutability,
    /// Increase users' confidence in the system.
    Trust,
    /// Help users make good decisions.
    Effectiveness,
    /// Convince users to try or buy.
    Persuasiveness,
    /// Help users make decisions faster.
    Efficiency,
    /// Increase the ease of usability or enjoyment.
    Satisfaction,
}

impl Aim {
    /// All seven aims, in the survey's Table 1 order.
    pub const ALL: [Aim; 7] = [
        Aim::Transparency,
        Aim::Scrutability,
        Aim::Trust,
        Aim::Effectiveness,
        Aim::Persuasiveness,
        Aim::Efficiency,
        Aim::Satisfaction,
    ];

    /// The aim's name as printed in Table 1.
    pub fn name(self) -> &'static str {
        match self {
            Aim::Transparency => "Transparency",
            Aim::Scrutability => "Scrutability",
            Aim::Trust => "Trust",
            Aim::Effectiveness => "Effectiveness",
            Aim::Persuasiveness => "Persuasiveness",
            Aim::Efficiency => "Efficiency",
            Aim::Satisfaction => "Satisfaction",
        }
    }

    /// The abbreviation used in the survey's Tables 1 and 2.
    pub fn abbreviation(self) -> &'static str {
        match self {
            Aim::Transparency => "Tra.",
            Aim::Scrutability => "Scr.",
            Aim::Trust => "Trust",
            Aim::Effectiveness => "Efk.",
            Aim::Persuasiveness => "Pers.",
            Aim::Efficiency => "Efc.",
            Aim::Satisfaction => "Sat.",
        }
    }

    /// The definition as printed in Table 1.
    pub fn definition(self) -> &'static str {
        match self {
            Aim::Transparency => "Explain how the system works",
            Aim::Scrutability => "Allow users to tell the system it is wrong",
            Aim::Trust => "Increase users' confidence in the system",
            Aim::Effectiveness => "Help users make good decisions",
            Aim::Persuasiveness => "Convince users to try or buy",
            Aim::Efficiency => "Help users make decisions faster",
            Aim::Satisfaction => "Increase the ease of usability or enjoyment",
        }
    }

    /// The aim this one most directly trades off against (survey
    /// Section 3.8): transparency costs efficiency (reading explanations
    /// takes time) and persuasiveness costs effectiveness (over-selling
    /// leads to regretted choices). Aims without a canonical antagonist
    /// return `None`.
    pub fn tension(self) -> Option<Aim> {
        match self {
            Aim::Transparency => Some(Aim::Efficiency),
            Aim::Efficiency => Some(Aim::Transparency),
            Aim::Persuasiveness => Some(Aim::Effectiveness),
            Aim::Effectiveness => Some(Aim::Persuasiveness),
            _ => None,
        }
    }
}

impl fmt::Display for Aim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A set of aims an explanation interface (or a whole system) pursues.
///
/// Compact bitset representation; iteration order is Table 1 order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct AimProfile {
    bits: u8,
}

impl AimProfile {
    /// The empty profile.
    pub const fn empty() -> Self {
        Self { bits: 0 }
    }

    /// A profile from a list of aims.
    pub fn of(aims: &[Aim]) -> Self {
        let mut p = Self::empty();
        for &a in aims {
            p.insert(a);
        }
        p
    }

    fn bit(aim: Aim) -> u8 {
        1 << (Aim::ALL.iter().position(|&a| a == aim).expect("aim in ALL") as u8)
    }

    /// Adds an aim.
    pub fn insert(&mut self, aim: Aim) {
        self.bits |= Self::bit(aim);
    }

    /// Removes an aim.
    pub fn remove(&mut self, aim: Aim) {
        self.bits &= !Self::bit(aim);
    }

    /// Whether the profile contains `aim`.
    pub fn contains(&self, aim: Aim) -> bool {
        self.bits & Self::bit(aim) != 0
    }

    /// Number of aims in the profile.
    pub fn len(&self) -> usize {
        self.bits.count_ones() as usize
    }

    /// Whether the profile is empty.
    pub fn is_empty(&self) -> bool {
        self.bits == 0
    }

    /// Iterates the contained aims in Table 1 order.
    pub fn iter(&self) -> impl Iterator<Item = Aim> + '_ {
        Aim::ALL.into_iter().filter(|&a| self.contains(a))
    }

    /// Aims in this profile whose canonical antagonist is *also* in the
    /// profile — design tensions the operator should resolve
    /// (Section 3.8's "it is a trade-off").
    pub fn tensions(&self) -> Vec<(Aim, Aim)> {
        let mut out = Vec::new();
        for a in self.iter() {
            if let Some(t) = a.tension() {
                if self.contains(t) && a < t {
                    out.push((a, t));
                }
            }
        }
        out
    }
}

impl fmt::Display for AimProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names: Vec<&str> = self.iter().map(|a| a.abbreviation()).collect();
        write!(f, "{}", names.join(", "))
    }
}

impl FromIterator<Aim> for AimProfile {
    fn from_iter<I: IntoIterator<Item = Aim>>(iter: I) -> Self {
        let mut p = Self::empty();
        for a in iter {
            p.insert(a);
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_definitions_are_verbatim() {
        // These strings ARE the reproduction of Table 1 — keep verbatim.
        assert_eq!(
            Aim::Transparency.definition(),
            "Explain how the system works"
        );
        assert_eq!(
            Aim::Scrutability.definition(),
            "Allow users to tell the system it is wrong"
        );
        assert_eq!(
            Aim::Trust.definition(),
            "Increase users' confidence in the system"
        );
        assert_eq!(
            Aim::Effectiveness.definition(),
            "Help users make good decisions"
        );
        assert_eq!(
            Aim::Persuasiveness.definition(),
            "Convince users to try or buy"
        );
        assert_eq!(
            Aim::Efficiency.definition(),
            "Help users make decisions faster"
        );
        assert_eq!(
            Aim::Satisfaction.definition(),
            "Increase the ease of usability or enjoyment"
        );
    }

    #[test]
    fn all_has_seven_distinct_aims() {
        assert_eq!(Aim::ALL.len(), 7);
        let mut v = Aim::ALL.to_vec();
        v.sort();
        v.dedup();
        assert_eq!(v.len(), 7);
    }

    #[test]
    fn profile_set_operations() {
        let mut p = AimProfile::empty();
        assert!(p.is_empty());
        p.insert(Aim::Trust);
        p.insert(Aim::Trust);
        p.insert(Aim::Satisfaction);
        assert_eq!(p.len(), 2);
        assert!(p.contains(Aim::Trust));
        assert!(!p.contains(Aim::Efficiency));
        p.remove(Aim::Trust);
        assert!(!p.contains(Aim::Trust));
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn profile_iterates_in_table_order() {
        let p = AimProfile::of(&[Aim::Satisfaction, Aim::Transparency, Aim::Persuasiveness]);
        let order: Vec<Aim> = p.iter().collect();
        assert_eq!(
            order,
            vec![Aim::Transparency, Aim::Persuasiveness, Aim::Satisfaction]
        );
    }

    #[test]
    fn tensions_are_symmetric_and_detected() {
        assert_eq!(Aim::Transparency.tension(), Some(Aim::Efficiency));
        assert_eq!(Aim::Efficiency.tension(), Some(Aim::Transparency));
        let p = AimProfile::of(&[Aim::Transparency, Aim::Efficiency, Aim::Trust]);
        assert_eq!(p.tensions(), vec![(Aim::Transparency, Aim::Efficiency)]);
        let q = AimProfile::of(&[Aim::Trust, Aim::Satisfaction]);
        assert!(q.tensions().is_empty());
    }

    #[test]
    fn display_uses_abbreviations() {
        let p = AimProfile::of(&[Aim::Transparency, Aim::Effectiveness]);
        assert_eq!(p.to_string(), "Tra., Efk.");
    }

    #[test]
    fn from_iterator() {
        let p: AimProfile = [Aim::Trust, Aim::Trust, Aim::Efficiency]
            .into_iter()
            .collect();
        assert_eq!(p.len(), 2);
    }
}

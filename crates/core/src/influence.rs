//! Algorithm-agnostic leave-one-out influence (survey Figure 3).
//!
//! Bilgic & Mooney's influence explanation shows, for each item the user
//! rated, how much that rating moved the current recommendation. Content
//! models compute this natively; for *any* other recommender the same
//! quantity can be obtained by removing one rating at a time and
//! re-predicting. O(rated × predict) — fine at study scale, and exact.

use exrec_algo::recommender::RatedItemInfluence;
use exrec_algo::{Ctx, Recommender};
use exrec_data::{Catalog, RatingsMatrix};
use exrec_types::{ItemId, Result, UserId};

/// Computes leave-one-out influences of every rating `user` has made on
/// the prediction for `item`, normalized to shares (largest first).
///
/// Ratings whose removal makes the prediction impossible count the *full*
/// prediction swing to the scale midpoint — losing predictability is the
/// strongest possible influence.
///
/// # Errors
///
/// Propagates the base prediction's errors.
pub fn loo_influences(
    recommender: &dyn Recommender,
    ratings: &RatingsMatrix,
    catalog: &Catalog,
    user: UserId,
    item: ItemId,
) -> Result<Vec<RatedItemInfluence>> {
    let base = {
        let ctx = Ctx::new(ratings, catalog);
        recommender.predict(&ctx, user, item)?.score
    };
    let midpoint = ratings.scale().midpoint();
    let rated: Vec<(ItemId, f64)> = ratings.user_ratings(user).to_vec();

    let mut working = ratings.clone();
    let mut influences = Vec::with_capacity(rated.len());
    for &(rated_item, user_rating) in &rated {
        working
            .unrate(user, rated_item)
            .expect("rated items are in range");
        let delta = {
            let ctx = Ctx::new(&working, catalog);
            match recommender.predict(&ctx, user, item) {
                Ok(p) => (base - p.score).abs(),
                Err(_) => (base - midpoint).abs().max(ratings.scale().span() * 0.25),
            }
        };
        working
            .rate(user, rated_item, user_rating)
            .expect("restoring a removed rating");
        if delta > 1e-12 {
            influences.push(RatedItemInfluence {
                item: rated_item,
                user_rating,
                share: delta,
            });
        }
    }

    let total: f64 = influences.iter().map(|i| i.share).sum();
    if total > 1e-12 {
        for inf in &mut influences {
            inf.share /= total;
        }
    }
    influences.sort_by(|a, b| {
        b.share
            .partial_cmp(&a.share)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.item.cmp(&b.item))
    });
    Ok(influences)
}

#[cfg(test)]
mod tests {
    use super::*;
    use exrec_algo::item_knn::{ItemKnn, ItemKnnConfig};
    use exrec_algo::UserKnn;
    use exrec_data::synth::{movies, WorldConfig};
    use exrec_data::World;

    fn world() -> World {
        movies::generate(&WorldConfig {
            n_users: 30,
            n_items: 25,
            density: 0.4,
            ..WorldConfig::default()
        })
    }

    fn target(w: &World) -> (UserId, ItemId) {
        let knn = UserKnn::default();
        let ctx = Ctx::new(&w.ratings, &w.catalog);
        for u in w.ratings.users() {
            if w.ratings.user_ratings(u).len() < 4 {
                continue;
            }
            for i in w.catalog.ids() {
                if w.ratings.rating(u, i).is_none() && knn.predict(&ctx, u, i).is_ok() {
                    return (u, i);
                }
            }
        }
        panic!("no predictable pair in fixture");
    }

    #[test]
    fn shares_form_sorted_distribution() {
        let w = world();
        let (u, i) = target(&w);
        let knn = UserKnn::default();
        let infl = loo_influences(&knn, &w.ratings, &w.catalog, u, i).unwrap();
        if infl.is_empty() {
            return; // prediction insensitive to single ratings here
        }
        let sum: f64 = infl.iter().map(|x| x.share).sum();
        assert!((sum - 1.0).abs() < 1e-9, "sum={sum}");
        assert!(infl.windows(2).all(|w| w[0].share >= w[1].share));
    }

    #[test]
    fn influences_reference_users_own_ratings() {
        let w = world();
        let (u, i) = target(&w);
        let knn = UserKnn::default();
        let infl = loo_influences(&knn, &w.ratings, &w.catalog, u, i).unwrap();
        for inf in &infl {
            assert_eq!(w.ratings.rating(u, inf.item), Some(inf.user_rating));
        }
    }

    #[test]
    fn matrix_is_restored_after_computation() {
        let w = world();
        let (u, i) = target(&w);
        let before = w.ratings.clone();
        let knn = UserKnn::default();
        let _ = loo_influences(&knn, &w.ratings, &w.catalog, u, i).unwrap();
        assert_eq!(w.ratings, before, "input matrix must not be mutated");
    }

    #[test]
    fn works_for_item_knn_too() {
        let w = world();
        let ctx = Ctx::new(&w.ratings, &w.catalog);
        let model = ItemKnn::fit(&ctx, ItemKnnConfig::default()).unwrap();
        // Find a pair item-kNN can predict.
        for u in w.ratings.users() {
            for i in w.catalog.ids() {
                if w.ratings.rating(u, i).is_none() && model.predict(&ctx, u, i).is_ok() {
                    let infl = loo_influences(&model, &w.ratings, &w.catalog, u, i).unwrap();
                    // Anchors are the user's own rated items, so most
                    // influences should be nonzero when anchors exist.
                    assert!(infl.iter().all(|x| x.share >= 0.0));
                    return;
                }
            }
        }
    }
}

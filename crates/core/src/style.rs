//! Explanation-content styles (survey Conclusion and Tables 3/4).
//!
//! The survey classifies the *content* of explanations independently of
//! the underlying algorithm:
//!
//! * content-based — "We have recommended X because you liked Y"
//! * collaborative-based — "People who liked X also liked Y"
//! * preference-based — "Your interests suggest that you would like X"

use serde::{Deserialize, Serialize};
use std::fmt;

/// The content style of an explanation, as used in the "Explanation"
/// column of the survey's Tables 3 and 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ExplanationStyle {
    /// "We have recommended X because you liked Y."
    ContentBased,
    /// "People who liked X also liked Y."
    CollaborativeBased,
    /// "Your interests suggest that you would like X."
    PreferenceBased,
    /// No justification is shown (control condition in studies).
    None,
}

impl ExplanationStyle {
    /// All substantive styles (excludes [`ExplanationStyle::None`]).
    pub const ALL: [ExplanationStyle; 3] = [
        ExplanationStyle::ContentBased,
        ExplanationStyle::CollaborativeBased,
        ExplanationStyle::PreferenceBased,
    ];

    /// Name as used in the survey's tables.
    pub fn name(self) -> &'static str {
        match self {
            ExplanationStyle::ContentBased => "Content-based",
            ExplanationStyle::CollaborativeBased => "Collaborative-based",
            ExplanationStyle::PreferenceBased => "Preference-based",
            ExplanationStyle::None => "(None)",
        }
    }

    /// The canonical template sentence the survey gives for the style.
    pub fn canonical_template(self) -> &'static str {
        match self {
            ExplanationStyle::ContentBased => {
                "We have recommended {item} because you liked {anchor}"
            }
            ExplanationStyle::CollaborativeBased => "People who liked {anchor} also liked {item}",
            ExplanationStyle::PreferenceBased => {
                "Your interests suggest that you would like {item}"
            }
            ExplanationStyle::None => "",
        }
    }
}

impl fmt::Display for ExplanationStyle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_match_survey_tables() {
        assert_eq!(ExplanationStyle::ContentBased.name(), "Content-based");
        assert_eq!(
            ExplanationStyle::CollaborativeBased.name(),
            "Collaborative-based"
        );
        assert_eq!(ExplanationStyle::PreferenceBased.name(), "Preference-based");
    }

    #[test]
    fn canonical_templates_have_item_slot() {
        for s in ExplanationStyle::ALL {
            assert!(s.canonical_template().contains("{item}"));
        }
        assert!(ExplanationStyle::None.canonical_template().is_empty());
    }
}

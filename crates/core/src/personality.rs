//! Recommender "personality" (survey Section 4.6).
//!
//! A recommendation operates along two dimensions — *strength* (how much
//! the system thinks the user will like the item) and *confidence* (how
//! sure it is). A system may be **bold** (recommend more strongly than
//! warranted), **frank** (state its true confidence, shrinking uncertain
//! scores), **affirming** (lean toward familiar, popular items, which
//! builds trust), or **serendipitous** (lean toward novel items, which
//! builds satisfaction). [`PersonalityLens`] wraps any recommender and
//! applies the corresponding adjustment.

use exrec_algo::{Ctx, ModelEvidence, Recommender, Scored};
use exrec_types::{Confidence, ItemId, Prediction, Result, UserId};

/// The personality a recommender projects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Personality {
    /// No adjustment; confidence is not disclosed.
    #[default]
    Neutral,
    /// Inflates strength toward the scale maximum; hides confidence.
    Bold,
    /// Shrinks uncertain scores toward the user's mean; always disclosed.
    Frank,
    /// Boosts familiar (heavily-rated) items in rankings.
    Affirming,
    /// Boosts novel (rarely-rated) items in rankings.
    Serendipitous,
}

impl Personality {
    /// Whether this personality discloses confidence in explanations.
    pub fn discloses_confidence(self) -> bool {
        matches!(self, Personality::Frank)
    }

    /// All personalities.
    pub const ALL: [Personality; 5] = [
        Personality::Neutral,
        Personality::Bold,
        Personality::Frank,
        Personality::Affirming,
        Personality::Serendipitous,
    ];

    /// Short name.
    pub fn name(self) -> &'static str {
        match self {
            Personality::Neutral => "neutral",
            Personality::Bold => "bold",
            Personality::Frank => "frank",
            Personality::Affirming => "affirming",
            Personality::Serendipitous => "serendipitous",
        }
    }
}

/// Wraps a recommender with a personality.
pub struct PersonalityLens<R> {
    inner: R,
    personality: Personality,
}

impl<R: Recommender> PersonalityLens<R> {
    /// Wraps `inner` with `personality`.
    pub fn new(inner: R, personality: Personality) -> Self {
        Self { inner, personality }
    }

    /// The wrapped personality.
    pub fn personality(&self) -> Personality {
        self.personality
    }

    /// The inner recommender.
    pub fn inner(&self) -> &R {
        &self.inner
    }

    fn adjust(&self, ctx: &Ctx<'_>, user: UserId, p: Prediction) -> Prediction {
        let scale = ctx.ratings.scale();
        match self.personality {
            Personality::Neutral | Personality::Affirming | Personality::Serendipitous => p,
            Personality::Bold => {
                // Push a third of the remaining headroom, more when unsure
                // (boldness papers over uncertainty).
                let headroom = scale.max() - p.score;
                let push = headroom * (0.25 + 0.25 * (1.0 - p.confidence.value()));
                Prediction::new(scale.bound(p.score + push), Confidence::new(0.95))
            }
            Personality::Frank => {
                // Shrink toward the user's mean in proportion to doubt.
                let anchor = ctx
                    .ratings
                    .user_mean(user)
                    .unwrap_or_else(|| scale.midpoint());
                let trust = p.confidence.value();
                Prediction::new(
                    scale.bound(anchor + (p.score - anchor) * (0.5 + 0.5 * trust)),
                    p.confidence,
                )
            }
        }
    }

    /// Ranking bias for familiarity/novelty personalities, in score units.
    fn rank_bias(&self, ctx: &Ctx<'_>, item: ItemId) -> f64 {
        let n_users = ctx.ratings.n_users().max(1) as f64;
        let familiarity = ctx.ratings.item_ratings(item).len() as f64 / n_users;
        let span = ctx.ratings.scale().span();
        match self.personality {
            Personality::Affirming => 0.3 * span * familiarity,
            Personality::Serendipitous => 0.3 * span * (1.0 - familiarity),
            _ => 0.0,
        }
    }
}

impl<R: Recommender> Recommender for PersonalityLens<R> {
    fn name(&self) -> &'static str {
        // Personality is presentation-level; the algorithm identity stays.
        self.inner.name()
    }

    fn predict(&self, ctx: &Ctx<'_>, user: UserId, item: ItemId) -> Result<Prediction> {
        let p = self.inner.predict(ctx, user, item)?;
        Ok(self.adjust(ctx, user, p))
    }

    fn evidence(&self, ctx: &Ctx<'_>, user: UserId, item: ItemId) -> Result<ModelEvidence> {
        self.inner.evidence(ctx, user, item)
    }

    fn recommend(&self, ctx: &Ctx<'_>, user: UserId, n: usize) -> Vec<Scored> {
        let mut scored = self.inner.recommend(ctx, user, usize::MAX);
        for s in &mut scored {
            s.prediction = self.adjust(ctx, user, s.prediction);
        }
        match self.personality {
            Personality::Affirming | Personality::Serendipitous => {
                scored.sort_by(|a, b| {
                    let ka = a.prediction.score + self.rank_bias(ctx, a.item);
                    let kb = b.prediction.score + self.rank_bias(ctx, b.item);
                    kb.partial_cmp(&ka)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(a.item.cmp(&b.item))
                });
            }
            _ => {}
        }
        scored.truncate(n);
        scored
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exrec_algo::baseline::Popularity;
    use exrec_algo::UserKnn;
    use exrec_data::synth::{movies, WorldConfig};
    use exrec_data::World;

    fn world() -> World {
        movies::generate(&WorldConfig {
            n_users: 40,
            n_items: 40,
            density: 0.3,
            ..WorldConfig::default()
        })
    }

    fn predictable_pair(w: &World) -> (UserId, ItemId) {
        let knn = UserKnn::default();
        let ctx = Ctx::new(&w.ratings, &w.catalog);
        for u in w.ratings.users() {
            for i in w.catalog.ids() {
                if w.ratings.rating(u, i).is_none() && knn.predict(&ctx, u, i).is_ok() {
                    return (u, i);
                }
            }
        }
        panic!("no predictable pair");
    }

    #[test]
    fn bold_inflates_scores() {
        let w = world();
        let (u, i) = predictable_pair(&w);
        let ctx = Ctx::new(&w.ratings, &w.catalog);
        let plain = UserKnn::default().predict(&ctx, u, i).unwrap();
        let bold = PersonalityLens::new(UserKnn::default(), Personality::Bold)
            .predict(&ctx, u, i)
            .unwrap();
        assert!(bold.score >= plain.score);
        assert!(bold.score <= w.ratings.scale().max() + 1e-9);
    }

    #[test]
    fn frank_shrinks_uncertain_scores_toward_mean() {
        let w = world();
        let (u, i) = predictable_pair(&w);
        let ctx = Ctx::new(&w.ratings, &w.catalog);
        let plain = UserKnn::default().predict(&ctx, u, i).unwrap();
        let frank = PersonalityLens::new(UserKnn::default(), Personality::Frank)
            .predict(&ctx, u, i)
            .unwrap();
        let mean = w.ratings.user_mean(u).unwrap();
        assert!(
            (frank.score - mean).abs() <= (plain.score - mean).abs() + 1e-9,
            "frank must not move scores away from the user's mean"
        );
    }

    #[test]
    fn affirming_prefers_familiar_items() {
        let w = world();
        let ctx = Ctx::new(&w.ratings, &w.catalog);
        let user = w
            .ratings
            .users()
            .find(|&u| w.ratings.user_ratings(u).len() >= 5)
            .unwrap();
        let familiar_rank = |recs: &[Scored]| -> f64 {
            if recs.is_empty() {
                return 0.0;
            }
            recs.iter()
                .map(|s| ctx.ratings.item_ratings(s.item).len() as f64)
                .sum::<f64>()
                / recs.len() as f64
        };
        let affirming = PersonalityLens::new(Popularity::default(), Personality::Affirming)
            .recommend(&ctx, user, 5);
        let serendipitous = PersonalityLens::new(Popularity::default(), Personality::Serendipitous)
            .recommend(&ctx, user, 5);
        assert!(
            familiar_rank(&affirming) >= familiar_rank(&serendipitous),
            "affirming lists should average more familiar items"
        );
    }

    #[test]
    fn only_frank_discloses() {
        assert!(Personality::Frank.discloses_confidence());
        for p in [
            Personality::Neutral,
            Personality::Bold,
            Personality::Affirming,
            Personality::Serendipitous,
        ] {
            assert!(!p.discloses_confidence());
        }
    }

    #[test]
    fn evidence_passes_through() {
        let w = world();
        let (u, i) = predictable_pair(&w);
        let ctx = Ctx::new(&w.ratings, &w.catalog);
        let inner_ev = UserKnn::default().evidence(&ctx, u, i).unwrap();
        let lens_ev = PersonalityLens::new(UserKnn::default(), Personality::Bold)
            .evidence(&ctx, u, i)
            .unwrap();
        assert_eq!(inner_ev, lens_ev, "personality is presentation-only");
    }
}

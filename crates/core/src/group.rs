//! Group explanations for Top-N lists (survey Section 4.2).
//!
//! > "You have watched a lot of football and technology items. You might
//! > like to see the local football results and the gadget of the day."
//!
//! A Top-N list needs an explanation of the *relation between* the chosen
//! items, while "it should still be able to explain the rationale behind
//! each single item". [`group_explanation`] produces exactly that: a lead
//! sentence naming the user's dominant interests, a recommendation
//! sentence naming the items, and a per-item relation line.

use crate::aims::{Aim, AimProfile};
use crate::explanation::{Explanation, Fragment};
use crate::style::ExplanationStyle;
use crate::templates::join_natural;
use exrec_algo::Ctx;
use exrec_types::{ItemId, Result};
use std::collections::HashMap;

/// How many dominant interests to name in the lead sentence.
const MAX_INTERESTS: usize = 2;

/// The user's dominant categorical interests: `(attribute value, liked
/// count)` pairs over the first categorical schema attribute, strongest
/// first.
pub fn dominant_interests(ctx: &Ctx<'_>, user: exrec_types::UserId) -> Vec<(String, usize)> {
    let Some(attr) = ctx
        .catalog
        .schema()
        .attributes()
        .iter()
        .find(|a| a.kind == exrec_types::AttributeKind::Categorical)
        .map(|a| a.name.clone())
    else {
        return Vec::new();
    };
    let mean = ctx
        .ratings
        .user_mean(user)
        .unwrap_or_else(|| ctx.ratings.scale().midpoint());
    let mut counts: HashMap<String, usize> = HashMap::new();
    for &(item, rating) in ctx.ratings.user_ratings(user) {
        if rating < mean {
            continue;
        }
        if let Ok(it) = ctx.catalog.get(item) {
            if let Some(v) = it.attrs.cat(&attr) {
                *counts.entry(v.to_owned()).or_insert(0) += 1;
            }
        }
    }
    let mut out: Vec<(String, usize)> = counts.into_iter().collect();
    out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    out
}

/// Builds the Section 4.2 group explanation for a Top-N list.
///
/// # Errors
///
/// Propagates catalog lookups for the listed items.
pub fn group_explanation(
    ctx: &Ctx<'_>,
    user: exrec_types::UserId,
    items: &[ItemId],
) -> Result<Explanation> {
    let interests = dominant_interests(ctx, user);
    let attr = ctx
        .catalog
        .schema()
        .attributes()
        .iter()
        .find(|a| a.kind == exrec_types::AttributeKind::Categorical)
        .map(|a| a.name.clone());

    let mut fragments = Vec::new();

    // Lead: "You have watched a lot of X and Y items."
    let named: Vec<String> = interests
        .iter()
        .take(MAX_INTERESTS)
        .map(|(v, _)| v.clone())
        .collect();
    if named.is_empty() {
        fragments.push(Fragment::Text(
            "We are still learning your tastes — here is a varied starting list.".to_owned(),
        ));
    } else {
        fragments.push(Fragment::Text(format!(
            "You have watched a lot of {} items.",
            join_natural(&named)
        )));
    }

    // Recommendation sentence naming the items.
    let titles: Vec<String> = items
        .iter()
        .map(|&i| ctx.catalog.get(i).map(|it| format!("\"{}\"", it.title)))
        .collect::<Result<_>>()?;
    if !titles.is_empty() {
        fragments.push(Fragment::Text(format!(
            "You might like to see {}.",
            join_natural(&titles)
        )));
    }

    // Per-item rationale: which interest each item serves.
    if let Some(attr) = attr {
        for &item in items {
            let it = ctx.catalog.get(item)?;
            let value = it.attrs.cat(&attr).unwrap_or("(uncategorized)");
            let relation = if named.iter().any(|n| n == value) {
                format!("matches your {value} interest")
            } else {
                format!("a {value} pick to broaden the mix")
            };
            fragments.push(Fragment::KeyValue {
                key: it.title.clone(),
                value: relation,
            });
        }
    }

    Ok(Explanation::new(
        "group_topn",
        ExplanationStyle::PreferenceBased,
        AimProfile::of(&[Aim::Transparency, Aim::Efficiency]),
        fragments,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use exrec_algo::{Recommender, UserKnn};
    use exrec_data::synth::{news, WorldConfig};
    use exrec_data::World;
    use exrec_types::UserId;

    fn world() -> World {
        news::generate(&WorldConfig {
            n_users: 30,
            n_items: 50,
            density: 0.3,
            ..WorldConfig::default()
        })
    }

    /// Shapes user 0 into the survey's football-and-technology fan.
    fn fan(world: &mut World) -> UserId {
        let user = UserId::new(0);
        let rated: Vec<ItemId> = world
            .ratings
            .user_ratings(user)
            .iter()
            .map(|&(i, _)| i)
            .collect();
        for i in rated {
            world.ratings.unrate(user, i).unwrap();
        }
        let mut sport = 0;
        let mut tech = 0;
        for it in world.catalog.iter().map(|it| it.id).collect::<Vec<_>>() {
            let topic = world
                .catalog
                .get(it)
                .unwrap()
                .attrs
                .cat("topic")
                .unwrap()
                .to_owned();
            match topic.as_str() {
                "sport" if sport < 5 => {
                    world.ratings.rate(user, it, 5.0).unwrap();
                    sport += 1;
                }
                "technology" if tech < 3 => {
                    world.ratings.rate(user, it, 5.0).unwrap();
                    tech += 1;
                }
                "politics" if sport > 0 && tech > 0 => {
                    world.ratings.rate(user, it, 1.0).unwrap();
                    return user;
                }
                _ => {}
            }
        }
        user
    }

    #[test]
    fn lead_names_dominant_interests() {
        let mut w = world();
        let user = fan(&mut w);
        let ctx = Ctx::new(&w.ratings, &w.catalog);
        let interests = dominant_interests(&ctx, user);
        assert_eq!(interests[0].0, "sport");
        assert!(interests.iter().any(|(v, _)| v == "technology"));

        let items: Vec<ItemId> = UserKnn::default()
            .recommend(&ctx, user, 2)
            .iter()
            .map(|s| s.item)
            .collect();
        let items = if items.is_empty() {
            w.catalog.ids().take(2).collect::<Vec<_>>()
        } else {
            items
        };
        let e = group_explanation(&ctx, user, &items).unwrap();
        let text = e.text();
        assert!(
            text.starts_with("You have watched a lot of sport"),
            "got: {text}"
        );
        assert!(text.contains("You might like to see"));
    }

    #[test]
    fn every_item_gets_a_rationale_line() {
        let mut w = world();
        let user = fan(&mut w);
        let ctx = Ctx::new(&w.ratings, &w.catalog);
        let items: Vec<ItemId> = w.catalog.ids().take(3).collect();
        let e = group_explanation(&ctx, user, &items).unwrap();
        let kv = e
            .fragments
            .iter()
            .filter(|f| matches!(f, Fragment::KeyValue { .. }))
            .count();
        assert_eq!(kv, 3, "one relation line per listed item");
    }

    #[test]
    fn off_interest_items_are_flagged_as_broadening() {
        let mut w = world();
        let user = fan(&mut w);
        let ctx = Ctx::new(&w.ratings, &w.catalog);
        let culture_item = w
            .catalog
            .iter()
            .find(|it| it.attrs.cat("topic") == Some("culture"))
            .unwrap()
            .id;
        let e = group_explanation(&ctx, user, &[culture_item]).unwrap();
        let kv_text = format!("{:?}", e.fragments);
        assert!(kv_text.contains("broaden the mix"), "{kv_text}");
    }

    #[test]
    fn cold_user_gets_honest_lead() {
        let w = world();
        let cold = w
            .ratings
            .users()
            .find(|&u| w.ratings.user_ratings(u).is_empty());
        if let Some(cold) = cold {
            let ctx = Ctx::new(&w.ratings, &w.catalog);
            let items: Vec<ItemId> = w.catalog.ids().take(2).collect();
            let e = group_explanation(&ctx, cold, &items).unwrap();
            assert!(e.text().contains("still learning"));
        }
    }

    #[test]
    fn unknown_item_errors() {
        let w = world();
        let ctx = Ctx::new(&w.ratings, &w.catalog);
        assert!(group_explanation(&ctx, UserId::new(0), &[ItemId::new(9999)]).is_err());
    }
}

//! The explanation-interface catalog (survey Section 3.4).
//!
//! Herlocker, Konstan & Riedl's CSCW'00 study — the survey's central
//! persuasiveness evidence — compared **21 explanation interfaces** for a
//! collaborative movie recommender and found that a histogram of
//! neighbours' ratings with good and bad ratings clustered performed
//! best, while dense interfaces (neighbour tables, complex graphs)
//! dropped *below* the no-explanation baseline.
//!
//! This module reproduces that design space: 21 interfaces, each a pure
//! function from typed [`ModelEvidence`] to an [`Explanation`]. Each
//! carries an [`InterfaceDescriptor`] with three *design properties* used
//! by the simulated-user response model in `exrec-eval`:
//!
//! * `informativeness` — how much decision-relevant signal it conveys;
//! * `cognitive_load` — how hard it is to absorb;
//! * `grounding` — how directly its claims follow from actual data.
//!
//! The E-PERS study's ranking is *emergent* from these properties plus
//! the response model — the reference ordering (histograms top, complex
//! graph bottom) is asserted in `EXPERIMENTS.md`, not hard-coded into the
//! study.

mod generators;

use crate::aims::{Aim, AimProfile};
use crate::explanation::Explanation;
use crate::style::ExplanationStyle;
use exrec_algo::{Ctx, ModelEvidence};
use exrec_types::{ItemId, Prediction, Result, UserId};
use std::fmt;

/// Identifier of one of the 21 explanation interfaces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)] // names are self-describing; details in descriptor()
pub enum InterfaceId {
    ClusteredHistogram,
    Histogram,
    PastPerformance,
    SimilarToRated,
    MovieAverage,
    FavouriteFeature,
    InfluenceList,
    KeywordMatch,
    CanonicalContent,
    CanonicalCollaborative,
    CanonicalPreference,
    NeighborCount,
    ConfidenceDisplay,
    UtilityBreakdown,
    TopicProfile,
    WonAwards,
    DetailedProcess,
    Demographic,
    NeighborTable,
    ComplexGraph,
    NoExplanation,
}

/// Which evidence kind an interface requires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvidenceNeed {
    /// Works with any or no evidence.
    Any,
    /// Needs [`ModelEvidence::UserNeighbors`].
    UserNeighbors,
    /// Needs [`ModelEvidence::ItemNeighbors`].
    ItemNeighbors,
    /// Needs [`ModelEvidence::Content`].
    Content,
    /// Needs [`ModelEvidence::Utility`].
    Utility,
}

/// Static description of an interface: identity, classification and the
/// design properties driving the simulated-response model.
#[derive(Debug, Clone, PartialEq)]
pub struct InterfaceDescriptor {
    /// The id.
    pub id: InterfaceId,
    /// Stable string id (snake_case).
    pub key: &'static str,
    /// Human-readable name.
    pub name: &'static str,
    /// One-line description of what the user sees.
    pub description: &'static str,
    /// Content style.
    pub style: ExplanationStyle,
    /// Aims the interface primarily serves.
    pub aims: AimProfile,
    /// Evidence requirement.
    pub needs: EvidenceNeed,
    /// Decision-relevant signal, `[0, 1]`.
    pub informativeness: f64,
    /// Absorption difficulty, `[0, 1]`.
    pub cognitive_load: f64,
    /// Data-groundedness of its claims, `[0, 1]`.
    pub grounding: f64,
}

impl InterfaceId {
    /// All 21 interfaces, in catalog order (strongest reference
    /// performers first, the no-explanation control last).
    pub const ALL: [InterfaceId; 21] = [
        InterfaceId::ClusteredHistogram,
        InterfaceId::Histogram,
        InterfaceId::PastPerformance,
        InterfaceId::SimilarToRated,
        InterfaceId::MovieAverage,
        InterfaceId::FavouriteFeature,
        InterfaceId::InfluenceList,
        InterfaceId::KeywordMatch,
        InterfaceId::CanonicalContent,
        InterfaceId::CanonicalCollaborative,
        InterfaceId::CanonicalPreference,
        InterfaceId::NeighborCount,
        InterfaceId::ConfidenceDisplay,
        InterfaceId::UtilityBreakdown,
        InterfaceId::TopicProfile,
        InterfaceId::WonAwards,
        InterfaceId::DetailedProcess,
        InterfaceId::Demographic,
        InterfaceId::NeighborTable,
        InterfaceId::ComplexGraph,
        InterfaceId::NoExplanation,
    ];

    /// The interface's static descriptor.
    pub fn descriptor(self) -> InterfaceDescriptor {
        use Aim::*;
        use ExplanationStyle::*;
        use InterfaceId as I;
        let d = |id: I,
                 key: &'static str,
                 name: &'static str,
                 description: &'static str,
                 style: ExplanationStyle,
                 aims: &[Aim],
                 needs: EvidenceNeed,
                 informativeness: f64,
                 cognitive_load: f64,
                 grounding: f64| InterfaceDescriptor {
            id,
            key,
            name,
            description,
            style,
            aims: AimProfile::of(aims),
            needs,
            informativeness,
            cognitive_load,
            grounding,
        };
        match self {
            I::ClusteredHistogram => d(
                self, "clustered_histogram", "Clustered ratings histogram",
                "Histogram of neighbours' ratings with good and bad ratings clustered",
                CollaborativeBased, &[Persuasiveness, Trust, Transparency],
                EvidenceNeed::UserNeighbors, 0.90, 0.25, 0.90,
            ),
            I::Histogram => d(
                self, "histogram", "Ratings histogram",
                "Histogram of how similar users rated the item, one bar per star level",
                CollaborativeBased, &[Persuasiveness, Transparency],
                EvidenceNeed::UserNeighbors, 0.85, 0.35, 0.90,
            ),
            I::PastPerformance => d(
                self, "past_performance", "Past performance",
                "How often the system's past predictions for this user were close",
                PreferenceBased, &[Trust, Persuasiveness],
                EvidenceNeed::Any, 0.70, 0.15, 0.75,
            ),
            I::SimilarToRated => d(
                self, "similar_to_rated", "Similarity to rated items",
                "Names the highly-rated items the recommendation is similar to",
                ContentBased, &[Persuasiveness, Effectiveness, Transparency],
                EvidenceNeed::ItemNeighbors, 0.70, 0.20, 0.85,
            ),
            I::MovieAverage => d(
                self, "item_average", "Item average rating",
                "The item's overall average rating and rating count",
                CollaborativeBased, &[Persuasiveness, Efficiency],
                EvidenceNeed::Any, 0.60, 0.10, 0.80,
            ),
            I::FavouriteFeature => d(
                self, "favourite_feature", "Favourite actor/feature",
                "Points out a feature (actor, author, genre) shared with items the user liked",
                ContentBased, &[Persuasiveness, Satisfaction],
                EvidenceNeed::Any, 0.65, 0.15, 0.80,
            ),
            I::InfluenceList => d(
                self, "influence_list", "Rated-item influence list",
                "Shows which of the user's past ratings influenced this recommendation, with percentages",
                ContentBased, &[Transparency, Effectiveness, Scrutability],
                EvidenceNeed::Content, 0.75, 0.40, 0.90,
            ),
            I::KeywordMatch => d(
                self, "keyword_match", "Keyword match",
                "Lists the keywords of the item that match the user's learned profile",
                ContentBased, &[Effectiveness, Transparency],
                EvidenceNeed::Content, 0.60, 0.30, 0.80,
            ),
            I::CanonicalContent => d(
                self, "canonical_content", "\"Because you liked…\" sentence",
                "One sentence: we recommended X because you liked Y",
                ContentBased, &[Persuasiveness, Efficiency],
                EvidenceNeed::ItemNeighbors, 0.55, 0.10, 0.70,
            ),
            I::CanonicalCollaborative => d(
                self, "canonical_collaborative", "\"People like you…\" sentence",
                "One sentence: people like you liked this item",
                CollaborativeBased, &[Persuasiveness, Efficiency],
                EvidenceNeed::UserNeighbors, 0.55, 0.10, 0.70,
            ),
            I::CanonicalPreference => d(
                self, "canonical_preference", "\"Your interests suggest…\" sentence",
                "One sentence: your interests suggest you would like this item",
                PreferenceBased, &[Efficiency],
                EvidenceNeed::Any, 0.45, 0.10, 0.60,
            ),
            I::NeighborCount => d(
                self, "neighbor_count", "Neighbour count",
                "How many similar users the prediction is based on",
                CollaborativeBased, &[Trust, Transparency],
                EvidenceNeed::UserNeighbors, 0.50, 0.10, 0.80,
            ),
            I::ConfidenceDisplay => d(
                self, "confidence_display", "Strength and confidence",
                "The predicted rating plus how confident the system is in it",
                PreferenceBased, &[Trust, Transparency],
                EvidenceNeed::Any, 0.50, 0.15, 0.85,
            ),
            I::UtilityBreakdown => d(
                self, "utility_breakdown", "Requirement breakdown",
                "Per-requirement satisfaction table for knowledge-based recommendations",
                PreferenceBased, &[Transparency, Effectiveness, Scrutability],
                EvidenceNeed::Utility, 0.70, 0.45, 0.90,
            ),
            I::TopicProfile => d(
                self, "topic_profile", "Viewing-profile summary",
                "\"You have been watching a lot of sports…\" profile recap",
                PreferenceBased, &[Transparency, Scrutability],
                EvidenceNeed::Any, 0.60, 0.20, 0.75,
            ),
            I::WonAwards => d(
                self, "won_awards", "Quality badge",
                "A quality claim (highly rated / widely reviewed) about the item",
                CollaborativeBased, &[Persuasiveness],
                EvidenceNeed::Any, 0.45, 0.10, 0.50,
            ),
            I::DetailedProcess => d(
                self, "detailed_process", "Detailed process description",
                "A paragraph describing exactly how the prediction was computed",
                PreferenceBased, &[Transparency],
                EvidenceNeed::Any, 0.65, 0.80, 0.90,
            ),
            I::Demographic => d(
                self, "demographic", "Demographic appeal",
                "\"People in your demographic tend to enjoy this\" — weakly grounded",
                CollaborativeBased, &[Persuasiveness],
                EvidenceNeed::Any, 0.30, 0.20, 0.40,
            ),
            I::NeighborTable => d(
                self, "neighbor_table", "Neighbour ratings table",
                "A raw table of each neighbour's similarity and rating",
                CollaborativeBased, &[Transparency],
                EvidenceNeed::UserNeighbors, 0.60, 0.85, 0.90,
            ),
            I::ComplexGraph => d(
                self, "complex_graph", "Complex correlation graph",
                "A dense chart of neighbour correlations and ratings (the classic over-share)",
                CollaborativeBased, &[Transparency],
                EvidenceNeed::UserNeighbors, 0.55, 0.95, 0.85,
            ),
            I::NoExplanation => d(
                self, "none", "No explanation",
                "Control condition: the bare recommendation",
                ExplanationStyle::None, &[],
                EvidenceNeed::Any, 0.0, 0.0, 0.0,
            ),
        }
    }

    /// Stable string key.
    pub fn key(self) -> &'static str {
        self.descriptor().key
    }

    /// Resolves a stable string key (as returned by
    /// [`InterfaceId::key`]) back to its interface — the lookup wire
    /// protocols use to let a caller select an interface by name.
    /// Returns `None` for unknown keys.
    pub fn from_key(key: &str) -> Option<InterfaceId> {
        InterfaceId::ALL.into_iter().find(|id| id.key() == key)
    }
}

impl fmt::Display for InterfaceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.descriptor().name)
    }
}

/// Everything an interface may draw on when generating an explanation.
#[derive(Debug, Clone, Copy)]
pub struct ExplainInput<'a> {
    /// Data context (ratings + catalog).
    pub ctx: &'a Ctx<'a>,
    /// The user receiving the recommendation.
    pub user: UserId,
    /// The recommended item.
    pub item: ItemId,
    /// The model's prediction for the pair.
    pub prediction: Prediction,
    /// The model's evidence for the pair.
    pub evidence: &'a ModelEvidence,
}

impl InterfaceId {
    /// Generates the explanation this interface shows for `input`.
    ///
    /// # Errors
    ///
    /// [`exrec_types::Error::MissingEvidence`] when the supplied evidence
    /// kind does not satisfy [`InterfaceDescriptor::needs`], and catalog
    /// lookups may surface [`exrec_types::Error::UnknownItem`].
    pub fn generate(self, input: &ExplainInput<'_>) -> Result<Explanation> {
        generators::generate(self, input)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn exactly_21_interfaces() {
        assert_eq!(InterfaceId::ALL.len(), 21);
        let keys: HashSet<&str> = InterfaceId::ALL.iter().map(|i| i.key()).collect();
        assert_eq!(keys.len(), 21, "keys must be unique");
    }

    #[test]
    fn properties_in_unit_interval() {
        for id in InterfaceId::ALL {
            let d = id.descriptor();
            for (label, v) in [
                ("informativeness", d.informativeness),
                ("cognitive_load", d.cognitive_load),
                ("grounding", d.grounding),
            ] {
                assert!(
                    (0.0..=1.0).contains(&v),
                    "{}: {label} = {v} out of range",
                    d.key
                );
            }
        }
    }

    #[test]
    fn reference_design_gradient_holds() {
        // The design properties must encode the published shape: the
        // clustered histogram dominates the complex graph on net value.
        let net = |id: InterfaceId| {
            let d = id.descriptor();
            d.informativeness * d.grounding - d.cognitive_load
        };
        assert!(net(InterfaceId::ClusteredHistogram) > net(InterfaceId::Histogram));
        assert!(net(InterfaceId::Histogram) > net(InterfaceId::ComplexGraph));
        assert!(
            net(InterfaceId::ComplexGraph) < net(InterfaceId::NoExplanation),
            "over-dense interfaces must fall below the control"
        );
        assert!(
            net(InterfaceId::NeighborTable) < net(InterfaceId::NoExplanation),
            "neighbour table must fall below the control"
        );
    }

    #[test]
    fn control_has_no_aims_and_no_style() {
        let d = InterfaceId::NoExplanation.descriptor();
        assert!(d.aims.is_empty());
        assert_eq!(d.style, ExplanationStyle::None);
    }

    #[test]
    fn every_aim_is_served_by_some_interface() {
        for aim in Aim::ALL {
            // Satisfaction is served indirectly by many; check the declared
            // profiles cover every aim at least once.
            let served = InterfaceId::ALL
                .iter()
                .any(|i| i.descriptor().aims.contains(aim));
            assert!(served, "no interface declares aim {aim}");
        }
    }

    #[test]
    fn display_is_name() {
        assert_eq!(
            InterfaceId::ClusteredHistogram.to_string(),
            "Clustered ratings histogram"
        );
    }
}

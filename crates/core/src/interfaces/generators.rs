//! Generation functions for the 21 explanation interfaces.

use super::{ExplainInput, InterfaceId};
use crate::explanation::{Explanation, Fragment, HistBin, Tone};
use crate::templates::{fill, join_natural, percent, slots, stars};
use exrec_algo::recommender::NeighborContribution;
use exrec_algo::ModelEvidence;
use exrec_types::{Error, Result};

/// Dispatch: build the explanation for `id` from `input`.
pub(super) fn generate(id: InterfaceId, input: &ExplainInput<'_>) -> Result<Explanation> {
    let d = id.descriptor();
    let frags = match id {
        InterfaceId::NoExplanation => Vec::new(),
        InterfaceId::Histogram => histogram(input, false)?,
        InterfaceId::ClusteredHistogram => histogram(input, true)?,
        InterfaceId::PastPerformance => past_performance(input),
        InterfaceId::SimilarToRated => similar_to_rated(input)?,
        InterfaceId::MovieAverage => item_average(input),
        InterfaceId::FavouriteFeature => favourite_feature(input)?,
        InterfaceId::InfluenceList => influence_list(input)?,
        InterfaceId::KeywordMatch => keyword_match(input)?,
        InterfaceId::CanonicalContent => canonical_content(input)?,
        InterfaceId::CanonicalCollaborative => canonical_collaborative(input)?,
        InterfaceId::CanonicalPreference => canonical_preference(input)?,
        InterfaceId::NeighborCount => neighbor_count(input)?,
        InterfaceId::ConfidenceDisplay => confidence_display(input),
        InterfaceId::UtilityBreakdown => utility_breakdown(input)?,
        InterfaceId::TopicProfile => topic_profile(input)?,
        InterfaceId::WonAwards => won_awards(input),
        InterfaceId::DetailedProcess => detailed_process(input)?,
        InterfaceId::Demographic => demographic(input)?,
        InterfaceId::NeighborTable => neighbor_table(input)?,
        InterfaceId::ComplexGraph => complex_graph(input)?,
    };
    Ok(Explanation::new(d.key, d.style, d.aims, frags))
}

fn need_neighbors<'a>(
    input: &'a ExplainInput<'_>,
    interface: &'static str,
) -> Result<&'a [NeighborContribution]> {
    match input.evidence {
        ModelEvidence::UserNeighbors { neighbors } => Ok(neighbors),
        _ => Err(Error::MissingEvidence {
            interface,
            needs: "user-neighbour",
        }),
    }
}

fn title(input: &ExplainInput<'_>) -> String {
    input
        .ctx
        .catalog
        .get(input.item)
        .map(|it| it.title.clone())
        .unwrap_or_else(|_| format!("{}", input.item))
}

fn good_threshold(input: &ExplainInput<'_>) -> f64 {
    let scale = input.ctx.ratings.scale();
    scale.midpoint() + scale.span() * 0.1
}

/// Bars per star level; with `clustered`, good/bad levels are merged into
/// two bins (Herlocker's winning variant).
fn histogram(input: &ExplainInput<'_>, clustered: bool) -> Result<Vec<Fragment>> {
    let neighbors = need_neighbors(input, "histogram")?;
    let scale = input.ctx.ratings.scale();
    let good_at = good_threshold(input);
    let mut frags = vec![Fragment::Text(format!(
        "How {} people with tastes like yours rated \"{}\":",
        neighbors.len(),
        title(input)
    ))];
    if clustered {
        let good = neighbors.iter().filter(|n| n.rating >= good_at).count();
        let mid = neighbors
            .iter()
            .filter(|n| n.rating < good_at && n.rating >= scale.midpoint() - scale.span() * 0.1)
            .count();
        let bad = neighbors.len() - good - mid;
        frags.push(Fragment::Histogram {
            title: "Neighbour ratings (clustered)".to_owned(),
            bins: vec![
                HistBin {
                    label: "liked it".to_owned(),
                    count: good,
                    tone: Tone::Good,
                },
                HistBin {
                    label: "neutral".to_owned(),
                    count: mid,
                    tone: Tone::Neutral,
                },
                HistBin {
                    label: "disliked it".to_owned(),
                    count: bad,
                    tone: Tone::Bad,
                },
            ],
        });
    } else {
        let levels = scale.levels();
        let bins: Vec<HistBin> = if levels.is_empty() {
            Vec::new()
        } else {
            levels
                .iter()
                .rev()
                .map(|&level| HistBin {
                    label: stars(level),
                    count: neighbors
                        .iter()
                        .filter(|n| (n.rating - level).abs() < scale.step() / 2.0 + 1e-9)
                        .count(),
                    tone: if level >= good_at {
                        Tone::Good
                    } else if level <= scale.midpoint() - scale.span() * 0.1 {
                        Tone::Bad
                    } else {
                        Tone::Neutral
                    },
                })
                .collect()
        };
        frags.push(Fragment::Histogram {
            title: "Neighbour ratings".to_owned(),
            bins,
        });
    }
    Ok(frags)
}

/// "Predictions for you have been within one star N% of the time."
///
/// Grounded proxy: compare each of the user's ratings against the item's
/// mean among *other* raters — the simplest honest self-check available
/// from observed data alone.
fn past_performance(input: &ExplainInput<'_>) -> Vec<Fragment> {
    let rated = input.ctx.ratings.user_ratings(input.user);
    let mut close = 0usize;
    let mut total = 0usize;
    for &(item, rating) in rated {
        let others = input.ctx.ratings.item_ratings(item);
        let (sum, n) = others
            .iter()
            .filter(|&&(u, _)| u != input.user)
            .fold((0.0, 0usize), |(s, n), &(_, v)| (s + v, n + 1));
        if n > 0 {
            total += 1;
            if ((sum / n as f64) - rating).abs() <= 1.0 {
                close += 1;
            }
        }
    }
    let pct = if total == 0 {
        50.0
    } else {
        close as f64 / total as f64 * 100.0
    };
    vec![Fragment::Text(format!(
        "In the past, this recommender's estimates have been within one star of \
         your own rating {pct:.0}% of the time ({close} of {total} rated items)."
    ))]
}

fn similar_to_rated(input: &ExplainInput<'_>) -> Result<Vec<Fragment>> {
    let anchors = match input.evidence {
        ModelEvidence::ItemNeighbors { anchors } => anchors,
        _ => {
            return Err(Error::MissingEvidence {
                interface: "similar_to_rated",
                needs: "item-neighbour",
            })
        }
    };
    let names: Vec<String> = anchors
        .iter()
        .take(3)
        .filter_map(|a| {
            input
                .ctx
                .catalog
                .get(a.item)
                .ok()
                .map(|it| format!("\"{}\" (your rating: {})", it.title, stars(a.user_rating)))
        })
        .collect();
    if names.is_empty() {
        return Err(Error::MissingEvidence {
            interface: "similar_to_rated",
            needs: "item-neighbour",
        });
    }
    Ok(vec![Fragment::Text(format!(
        "\"{}\" is similar to {}.",
        title(input),
        join_natural(&names)
    ))])
}

fn item_average(input: &ExplainInput<'_>) -> Vec<Fragment> {
    let ratings = input.ctx.ratings.item_ratings(input.item);
    match input.ctx.ratings.item_mean(input.item) {
        Some(mean) => vec![
            Fragment::Text(format!("Overall rating of \"{}\":", title(input))),
            Fragment::KeyValue {
                key: "Average".to_owned(),
                value: format!(
                    "{} from {} ratings",
                    stars((mean * 10.0).round() / 10.0),
                    ratings.len()
                ),
            },
        ],
        None => vec![Fragment::Text(format!(
            "\"{}\" has not been rated yet — you would be the first.",
            title(input)
        ))],
    }
}

/// Finds the categorical attribute value of the target item most shared
/// with the user's liked items ("stars Bruce Willis, who appears in 3
/// movies you liked").
fn favourite_feature(input: &ExplainInput<'_>) -> Result<Vec<Fragment>> {
    let target = input.ctx.catalog.get(input.item)?;
    let mean = input
        .ctx
        .ratings
        .user_mean(input.user)
        .unwrap_or_else(|| input.ctx.ratings.scale().midpoint());
    let liked: Vec<_> = input
        .ctx
        .ratings
        .user_ratings(input.user)
        .iter()
        .filter(|&&(_, r)| r >= mean)
        .filter_map(|&(i, _)| input.ctx.catalog.get(i).ok())
        .collect();

    let mut best: Option<(String, String, usize)> = None; // (attr label, value, count)
    for (name, value) in target.attrs.iter() {
        if let Some(v) = value.as_cat() {
            let count = liked
                .iter()
                .filter(|it| it.attrs.cat(name) == Some(v))
                .count();
            let label = input
                .ctx
                .catalog
                .schema()
                .attribute(name)
                .map(|a| a.label.clone())
                .unwrap_or_else(|| name.to_owned());
            if count > 0 && best.as_ref().map(|b| count > b.2).unwrap_or(true) {
                best = Some((label, v.to_owned(), count));
            }
        }
    }
    match best {
        Some((label, value, count)) => Ok(vec![Fragment::Text(format!(
            "{} of the items you liked share this item's {}: {}.",
            count,
            label.to_lowercase(),
            value
        ))]),
        None => Ok(vec![Fragment::Text(format!(
            "\"{}\" brings something new — it shares no feature with items you have liked so far.",
            title(input)
        ))]),
    }
}

fn influence_list(input: &ExplainInput<'_>) -> Result<Vec<Fragment>> {
    let influences = match input.evidence {
        ModelEvidence::Content { influences, .. } => influences,
        _ => {
            return Err(Error::MissingEvidence {
                interface: "influence_list",
                needs: "content",
            })
        }
    };
    let mut frags = vec![Fragment::Text(format!(
        "Your previous ratings influenced the recommendation of \"{}\" as follows:",
        title(input)
    ))];
    for inf in influences.iter().take(5) {
        let name = input
            .ctx
            .catalog
            .get(inf.item)
            .map(|it| it.title.clone())
            .unwrap_or_else(|_| format!("{}", inf.item));
        frags.push(Fragment::InfluenceBar {
            title: name,
            rating: inf.user_rating,
            share: inf.share,
        });
    }
    Ok(frags)
}

fn keyword_match(input: &ExplainInput<'_>) -> Result<Vec<Fragment>> {
    let features = match input.evidence {
        ModelEvidence::Content { features, .. } => features,
        _ => {
            return Err(Error::MissingEvidence {
                interface: "keyword_match",
                needs: "content",
            })
        }
    };
    let positive: Vec<String> = features
        .iter()
        .filter(|f| f.weight > 0.0)
        .take(4)
        .map(|f| f.feature.clone())
        .collect();
    let text = if positive.is_empty() {
        format!(
            "\"{}\" matches little in your profile — treat this as a long shot.",
            title(input)
        )
    } else {
        format!(
            "\"{}\" matches your profile on {}.",
            title(input),
            join_natural(&positive)
        )
    };
    Ok(vec![Fragment::Text(text)])
}

fn canonical_content(input: &ExplainInput<'_>) -> Result<Vec<Fragment>> {
    let anchors = match input.evidence {
        ModelEvidence::ItemNeighbors { anchors } => anchors,
        _ => {
            return Err(Error::MissingEvidence {
                interface: "canonical_content",
                needs: "item-neighbour",
            })
        }
    };
    let anchor = anchors
        .first()
        .and_then(|a| input.ctx.catalog.get(a.item).ok())
        .ok_or(Error::MissingEvidence {
            interface: "canonical_content",
            needs: "item-neighbour",
        })?;
    let vals = slots([
        ("item", format!("\"{}\"", title(input))),
        ("anchor", format!("\"{}\"", anchor.title)),
    ]);
    Ok(vec![Fragment::Text(fill(
        "We have recommended {item} because you liked {anchor}.",
        &vals,
    ))])
}

fn canonical_collaborative(input: &ExplainInput<'_>) -> Result<Vec<Fragment>> {
    let neighbors = need_neighbors(input, "canonical_collaborative")?;
    let good_at = good_threshold(input);
    let liked = neighbors.iter().filter(|n| n.rating >= good_at).count();
    Ok(vec![Fragment::Text(format!(
        "People like you liked \"{}\" — {} of {} similar users rated it highly.",
        title(input),
        liked,
        neighbors.len()
    ))])
}

fn canonical_preference(input: &ExplainInput<'_>) -> Result<Vec<Fragment>> {
    Ok(vec![Fragment::Text(format!(
        "Your interests suggest that you would like \"{}\".",
        title(input)
    ))])
}

fn neighbor_count(input: &ExplainInput<'_>) -> Result<Vec<Fragment>> {
    let neighbors = need_neighbors(input, "neighbor_count")?;
    Ok(vec![Fragment::Text(format!(
        "This prediction is based on {} users whose past ratings closely match yours.",
        neighbors.len()
    ))])
}

fn confidence_display(input: &ExplainInput<'_>) -> Vec<Fragment> {
    vec![Fragment::Disclosure {
        strength: input.prediction.score,
        confidence: Some(input.prediction.confidence),
    }]
}

fn utility_breakdown(input: &ExplainInput<'_>) -> Result<Vec<Fragment>> {
    let (terms, total) = match input.evidence {
        ModelEvidence::Utility { terms, total } => (terms, *total),
        _ => {
            return Err(Error::MissingEvidence {
                interface: "utility_breakdown",
                needs: "utility",
            })
        }
    };
    let mut frags = vec![Fragment::Text(format!(
        "\"{}\" matches your requirements at {}:",
        title(input),
        percent(total)
    ))];
    for t in terms {
        frags.push(Fragment::KeyValue {
            key: t.attribute.clone(),
            value: format!("{} ({})", percent(t.satisfaction), t.detail),
        });
    }
    Ok(frags)
}

/// "You have been watching a lot of sports, and football in particular…"
/// — the survey's Section 4.1 running example, generated from the user's
/// liked items' dominant categorical value.
fn topic_profile(input: &ExplainInput<'_>) -> Result<Vec<Fragment>> {
    let target = input.ctx.catalog.get(input.item)?;
    let mean = input
        .ctx
        .ratings
        .user_mean(input.user)
        .unwrap_or_else(|| input.ctx.ratings.scale().midpoint());
    // Dominant categorical value among the user's liked items, per attr.
    let mut counts: std::collections::HashMap<(String, String), usize> =
        std::collections::HashMap::new();
    for &(item, rating) in input.ctx.ratings.user_ratings(input.user) {
        if rating < mean {
            continue;
        }
        if let Ok(it) = input.ctx.catalog.get(item) {
            for (name, value) in it.attrs.iter() {
                if let Some(v) = value.as_cat() {
                    *counts.entry((name.to_owned(), v.to_owned())).or_insert(0) += 1;
                }
            }
        }
    }
    let dominant = counts.into_iter().max_by(|a, b| {
        a.1.cmp(&b.1).then_with(|| b.0.cmp(&a.0)) // deterministic tie-break
    });
    let Some(((attr, value), count)) = dominant else {
        return Ok(vec![Fragment::Text(
            "We do not know much about your tastes yet — this is a starting suggestion.".to_owned(),
        )]);
    };
    let target_value = target.attrs.cat(&attr).unwrap_or("something different");
    let relation = if target_value == value {
        format!("This is a {value} item too.")
    } else {
        format!("This one is about {target_value} — a change of pace.")
    };
    Ok(vec![Fragment::Text(format!(
        "You have been choosing a lot of {value} items ({count} liked so far). {relation}"
    ))])
}

fn won_awards(input: &ExplainInput<'_>) -> Vec<Fragment> {
    let ratings = input.ctx.ratings.item_ratings(input.item);
    let scale = input.ctx.ratings.scale();
    let mean = input.ctx.ratings.item_mean(input.item);
    let badge = match mean {
        Some(m) if m >= scale.midpoint() + scale.span() * 0.25 && ratings.len() >= 5 => {
            "one of the highest-rated items in the catalog"
        }
        Some(_) if ratings.len() >= 10 => "widely reviewed by the community",
        _ => "a fresh pick our editors are watching",
    };
    vec![Fragment::Text(format!("\"{}\" is {badge}.", title(input)))]
}

fn detailed_process(input: &ExplainInput<'_>) -> Result<Vec<Fragment>> {
    let scale = input.ctx.ratings.scale();
    let mechanics = match input.evidence {
        ModelEvidence::UserNeighbors { neighbors } => format!(
            "we located the {} users whose rating history correlates most strongly with \
             yours, weighted each of their ratings of this item by that correlation, \
             and centred the result on your personal mean rating",
            neighbors.len()
        ),
        ModelEvidence::ItemNeighbors { anchors } => format!(
            "we measured how similarly the community rates this item and the {} items \
             you have already rated, then combined your own ratings of those items in \
             proportion to that similarity",
            anchors.len()
        ),
        ModelEvidence::Content { features, .. } => format!(
            "we learned which words and features distinguish the items you like from the \
             ones you do not ({} features were decisive here) and scored this item's \
             description against that profile",
            features.len()
        ),
        ModelEvidence::Utility { terms, .. } => format!(
            "we scored the item against each of your {} stated requirements, weighted by \
             the importance you assigned, and averaged the result",
            terms.len()
        ),
        ModelEvidence::Popularity { count, .. } => format!(
            "we averaged the {count} community ratings of this item, shrunk toward the \
             overall mean to avoid over-reading small samples"
        ),
        ModelEvidence::Latent { terms, .. } => format!(
            "we summarized your taste and this item as {} learned numeric factors and \
             multiplied them together; honestly, the individual factors have no \
             human-readable meaning",
            terms.len()
        ),
        _ => "we combined the available signals in your profile".to_owned(),
    };
    Ok(vec![Fragment::Text(format!(
        "How this prediction was computed: {mechanics}. The resulting estimate is {:.1} \
         on the {:.0}-to-{:.0} scale, and the computation is repeated from scratch every \
         time your ratings change.",
        input.prediction.score,
        scale.min(),
        scale.max()
    ))])
}

fn demographic(input: &ExplainInput<'_>) -> Result<Vec<Fragment>> {
    Ok(vec![Fragment::Text(format!(
        "People in your demographic group tend to enjoy items like \"{}\".",
        title(input)
    ))])
}

fn neighbor_table(input: &ExplainInput<'_>) -> Result<Vec<Fragment>> {
    let neighbors = need_neighbors(input, "neighbor_table")?;
    let mut frags = vec![Fragment::Text(format!(
        "Every neighbour who rated \"{}\":",
        title(input)
    ))];
    for n in neighbors {
        frags.push(Fragment::KeyValue {
            key: format!("user {}", n.user),
            value: format!("similarity {:.2}, rated {}", n.similarity, stars(n.rating)),
        });
    }
    Ok(frags)
}

fn complex_graph(input: &ExplainInput<'_>) -> Result<Vec<Fragment>> {
    // Everything at once: the canonical over-share.
    let mut frags = histogram(input, false)?;
    frags.extend(neighbor_table(input)?);
    frags.push(Fragment::Disclosure {
        strength: input.prediction.score,
        confidence: Some(input.prediction.confidence),
    });
    Ok(frags)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interfaces::EvidenceNeed;
    use exrec_algo::recommender::{ItemAnchor, UtilityTerm};
    use exrec_algo::Ctx;
    use exrec_data::{Catalog, RatingsMatrix};
    use exrec_types::{
        AttributeDef, AttributeSet, Confidence, DomainSchema, ItemId, Prediction, RatingScale,
        UserId,
    };

    struct Fixture {
        ratings: RatingsMatrix,
        catalog: Catalog,
    }

    fn fixture() -> Fixture {
        let schema = DomainSchema::new(
            "movies",
            vec![
                AttributeDef::categorical("genre", "Genre"),
                AttributeDef::categorical("lead", "Lead Actor"),
            ],
        )
        .unwrap();
        let mut catalog = Catalog::new(schema);
        for (t, g, l) in [
            ("Alpha", "comedy", "Ann Ba"),
            ("Beta", "comedy", "Cee Dee"),
            ("Gamma", "drama", "Ann Ba"),
            ("Delta", "comedy", "Ann Ba"),
        ] {
            catalog
                .add(
                    t,
                    AttributeSet::new().with("genre", g).with("lead", l),
                    vec![g.to_string()],
                )
                .unwrap();
        }
        let mut ratings = RatingsMatrix::new(4, 4, RatingScale::FIVE_STAR);
        ratings.rate(UserId(0), ItemId(0), 5.0).unwrap();
        ratings.rate(UserId(0), ItemId(1), 4.0).unwrap();
        ratings.rate(UserId(0), ItemId(2), 2.0).unwrap();
        ratings.rate(UserId(1), ItemId(3), 5.0).unwrap();
        ratings.rate(UserId(2), ItemId(3), 4.0).unwrap();
        ratings.rate(UserId(3), ItemId(3), 2.0).unwrap();
        Fixture { ratings, catalog }
    }

    fn neighbors_evidence() -> ModelEvidence {
        ModelEvidence::UserNeighbors {
            neighbors: vec![
                NeighborContribution {
                    user: UserId(1),
                    similarity: 0.9,
                    rating: 5.0,
                },
                NeighborContribution {
                    user: UserId(2),
                    similarity: 0.7,
                    rating: 4.0,
                },
                NeighborContribution {
                    user: UserId(3),
                    similarity: 0.4,
                    rating: 2.0,
                },
            ],
        }
    }

    fn run(id: InterfaceId, ev: &ModelEvidence) -> Result<Explanation> {
        let f = fixture();
        let ctx = Ctx::new(&f.ratings, &f.catalog);
        let input = ExplainInput {
            ctx: &ctx,
            user: UserId(0),
            item: ItemId(3),
            prediction: Prediction::new(4.2, Confidence::new(0.8)),
            evidence: ev,
        };
        id.generate(&input)
    }

    #[test]
    fn histogram_bins_cover_all_neighbors() {
        let e = run(InterfaceId::Histogram, &neighbors_evidence()).unwrap();
        let bins: usize = e
            .fragments
            .iter()
            .filter_map(|f| match f {
                Fragment::Histogram { bins, .. } => {
                    Some(bins.iter().map(|b| b.count).sum::<usize>())
                }
                _ => None,
            })
            .sum();
        assert_eq!(bins, 3, "all three neighbours binned");
    }

    #[test]
    fn clustered_histogram_has_three_tonal_bins() {
        let e = run(InterfaceId::ClusteredHistogram, &neighbors_evidence()).unwrap();
        let hist = e
            .fragments
            .iter()
            .find_map(|f| match f {
                Fragment::Histogram { bins, .. } => Some(bins.clone()),
                _ => None,
            })
            .expect("histogram fragment");
        assert_eq!(hist.len(), 3);
        assert_eq!(hist[0].tone, Tone::Good);
        assert_eq!(hist[2].tone, Tone::Bad);
        // 5.0 and 4.0 are good; 2.0 is bad.
        assert_eq!(hist[0].count, 2);
        assert_eq!(hist[2].count, 1);
    }

    #[test]
    fn evidence_mismatch_is_reported() {
        let content_only = ModelEvidence::Popularity {
            mean: 3.0,
            count: 1,
        };
        for id in [
            InterfaceId::Histogram,
            InterfaceId::ClusteredHistogram,
            InterfaceId::SimilarToRated,
            InterfaceId::InfluenceList,
            InterfaceId::KeywordMatch,
            InterfaceId::UtilityBreakdown,
            InterfaceId::NeighborTable,
            InterfaceId::ComplexGraph,
            InterfaceId::NeighborCount,
            InterfaceId::CanonicalContent,
            InterfaceId::CanonicalCollaborative,
        ] {
            assert!(
                matches!(run(id, &content_only), Err(Error::MissingEvidence { .. })),
                "{id:?} should demand its evidence kind"
            );
            assert_ne!(id.descriptor().needs, EvidenceNeed::Any);
        }
    }

    #[test]
    fn any_evidence_interfaces_accept_popularity() {
        let pop = ModelEvidence::Popularity {
            mean: 3.7,
            count: 3,
        };
        for id in [
            InterfaceId::PastPerformance,
            InterfaceId::MovieAverage,
            InterfaceId::FavouriteFeature,
            InterfaceId::CanonicalPreference,
            InterfaceId::ConfidenceDisplay,
            InterfaceId::TopicProfile,
            InterfaceId::WonAwards,
            InterfaceId::DetailedProcess,
            InterfaceId::Demographic,
            InterfaceId::NoExplanation,
        ] {
            let e = run(id, &pop).unwrap_or_else(|err| panic!("{id:?} failed: {err}"));
            if id != InterfaceId::NoExplanation {
                assert!(!e.fragments.is_empty(), "{id:?} produced nothing");
            }
        }
    }

    #[test]
    fn similar_to_rated_names_anchor_titles() {
        let ev = ModelEvidence::ItemNeighbors {
            anchors: vec![ItemAnchor {
                item: ItemId(0),
                similarity: 0.8,
                user_rating: 5.0,
            }],
        };
        let e = run(InterfaceId::SimilarToRated, &ev).unwrap();
        assert!(e.text().contains("Alpha"), "text: {}", e.text());
        assert!(e.text().contains("Delta"), "target title shown");
    }

    #[test]
    fn canonical_content_sentence_shape() {
        let ev = ModelEvidence::ItemNeighbors {
            anchors: vec![ItemAnchor {
                item: ItemId(1),
                similarity: 0.9,
                user_rating: 4.0,
            }],
        };
        let e = run(InterfaceId::CanonicalContent, &ev).unwrap();
        assert_eq!(
            e.text(),
            "We have recommended \"Delta\" because you liked \"Beta\"."
        );
    }

    #[test]
    fn influence_list_renders_bars() {
        let ev = ModelEvidence::Content {
            features: vec![],
            influences: vec![
                exrec_algo::recommender::RatedItemInfluence {
                    item: ItemId(0),
                    user_rating: 5.0,
                    share: 0.6,
                },
                exrec_algo::recommender::RatedItemInfluence {
                    item: ItemId(1),
                    user_rating: 4.0,
                    share: 0.4,
                },
            ],
        };
        let e = run(InterfaceId::InfluenceList, &ev).unwrap();
        let bars = e
            .fragments
            .iter()
            .filter(|f| matches!(f, Fragment::InfluenceBar { .. }))
            .count();
        assert_eq!(bars, 2);
    }

    #[test]
    fn favourite_feature_finds_shared_lead() {
        // User 0 liked Alpha (lead Ann Ba, 5★); target Delta also has Ann Ba.
        let pop = ModelEvidence::Popularity {
            mean: 3.0,
            count: 1,
        };
        let e = run(InterfaceId::FavouriteFeature, &pop).unwrap();
        let text = e.text();
        assert!(
            text.contains("Ann Ba") || text.contains("comedy"),
            "should surface a shared feature, got: {text}"
        );
    }

    #[test]
    fn topic_profile_mentions_dominant_category() {
        let pop = ModelEvidence::Popularity {
            mean: 3.0,
            count: 1,
        };
        let e = run(InterfaceId::TopicProfile, &pop).unwrap();
        // User 0 liked comedies (Alpha 5★, Beta 4★ ≥ mean 3.67; Gamma 2★ below).
        assert!(e.text().contains("comedy"), "got: {}", e.text());
    }

    #[test]
    fn utility_breakdown_lists_terms() {
        let ev = ModelEvidence::Utility {
            terms: vec![UtilityTerm {
                attribute: "price".to_owned(),
                satisfaction: 0.9,
                weight: 1.0,
                detail: "price 450 is within your limit of 500".to_owned(),
            }],
            total: 0.9,
        };
        let e = run(InterfaceId::UtilityBreakdown, &ev).unwrap();
        assert!(e
            .fragments
            .iter()
            .any(|f| matches!(f, Fragment::KeyValue { key, .. } if key == "price")));
        assert!(e.text().contains("90%"));
    }

    #[test]
    fn complex_graph_is_heaviest() {
        let e_graph = run(InterfaceId::ComplexGraph, &neighbors_evidence()).unwrap();
        let e_hist = run(InterfaceId::Histogram, &neighbors_evidence()).unwrap();
        let e_sentence = run(InterfaceId::CanonicalCollaborative, &neighbors_evidence()).unwrap();
        assert!(e_graph.reading_cost() > e_hist.reading_cost());
        assert!(e_hist.reading_cost() > e_sentence.reading_cost());
    }

    #[test]
    fn confidence_display_discloses() {
        let pop = ModelEvidence::Popularity {
            mean: 3.0,
            count: 1,
        };
        let e = run(InterfaceId::ConfidenceDisplay, &pop).unwrap();
        match &e.fragments[0] {
            Fragment::Disclosure {
                strength,
                confidence,
            } => {
                assert!((strength - 4.2).abs() < 1e-9);
                assert!(confidence.is_some());
            }
            other => panic!("expected disclosure, got {other:?}"),
        }
    }

    #[test]
    fn past_performance_reports_grounded_fraction() {
        let pop = ModelEvidence::Popularity {
            mean: 3.0,
            count: 1,
        };
        let e = run(InterfaceId::PastPerformance, &pop).unwrap();
        assert!(e.text().contains('%'));
        assert!(e.text().contains("rated items"));
    }
}

//! The renderer-independent explanation document model.
//!
//! An [`Explanation`] is a typed document: text sentences, rating
//! histograms (Herlocker's winning interface), influence bars (survey
//! Figure 3), key–value facts, and strength/confidence disclosures
//! (Section 4.6). Renderers in [`crate::render`] turn it into plain text,
//! ANSI or Markdown; the evaluation crate measures its *properties*
//! (length, fragment mix) without parsing strings.

use crate::aims::AimProfile;
use crate::style::ExplanationStyle;
use exrec_types::Confidence;

/// Emotional polarity of a histogram bin, used by the "clustered"
/// histogram variant that groups good and bad ratings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tone {
    /// Ratings counted as favourable.
    Good,
    /// Ratings counted as unfavourable.
    Bad,
    /// Neither.
    Neutral,
}

/// One histogram bin.
#[derive(Debug, Clone, PartialEq)]
pub struct HistBin {
    /// Bin label (e.g. `"5★"` or `"good (4-5)"`).
    pub label: String,
    /// Count of observations in the bin.
    pub count: usize,
    /// Polarity for rendering.
    pub tone: Tone,
}

/// A typed piece of explanation content.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Fragment {
    /// A sentence or short paragraph.
    Text(String),
    /// A rating histogram with a title.
    Histogram {
        /// Chart title.
        title: String,
        /// Bins in display order.
        bins: Vec<HistBin>,
    },
    /// One rated item's influence on the recommendation (Figure 3 row).
    InfluenceBar {
        /// Title of the previously-rated item.
        title: String,
        /// The user's rating of it.
        rating: f64,
        /// Influence share in `[0, 1]`.
        share: f64,
    },
    /// A labelled fact ("Director: N. Veldt").
    KeyValue {
        /// Fact label.
        key: String,
        /// Fact value.
        value: String,
    },
    /// Strength and/or confidence disclosure.
    Disclosure {
        /// Predicted score on the active rating scale.
        strength: f64,
        /// The system's confidence, if the personality discloses it.
        confidence: Option<Confidence>,
    },
}

impl Fragment {
    /// Approximate reading cost of the fragment in simulated ticks,
    /// used by the efficiency studies (survey Section 3.6): reading text
    /// costs time proportional to its words; charts cost a fixed scan
    /// time per element.
    pub fn reading_cost(&self) -> u64 {
        match self {
            Fragment::Text(s) => {
                let words = s.split_whitespace().count() as u64;
                words.div_ceil(3).max(1)
            }
            Fragment::Histogram { bins, .. } => 2 + bins.len() as u64,
            Fragment::InfluenceBar { .. } => 2,
            Fragment::KeyValue { .. } => 1,
            Fragment::Disclosure { confidence, .. } => {
                if confidence.is_some() {
                    2
                } else {
                    1
                }
            }
        }
    }
}

/// A complete explanation for one recommendation.
#[derive(Debug, Clone, PartialEq)]
pub struct Explanation {
    /// Identifier of the interface that generated it (see
    /// [`crate::interfaces::InterfaceId`]); `"none"` for the control.
    pub interface: &'static str,
    /// Content style.
    pub style: ExplanationStyle,
    /// Aims the generating interface declares.
    pub aims: AimProfile,
    /// Ordered content.
    pub fragments: Vec<Fragment>,
}

impl Explanation {
    /// An empty explanation from the "no explanation" control interface.
    pub fn none() -> Self {
        Self {
            interface: "none",
            style: ExplanationStyle::None,
            aims: AimProfile::empty(),
            fragments: Vec::new(),
        }
    }

    /// Builds an explanation.
    pub fn new(
        interface: &'static str,
        style: ExplanationStyle,
        aims: AimProfile,
        fragments: Vec<Fragment>,
    ) -> Self {
        Self {
            interface,
            style,
            aims,
            fragments,
        }
    }

    /// Total simulated reading cost (survey Section 3.8: richer
    /// explanations trade efficiency for transparency).
    pub fn reading_cost(&self) -> u64 {
        self.fragments.iter().map(Fragment::reading_cost).sum()
    }

    /// Whether any fragment is non-textual (chart/bar/disclosure) — a
    /// proxy for "visual" interfaces in the persuasion study.
    pub fn has_visual_content(&self) -> bool {
        self.fragments
            .iter()
            .any(|f| !matches!(f, Fragment::Text(_) | Fragment::KeyValue { .. }))
    }

    /// Concatenated text content (for tests and simple logging).
    pub fn text(&self) -> String {
        let mut out = String::new();
        for f in &self.fragments {
            if let Fragment::Text(s) = f {
                if !out.is_empty() {
                    out.push(' ');
                }
                out.push_str(s);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aims::Aim;

    #[test]
    fn none_is_empty() {
        let e = Explanation::none();
        assert_eq!(e.reading_cost(), 0);
        assert!(e.fragments.is_empty());
        assert!(!e.has_visual_content());
        assert_eq!(e.style, ExplanationStyle::None);
    }

    #[test]
    fn reading_cost_scales_with_words() {
        let short = Fragment::Text("Nice movie".to_owned());
        let long = Fragment::Text(
            "This sweeping epic follows three generations of a family through war and peace"
                .to_owned(),
        );
        assert!(long.reading_cost() > short.reading_cost());
        assert!(short.reading_cost() >= 1);
    }

    #[test]
    fn histogram_cost_scales_with_bins() {
        let small = Fragment::Histogram {
            title: "t".into(),
            bins: vec![],
        };
        let big = Fragment::Histogram {
            title: "t".into(),
            bins: (0..5)
                .map(|i| HistBin {
                    label: format!("{i}"),
                    count: i,
                    tone: Tone::Neutral,
                })
                .collect(),
        };
        assert!(big.reading_cost() > small.reading_cost());
    }

    #[test]
    fn visual_detection() {
        let textual = Explanation::new(
            "t",
            ExplanationStyle::ContentBased,
            AimProfile::of(&[Aim::Transparency]),
            vec![Fragment::Text("hi".into())],
        );
        assert!(!textual.has_visual_content());
        let visual = Explanation::new(
            "h",
            ExplanationStyle::CollaborativeBased,
            AimProfile::empty(),
            vec![Fragment::Histogram {
                title: "x".into(),
                bins: vec![],
            }],
        );
        assert!(visual.has_visual_content());
    }

    #[test]
    fn text_concatenates_in_order() {
        let e = Explanation::new(
            "t",
            ExplanationStyle::ContentBased,
            AimProfile::empty(),
            vec![
                Fragment::Text("First.".into()),
                Fragment::KeyValue {
                    key: "k".into(),
                    value: "v".into(),
                },
                Fragment::Text("Second.".into()),
            ],
        );
        assert_eq!(e.text(), "First. Second.");
    }

    #[test]
    fn disclosure_with_confidence_costs_more() {
        let bare = Fragment::Disclosure {
            strength: 4.0,
            confidence: None,
        };
        let full = Fragment::Disclosure {
            strength: 4.0,
            confidence: Some(Confidence::new(0.5)),
        };
        assert!(full.reading_cost() > bare.reading_cost());
    }
}

//! Property tests for the explanation engine: interfaces must never
//! panic on arbitrary (well-typed) evidence, and always produce
//! renderable documents.

use exrec_algo::recommender::{
    ItemAnchor, ModelEvidence, NeighborContribution, RatedItemInfluence, UtilityTerm,
};
use exrec_algo::Ctx;
use exrec_core::interfaces::{ExplainInput, InterfaceId};
use exrec_core::render::{MarkdownRenderer, PlainRenderer, Render};
use exrec_core::templates;
use exrec_data::{Catalog, RatingsMatrix};
use exrec_types::{
    AttributeDef, AttributeSet, Confidence, DomainSchema, ItemId, Prediction, RatingScale, UserId,
};
use proptest::prelude::*;

fn fixture() -> (RatingsMatrix, Catalog) {
    let schema = DomainSchema::new("d", vec![AttributeDef::categorical("genre", "Genre")]).unwrap();
    let mut catalog = Catalog::new(schema);
    for k in 0..6 {
        catalog
            .add(
                &format!("item {k}"),
                AttributeSet::new().with("genre", if k % 2 == 0 { "a" } else { "b" }),
                vec![format!("kw{k}")],
            )
            .unwrap();
    }
    let mut ratings = RatingsMatrix::new(4, 6, RatingScale::FIVE_STAR);
    ratings.rate(UserId(0), ItemId(0), 5.0).unwrap();
    ratings.rate(UserId(0), ItemId(1), 2.0).unwrap();
    ratings.rate(UserId(1), ItemId(2), 4.0).unwrap();
    (ratings, catalog)
}

fn arb_evidence() -> impl Strategy<Value = ModelEvidence> {
    let neighbors =
        prop::collection::vec((0u32..4, -1.0f64..1.0, 1.0f64..5.0), 0..12).prop_map(|ns| {
            ModelEvidence::UserNeighbors {
                neighbors: ns
                    .into_iter()
                    .map(|(u, s, r)| NeighborContribution {
                        user: UserId(u),
                        similarity: s,
                        rating: r,
                    })
                    .collect(),
            }
        });
    let anchors = prop::collection::vec((0u32..6, 0.0f64..1.0, 1.0f64..5.0), 0..6).prop_map(|xs| {
        ModelEvidence::ItemNeighbors {
            anchors: xs
                .into_iter()
                .map(|(i, s, r)| ItemAnchor {
                    item: ItemId(i),
                    similarity: s,
                    user_rating: r,
                })
                .collect(),
        }
    });
    let content = (
        prop::collection::vec(("[a-z]{1,8}", -3.0f64..3.0), 0..6),
        prop::collection::vec((0u32..6, 1.0f64..5.0, 0.0f64..1.0), 0..6),
    )
        .prop_map(|(features, influences)| ModelEvidence::Content {
            features: features
                .into_iter()
                .map(|(f, w)| exrec_algo::recommender::FeatureInfluence {
                    feature: f,
                    weight: w,
                })
                .collect(),
            influences: influences
                .into_iter()
                .map(|(i, r, s)| RatedItemInfluence {
                    item: ItemId(i),
                    user_rating: r,
                    share: s,
                })
                .collect(),
        });
    let utility = (
        prop::collection::vec(("[a-z]{1,8}", 0.0f64..1.0, 0.1f64..3.0), 0..5),
        0.0f64..1.0,
    )
        .prop_map(|(terms, total)| ModelEvidence::Utility {
            terms: terms
                .into_iter()
                .map(|(a, s, w)| UtilityTerm {
                    attribute: a,
                    satisfaction: s,
                    weight: w,
                    detail: "detail".to_owned(),
                })
                .collect(),
            total,
        });
    let popularity = (1.0f64..5.0, 0usize..40)
        .prop_map(|(mean, count)| ModelEvidence::Popularity { mean, count });
    prop_oneof![neighbors, anchors, content, utility, popularity]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn interfaces_never_panic_and_render(
        evidence in arb_evidence(),
        score in 1.0f64..5.0,
        conf in 0.0f64..1.0,
        item in 0u32..6,
    ) {
        let (ratings, catalog) = fixture();
        let ctx = Ctx::new(&ratings, &catalog);
        let input = ExplainInput {
            ctx: &ctx,
            user: UserId(0),
            item: ItemId(item),
            prediction: Prediction::new(score, Confidence::new(conf)),
            evidence: &evidence,
        };
        for id in InterfaceId::ALL {
            match id.generate(&input) {
                Ok(explanation) => {
                    // Every produced explanation renders in every format
                    // without panicking, and reading cost is consistent.
                    let _ = PlainRenderer.render(&explanation);
                    let _ = MarkdownRenderer.render(&explanation);
                    let cost: u64 = explanation
                        .fragments
                        .iter()
                        .map(|f| f.reading_cost())
                        .sum();
                    prop_assert_eq!(explanation.reading_cost(), cost);
                }
                Err(e) => {
                    prop_assert!(!e.to_string().is_empty());
                }
            }
        }
    }

    #[test]
    fn fill_never_loses_known_values(key in "[a-z]{1,6}", value in "[a-zA-Z ]{1,12}") {
        let template = format!("start {{{key}}} end");
        let vals = templates::slots([("k", value.clone())]);
        let out = templates::fill(&template.replace(&format!("{{{key}}}"), "{k}"), &vals);
        prop_assert!(out.contains(&value));
        prop_assert!(out.starts_with("start"));
        prop_assert!(out.ends_with("end"));
    }

    #[test]
    fn modality_restrict_partitions(evidence in arb_evidence(), score in 1.0f64..5.0) {
        use exrec_core::modality::{analyze, restrict, Modality};
        let (ratings, catalog) = fixture();
        let ctx = Ctx::new(&ratings, &catalog);
        let input = ExplainInput {
            ctx: &ctx,
            user: UserId(0),
            item: ItemId(0),
            prediction: Prediction::new(score, Confidence::new(0.5)),
            evidence: &evidence,
        };
        for id in InterfaceId::ALL {
            if let Ok(e) = id.generate(&input) {
                let mix = analyze(&e);
                let t = restrict(&e, Modality::Text);
                let v = restrict(&e, Modality::Visual);
                prop_assert_eq!(t.fragments.len() + v.fragments.len(), e.fragments.len());
                prop_assert_eq!(analyze(&t).visual, 0);
                prop_assert_eq!(analyze(&v).text, 0);
                prop_assert_eq!(analyze(&t).text + analyze(&v).visual, mix.text + mix.visual);
            }
        }
    }
}

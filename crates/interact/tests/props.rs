//! Property tests for the interaction layer.

use exrec_algo::Scored;
use exrec_data::synth::{movies, WorldConfig};
use exrec_interact::profile::{RuleEffect, ScrutableProfile};
use exrec_types::{Confidence, ItemId, Prediction};
use proptest::prelude::*;

fn world() -> exrec_data::World {
    movies::generate(&WorldConfig {
        n_users: 10,
        n_items: 30,
        density: 0.2,
        seed: 0x1AB,
        ..WorldConfig::default()
    })
}

fn ranked(n: u32) -> Vec<Scored> {
    (0..n)
        .map(|k| Scored {
            item: ItemId(k),
            prediction: Prediction::new(5.0 - k as f64 * 0.1, Confidence::new(0.5)),
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn profile_apply_output_is_sorted_and_subset(
        blocks in prop::collection::vec(0usize..8, 0..4),
        biases in prop::collection::vec((0usize..8, -3.0f64..3.0), 0..4),
    ) {
        let w = world();
        let genres: Vec<String> = w.catalog.category_values("genre");
        let mut profile = ScrutableProfile::new();
        for &g in &blocks {
            profile.block("genre", &genres[g % genres.len()]);
        }
        for &(g, d) in &biases {
            profile.add_rule("genre", &genres[g % genres.len()], RuleEffect::Bias(d));
        }
        let input = ranked(30);
        let out = profile.apply(&w.catalog, input.clone());
        // Sorted descending.
        prop_assert!(out.windows(2).all(|p| p[0].prediction.score >= p[1].prediction.score));
        // Subset of input items.
        let input_ids: std::collections::HashSet<ItemId> =
            input.iter().map(|s| s.item).collect();
        for s in &out {
            prop_assert!(input_ids.contains(&s.item));
        }
        // Blocked genres absent.
        for &g in &blocks {
            let genre = &genres[g % genres.len()];
            for s in &out {
                prop_assert_ne!(
                    w.catalog.get(s.item).unwrap().attrs.cat("genre"),
                    Some(genre.as_str())
                );
            }
        }
        // Idempotent-ish: applying again never grows the list.
        let again = profile.apply(&w.catalog, out.clone());
        prop_assert_eq!(again.len(), out.len());
    }

    #[test]
    fn fact_correction_always_wins(
        key in "[a-z]{1,6}",
        v1 in "[a-z]{1,6}",
        v2 in "[a-z]{1,6}",
    ) {
        use exrec_core::provenance::ProfileFact;
        let mut p = ScrutableProfile::new();
        p.set_fact(ProfileFact::inferred(&key, &v1, "watched"));
        p.correct_fact(&key, &v2);
        let f = p.fact(&key).unwrap();
        prop_assert_eq!(&f.value, &v2);
        prop_assert!(f.source.is_user_stated());
        prop_assert_eq!(p.n_inferred(), 0);
    }

    #[test]
    fn rules_removal_is_complete(pairs in prop::collection::vec(("[ab]", "[xy]"), 0..10)) {
        let mut p = ScrutableProfile::new();
        for (a, v) in &pairs {
            p.block(a, v);
        }
        for (a, v) in &pairs {
            p.remove_rules(a, v);
        }
        prop_assert!(p.rules().is_empty());
    }

    #[test]
    fn dialog_fills_at_most_slot_count(answers in prop::collection::vec(any::<bool>(), 1..6)) {
        use exrec_interact::requirements::{DialogManager, Slot, SlotAnswer};
        let slots: Vec<Slot> = (0..answers.len())
            .map(|k| Slot::new(&format!("a{k}"), "?"))
            .collect();
        let n = slots.len();
        let mut d = DialogManager::new(slots);
        for &yes in &answers {
            d.prompt();
            let answer = if yes {
                SlotAnswer::Value("v".to_owned())
            } else {
                SlotAnswer::Unsure
            };
            d.answer(answer).unwrap();
        }
        prop_assert!(d.is_complete());
        let filled = answers.iter().filter(|&&b| b).count();
        prop_assert_eq!(d.n_filled(), filled);
        prop_assert!(d.n_filled() <= n);
        // Transcript has exactly 2 turns per slot.
        prop_assert_eq!(d.transcript().len(), n * 2);
    }
}

//! The scrutable user profile (survey Figure 1 and Sections 2.2 / 3.2).
//!
//! Czarkowski's SASY evaluation found users could appreciate that
//! "adaptation in the system was based on their personal attributes
//! stored in their profile; that their profile contained information they
//! volunteered … and information that was inferred …; and that they could
//! change their profile to control the personalization". This module is
//! that loop: provenance-tagged facts plus *preference rules* that
//! directly reshape recommendation lists — including the canonical
//! "stop recommending Disney movies" block.

use exrec_algo::Scored;
use exrec_core::provenance::{ProfileFact, Source};
use exrec_data::Catalog;
use exrec_types::ItemId;

/// What a preference rule does to matching items.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RuleEffect {
    /// Remove matching items from recommendation lists entirely.
    Block,
    /// Add `delta` to matching items' scores (positive or negative).
    Bias(f64),
}

/// A preference rule over a categorical attribute value.
#[derive(Debug, Clone, PartialEq)]
pub struct PreferenceRule {
    /// Attribute name (e.g. `"genre"`).
    pub attribute: String,
    /// Attribute value the rule matches (e.g. `"disney"`).
    pub value: String,
    /// Effect on matching items.
    pub effect: RuleEffect,
    /// Where the rule came from.
    pub source: Source,
}

impl PreferenceRule {
    fn matches(&self, catalog: &Catalog, item: ItemId) -> bool {
        catalog
            .get(item)
            .map(|it| it.attrs.cat(&self.attribute) == Some(self.value.as_str()))
            .unwrap_or(false)
    }

    /// Human-readable description.
    pub fn describe(&self) -> String {
        match self.effect {
            RuleEffect::Block => {
                format!("never recommend {} = \"{}\"", self.attribute, self.value)
            }
            RuleEffect::Bias(d) if d >= 0.0 => {
                format!("prefer {} = \"{}\" (+{d:.1})", self.attribute, self.value)
            }
            RuleEffect::Bias(d) => {
                format!("avoid {} = \"{}\" ({d:.1})", self.attribute, self.value)
            }
        }
    }
}

/// A scrutable profile: provenance-tagged facts + actionable rules.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ScrutableProfile {
    facts: Vec<ProfileFact>,
    rules: Vec<PreferenceRule>,
}

impl ScrutableProfile {
    /// An empty profile.
    pub fn new() -> Self {
        Self::default()
    }

    // ---- facts -----------------------------------------------------

    /// All facts, in insertion order.
    pub fn facts(&self) -> &[ProfileFact] {
        &self.facts
    }

    /// Adds or replaces a fact by key.
    pub fn set_fact(&mut self, fact: ProfileFact) {
        match self.facts.iter_mut().find(|f| f.key == fact.key) {
            Some(slot) => *slot = fact,
            None => self.facts.push(fact),
        }
    }

    /// Looks a fact up by key.
    pub fn fact(&self, key: &str) -> Option<&ProfileFact> {
        self.facts.iter().find(|f| f.key == key)
    }

    /// User correction: replaces the fact's value and marks it
    /// volunteered (the scrutability loop of Section 2.2).
    pub fn correct_fact(&mut self, key: &str, new_value: &str) -> bool {
        match self.facts.iter_mut().find(|f| f.key == key) {
            Some(f) => {
                f.value = new_value.to_owned();
                f.source = Source::Volunteered;
                true
            }
            None => false,
        }
    }

    /// Deletes a fact. Returns whether it existed.
    pub fn delete_fact(&mut self, key: &str) -> bool {
        let before = self.facts.len();
        self.facts.retain(|f| f.key != key);
        self.facts.len() != before
    }

    /// Count of inferred (non-volunteered) facts — the "how much does the
    /// system assume about me" number surfaced in scrutable UIs.
    pub fn n_inferred(&self) -> usize {
        self.facts
            .iter()
            .filter(|f| !f.source.is_user_stated())
            .count()
    }

    // ---- rules -----------------------------------------------------

    /// All rules.
    pub fn rules(&self) -> &[PreferenceRule] {
        &self.rules
    }

    /// Adds a rule (user-volunteered).
    pub fn add_rule(&mut self, attribute: &str, value: &str, effect: RuleEffect) {
        self.rules.push(PreferenceRule {
            attribute: attribute.to_owned(),
            value: value.to_owned(),
            effect,
            source: Source::Volunteered,
        });
    }

    /// Adds a system-inferred rule with its observation.
    pub fn infer_rule(&mut self, attribute: &str, value: &str, effect: RuleEffect, evidence: &str) {
        self.rules.push(PreferenceRule {
            attribute: attribute.to_owned(),
            value: value.to_owned(),
            effect,
            source: Source::Inferred {
                evidence: evidence.to_owned(),
            },
        });
    }

    /// Convenience: "stop recommending items whose `attribute` is
    /// `value`" — the survey's Disney scenario.
    pub fn block(&mut self, attribute: &str, value: &str) {
        self.add_rule(attribute, value, RuleEffect::Block);
    }

    /// Removes every rule on `(attribute, value)`. Returns how many.
    pub fn remove_rules(&mut self, attribute: &str, value: &str) -> usize {
        let before = self.rules.len();
        self.rules
            .retain(|r| !(r.attribute == attribute && r.value == value));
        before - self.rules.len()
    }

    /// Applies all rules to a ranked list: blocked items are dropped,
    /// biased items re-scored and the list re-sorted.
    pub fn apply(&self, catalog: &Catalog, mut ranked: Vec<Scored>) -> Vec<Scored> {
        ranked.retain(|s| {
            !self
                .rules
                .iter()
                .any(|r| matches!(r.effect, RuleEffect::Block) && r.matches(catalog, s.item))
        });
        for s in &mut ranked {
            for r in &self.rules {
                if let RuleEffect::Bias(delta) = r.effect {
                    if r.matches(catalog, s.item) {
                        s.prediction.score += delta;
                    }
                }
            }
        }
        ranked.sort_by(|a, b| {
            b.prediction
                .score
                .partial_cmp(&a.prediction.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.item.cmp(&b.item))
        });
        ranked
    }

    /// Which rules fired for `item` — the "why was this filtered/boosted"
    /// answer in scrutable UIs.
    pub fn why(&self, catalog: &Catalog, item: ItemId) -> Vec<&PreferenceRule> {
        self.rules
            .iter()
            .filter(|r| r.matches(catalog, item))
            .collect()
    }

    /// The full scrutable rendering: every fact's sentence plus every
    /// rule description.
    pub fn render_scrutable(&self) -> String {
        let mut out = String::new();
        for f in &self.facts {
            out.push_str(&f.scrutable_sentence());
            out.push('\n');
        }
        for r in &self.rules {
            out.push_str("Active rule: ");
            out.push_str(&r.describe());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exrec_algo::baseline::Popularity;
    use exrec_algo::{Ctx, Recommender};
    use exrec_data::synth::{movies, WorldConfig};
    use exrec_data::World;
    use exrec_types::UserId;

    fn world() -> World {
        movies::generate(&WorldConfig {
            n_users: 20,
            n_items: 40,
            density: 0.3,
            ..WorldConfig::default()
        })
    }

    #[test]
    fn facts_lifecycle() {
        let mut p = ScrutableProfile::new();
        p.set_fact(ProfileFact::inferred(
            "likes_genre",
            "horror",
            "you rated 4 horror movies highly",
        ));
        assert_eq!(p.n_inferred(), 1);
        assert!(p.correct_fact("likes_genre", "comedy"));
        assert_eq!(p.fact("likes_genre").unwrap().value, "comedy");
        assert_eq!(p.n_inferred(), 0, "corrected facts become volunteered");
        assert!(p.delete_fact("likes_genre"));
        assert!(!p.delete_fact("likes_genre"));
    }

    #[test]
    fn set_fact_replaces_by_key() {
        let mut p = ScrutableProfile::new();
        p.set_fact(ProfileFact::volunteered("home", "ABZ"));
        p.set_fact(ProfileFact::volunteered("home", "EDI"));
        assert_eq!(p.facts().len(), 1);
        assert_eq!(p.fact("home").unwrap().value, "EDI");
    }

    #[test]
    fn block_rule_removes_genre_from_recommendations() {
        // The survey's "stop receiving recommendations of Disney movies".
        let w = world();
        let ctx = Ctx::new(&w.ratings, &w.catalog);
        let user = w.ratings.users().next().unwrap();
        let ranked = Popularity::default().recommend(&ctx, user, w.catalog.len());
        let target_genre = w
            .catalog
            .get(ranked[0].item)
            .unwrap()
            .attrs
            .cat("genre")
            .unwrap()
            .to_owned();

        let mut profile = ScrutableProfile::new();
        profile.block("genre", &target_genre);
        let filtered = profile.apply(&w.catalog, ranked.clone());
        assert!(filtered.len() < ranked.len());
        for s in &filtered {
            assert_ne!(
                w.catalog.get(s.item).unwrap().attrs.cat("genre"),
                Some(target_genre.as_str())
            );
        }
    }

    #[test]
    fn bias_rule_reorders() {
        let w = world();
        let ctx = Ctx::new(&w.ratings, &w.catalog);
        let user = UserId::new(0);
        let ranked = Popularity::default().recommend(&ctx, user, 10);
        let last_genre = w
            .catalog
            .get(ranked.last().unwrap().item)
            .unwrap()
            .attrs
            .cat("genre")
            .unwrap()
            .to_owned();
        let mut profile = ScrutableProfile::new();
        profile.add_rule("genre", &last_genre, RuleEffect::Bias(10.0));
        let boosted = profile.apply(&w.catalog, ranked);
        assert_eq!(
            w.catalog.get(boosted[0].item).unwrap().attrs.cat("genre"),
            Some(last_genre.as_str()),
            "boosted genre should rise to the top"
        );
        // Output stays sorted.
        assert!(boosted
            .windows(2)
            .all(|p| p[0].prediction.score >= p[1].prediction.score));
    }

    #[test]
    fn why_reports_firing_rules() {
        let w = world();
        let item = w.catalog.ids().next().unwrap();
        let genre = w
            .catalog
            .get(item)
            .unwrap()
            .attrs
            .cat("genre")
            .unwrap()
            .to_owned();
        let mut profile = ScrutableProfile::new();
        profile.block("genre", &genre);
        profile.add_rule("genre", "nonexistent", RuleEffect::Block);
        let fired = profile.why(&w.catalog, item);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].value, genre);
    }

    #[test]
    fn remove_rules_unblocks() {
        let mut p = ScrutableProfile::new();
        p.block("genre", "disney");
        p.block("genre", "horror");
        assert_eq!(p.remove_rules("genre", "disney"), 1);
        assert_eq!(p.rules().len(), 1);
    }

    #[test]
    fn scrutable_rendering_mentions_everything() {
        let mut p = ScrutableProfile::new();
        p.set_fact(ProfileFact::volunteered("age_group", "25-34"));
        p.infer_rule(
            "genre",
            "documentary",
            RuleEffect::Bias(-1.0),
            "you skipped 6 documentaries",
        );
        let text = p.render_scrutable();
        assert!(text.contains("You told us"));
        assert!(text.contains("avoid genre = \"documentary\""));
    }
}

//! The interaction-mode taxonomy of the survey's Tables 3 and 4.

use std::fmt;

/// How the user gives feedback to the recommender (survey Section 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InteractionMode {
    /// The user rates items (Section 5.3).
    Rating,
    /// Ratings inferred from behaviour rather than entered.
    ImplicitRating,
    /// The user gives a like/dislike-style opinion (Section 5.4).
    Opinion,
    /// The user specifies requirements directly (Section 5.1).
    SpecifyRequirements,
    /// The user asks for alterations / critiques (Section 5.2).
    Alteration,
    /// Mixed or study-dependent.
    Varied,
    /// No feedback channel.
    None,
}

impl InteractionMode {
    /// Name as used in the survey's tables.
    pub fn name(self) -> &'static str {
        match self {
            InteractionMode::Rating => "Rating",
            InteractionMode::ImplicitRating => "(Implicit) rating",
            InteractionMode::Opinion => "Opinion",
            InteractionMode::SpecifyRequirements => "Specify reqs.",
            InteractionMode::Alteration => "Alteration",
            InteractionMode::Varied => "(varied)",
            InteractionMode::None => "(None)",
        }
    }

    /// Whether the mode closes the scrutability loop (the user can
    /// actually change the system's beliefs).
    pub fn is_corrective(self) -> bool {
        !matches!(
            self,
            InteractionMode::None | InteractionMode::ImplicitRating
        )
    }
}

impl fmt::Display for InteractionMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_match_tables() {
        assert_eq!(InteractionMode::Rating.name(), "Rating");
        assert_eq!(InteractionMode::SpecifyRequirements.name(), "Specify reqs.");
        assert_eq!(InteractionMode::ImplicitRating.name(), "(Implicit) rating");
        assert_eq!(InteractionMode::None.name(), "(None)");
    }

    #[test]
    fn corrective_modes() {
        assert!(InteractionMode::Rating.is_corrective());
        assert!(InteractionMode::Alteration.is_corrective());
        assert!(!InteractionMode::None.is_corrective());
        assert!(!InteractionMode::ImplicitRating.is_corrective());
    }
}

//! Requirement elicitation via slot-filling dialog (survey Section 5.1).
//!
//! "By allowing a user to directly specify their requirements it is
//! possible to circumvent the type of faulty assumptions that can be made
//! by a system where the interests of a user are based on the items they
//! decide to see." The dialog manager walks a list of slots (attributes),
//! asks for each, accepts answers or "I'm not sure" (which moves on to a
//! fallback slot), and yields a [`Maut`] requirement set — the shape of
//! the survey's thriller / Bruce Willis conversation.

use exrec_algo::knowledge::{Constraint, Maut, Requirement};
use exrec_types::Result;

/// One slot the dialog can fill.
#[derive(Debug, Clone, PartialEq)]
pub struct Slot {
    /// Attribute the slot fills.
    pub attribute: String,
    /// The question asked.
    pub prompt: String,
    /// Weight of the resulting requirement.
    pub weight: f64,
    /// Whether a filled value becomes a hard constraint.
    pub hard: bool,
}

impl Slot {
    /// A categorical slot with prompt.
    pub fn new(attribute: &str, prompt: &str) -> Self {
        Self {
            attribute: attribute.to_owned(),
            prompt: prompt.to_owned(),
            weight: 1.0,
            hard: false,
        }
    }

    /// Makes the slot's requirement hard (builder style).
    pub fn hard(mut self) -> Self {
        self.hard = true;
        self
    }

    /// Sets the weight (builder style).
    pub fn with_weight(mut self, weight: f64) -> Self {
        self.weight = weight;
        self
    }
}

/// A user's answer to a slot prompt.
#[derive(Debug, Clone, PartialEq)]
pub enum SlotAnswer {
    /// A categorical value ("thriller", "Bruce Willis").
    Value(String),
    /// A numeric bound ("at most 500").
    AtMost(f64),
    /// A numeric floor ("at least 8").
    AtLeast(f64),
    /// "Uhm, I'm not sure" — skip to the next slot.
    Unsure,
}

/// One exchange of the dialog transcript.
#[derive(Debug, Clone, PartialEq)]
pub struct DialogTurn {
    /// Who spoke.
    pub speaker: Speaker,
    /// What was said.
    pub utterance: String,
}

/// Dialog participants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Speaker {
    /// The recommender system.
    System,
    /// The user.
    User,
}

/// A slot-filling dialog in progress.
#[derive(Debug, Clone)]
pub struct DialogManager {
    slots: Vec<Slot>,
    cursor: usize,
    requirements: Vec<Requirement>,
    transcript: Vec<DialogTurn>,
}

impl DialogManager {
    /// Starts a dialog over `slots`.
    pub fn new(slots: Vec<Slot>) -> Self {
        Self {
            slots,
            cursor: 0,
            requirements: Vec::new(),
            transcript: Vec::new(),
        }
    }

    /// The next prompt, or `None` when all slots are exhausted.
    pub fn prompt(&mut self) -> Option<String> {
        let slot = self.slots.get(self.cursor)?;
        let prompt = slot.prompt.clone();
        self.transcript.push(DialogTurn {
            speaker: Speaker::System,
            utterance: prompt.clone(),
        });
        Some(prompt)
    }

    /// Answers the current slot, advancing the dialog.
    ///
    /// # Errors
    ///
    /// Returns [`exrec_types::Error::InvalidSessionAction`] when no slot
    /// is pending.
    pub fn answer(&mut self, answer: SlotAnswer) -> Result<()> {
        let slot = self
            .slots
            .get(self.cursor)
            .ok_or(exrec_types::Error::InvalidSessionAction {
                detail: "dialog already complete".to_owned(),
            })?
            .clone();
        let text = match &answer {
            SlotAnswer::Value(v) => v.clone(),
            SlotAnswer::AtMost(n) => format!("at most {n}"),
            SlotAnswer::AtLeast(n) => format!("at least {n}"),
            SlotAnswer::Unsure => "Uhm, I'm not sure".to_owned(),
        };
        self.transcript.push(DialogTurn {
            speaker: Speaker::User,
            utterance: text,
        });
        match answer {
            SlotAnswer::Unsure => {}
            SlotAnswer::Value(v) => {
                let req = Requirement {
                    attribute: slot.attribute.clone(),
                    constraint: Constraint::Equals(v),
                    weight: slot.weight,
                    hard: slot.hard,
                };
                self.requirements.push(req);
            }
            SlotAnswer::AtMost(n) => {
                self.requirements.push(Requirement {
                    attribute: slot.attribute.clone(),
                    constraint: Constraint::AtMost(n),
                    weight: slot.weight,
                    hard: slot.hard,
                });
            }
            SlotAnswer::AtLeast(n) => {
                self.requirements.push(Requirement {
                    attribute: slot.attribute.clone(),
                    constraint: Constraint::AtLeast(n),
                    weight: slot.weight,
                    hard: slot.hard,
                });
            }
        }
        self.cursor += 1;
        Ok(())
    }

    /// Whether every slot has been visited.
    pub fn is_complete(&self) -> bool {
        self.cursor >= self.slots.len()
    }

    /// Number of slots answered with a real value (not "unsure").
    pub fn n_filled(&self) -> usize {
        self.requirements.len()
    }

    /// The dialog transcript so far.
    pub fn transcript(&self) -> &[DialogTurn] {
        &self.transcript
    }

    /// Finishes the dialog, producing the requirement set.
    ///
    /// # Errors
    ///
    /// Propagates [`Maut::new`] validation.
    pub fn finish(self) -> Result<Maut> {
        Maut::new(self.requirements)
    }

    /// Renders the transcript like the survey's example dialog.
    pub fn render_transcript(&self) -> String {
        self.transcript
            .iter()
            .map(|t| match t.speaker {
                Speaker::System => format!("System: {}", t.utterance),
                Speaker::User => format!("User: {}", t.utterance),
            })
            .collect::<Vec<_>>()
            .join("\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn movie_slots() -> Vec<Slot> {
        vec![
            Slot::new("genre", "What kind of movie do you feel like watching?"),
            Slot::new(
                "favourite_title",
                "Can you tell me one of your favorite thriller movies?",
            ),
            Slot::new(
                "lead",
                "Okay. Can you tell me one of your favorite actors or actresses?",
            ),
        ]
    }

    #[test]
    fn survey_dialog_shape() {
        // Mirrors the thriller / Bruce Willis exchange of Section 5.1.
        let mut d = DialogManager::new(movie_slots());
        assert!(d.prompt().is_some());
        d.answer(SlotAnswer::Value("thriller".into())).unwrap();
        assert!(d.prompt().is_some());
        d.answer(SlotAnswer::Unsure).unwrap();
        assert!(d.prompt().is_some());
        d.answer(SlotAnswer::Value("Bruce Willis".into())).unwrap();
        assert!(d.is_complete());
        assert_eq!(d.n_filled(), 2, "unsure slot skipped");
        let transcript = d.render_transcript();
        assert!(transcript.contains("User: Uhm, I'm not sure"));
        assert!(transcript.contains("User: Bruce Willis"));
        let maut = d.finish().unwrap();
        assert_eq!(maut.requirements().len(), 2);
    }

    #[test]
    fn numeric_answers_become_bounds() {
        let mut d = DialogManager::new(vec![
            Slot::new("price", "What is your budget?").hard(),
            Slot::new("resolution", "Minimum resolution?"),
        ]);
        d.prompt();
        d.answer(SlotAnswer::AtMost(500.0)).unwrap();
        d.prompt();
        d.answer(SlotAnswer::AtLeast(8.0)).unwrap();
        let maut = d.finish().unwrap();
        assert!(maut.requirements()[0].hard);
        assert!(matches!(
            maut.requirements()[0].constraint,
            Constraint::AtMost(v) if v == 500.0
        ));
        assert!(matches!(
            maut.requirements()[1].constraint,
            Constraint::AtLeast(v) if v == 8.0
        ));
    }

    #[test]
    fn answering_past_the_end_errors() {
        let mut d = DialogManager::new(vec![Slot::new("a", "?")]);
        d.prompt();
        d.answer(SlotAnswer::Unsure).unwrap();
        assert!(d.prompt().is_none());
        assert!(d.answer(SlotAnswer::Unsure).is_err());
    }

    #[test]
    fn transcript_alternates_speakers() {
        let mut d = DialogManager::new(movie_slots());
        d.prompt();
        d.answer(SlotAnswer::Value("comedy".into())).unwrap();
        let t = d.transcript();
        assert_eq!(t[0].speaker, Speaker::System);
        assert_eq!(t[1].speaker, Speaker::User);
    }
}

//! # exrec-interact
//!
//! Interaction layer (survey Section 5): "justifying recommendations to
//! the user is only half of the solution, the second half is making the
//! system scrutable by allowing the user to make changes."
//!
//! * [`mode`] — the interaction taxonomy of Tables 3/4;
//! * [`profile`] — the scrutable user profile (Figure 1): volunteered vs
//!   inferred facts plus actionable preference rules ("no more Disney");
//! * [`opinions`] — opinion feedback (Section 5.4): more-like-this
//!   (MoreLater / GiveMeMore), no-more (AlreadyKnow / NoMoreLikeThis),
//!   SurpriseMe, and aspect-level feedback;
//! * [`critiquing`] — conversational critiquing sessions (Section 5.2)
//!   with unit and dynamic compound critiques and repair actions;
//! * [`requirements`] — slot-filling requirement elicitation
//!   (Section 5.1), including the survey's thriller/Bruce Willis dialog
//!   shape;
//! * [`session`] — the single-shot vs conversational session engine with
//!   simulated-time accounting;
//! * [`store`] — a concurrent session store tracking logins and
//!   interactions (the loyalty measures of Section 3.3).

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod critiquing;
pub mod mode;
pub mod opinions;
pub mod profile;
pub mod requirements;
pub mod session;
pub mod store;

pub use critiquing::CritiqueSession;
pub use mode::InteractionMode;
pub use opinions::Opinion;
pub use profile::{RuleEffect, ScrutableProfile};
pub use session::RecommendationSession;
pub use store::SessionStore;

//! The recommendation session engine.
//!
//! A [`RecommendationSession`] threads everything Section 5 of the survey
//! describes into one stateful loop: recommendations filtered by the
//! scrutable profile, rating and re-rating feedback, opinion feedback,
//! "why?" queries that produce explanations, and an exploration dial fed
//! by "Surprise me!". Every action advances simulated time and an
//! interaction counter — the raw measurements of the efficiency and
//! loyalty studies (Sections 3.3 and 3.6).

use crate::opinions::{apply_opinion, Opinion, OpinionState};
use crate::profile::ScrutableProfile;
use exrec_algo::{Ctx, Recommender, Scored};
use exrec_core::engine::Explainer;
use exrec_core::explanation::Explanation;
use exrec_core::interfaces::InterfaceId;
use exrec_data::{Catalog, RatingsMatrix};
use exrec_types::{ItemId, Prediction, Result, SimTime, UserId};

/// Session style: the survey contrasts single-shot systems, "where each
/// user interaction is treated independently of previous history", with
/// conversational ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionStyle {
    /// Feedback is accepted but does not persist across `recommend` calls.
    SingleShot,
    /// Feedback accumulates (the default).
    Conversational,
}

/// A stateful recommendation session for one user.
pub struct RecommendationSession<'a, R: Recommender + Sync> {
    ratings: &'a mut RatingsMatrix,
    catalog: &'a Catalog,
    recommender: &'a R,
    user: UserId,
    style: SessionStyle,
    /// The scrutable profile (public: scrutiny tools edit it directly).
    pub profile: ScrutableProfile,
    /// Opinion-derived state (public for the same reason).
    pub opinions: OpinionState,
    interface: InterfaceId,
    time: SimTime,
    interactions: usize,
}

impl<'a, R: Recommender + Sync> RecommendationSession<'a, R> {
    /// Opens a session.
    pub fn new(
        ratings: &'a mut RatingsMatrix,
        catalog: &'a Catalog,
        recommender: &'a R,
        user: UserId,
        style: SessionStyle,
        interface: InterfaceId,
    ) -> Self {
        Self {
            ratings,
            catalog,
            recommender,
            user,
            style,
            profile: ScrutableProfile::new(),
            opinions: OpinionState::default(),
            interface,
            time: SimTime::ZERO,
            interactions: 0,
        }
    }

    /// The session user.
    pub fn user(&self) -> UserId {
        self.user
    }

    /// Elapsed simulated time.
    pub fn elapsed(&self) -> SimTime {
        self.time
    }

    /// Number of explicit interactions so far.
    pub fn interactions(&self) -> usize {
        self.interactions
    }

    /// The active explanation interface.
    pub fn interface(&self) -> InterfaceId {
        self.interface
    }

    fn tick(&mut self, cost: u64) {
        self.time += cost;
        self.interactions += 1;
    }

    /// Current recommendations: ranked by the recommender, reshaped by
    /// the profile rules, minus known items, with the exploration dial
    /// mixing in long-tail items deterministically.
    pub fn recommend(&self, n: usize) -> Vec<Scored> {
        let ctx = Ctx::new(self.ratings, self.catalog);
        let mut ranked = self.recommender.recommend(&ctx, self.user, usize::MAX);
        if self.style == SessionStyle::Conversational {
            ranked = self.profile.apply(self.catalog, ranked);
            ranked.retain(|s| !self.opinions.known.contains(&s.item));
        }
        if self.opinions.exploration > 0.0 && ranked.len() > n {
            // Deterministically swap the tail of the top-n with long-tail
            // picks, proportional to the dial.
            let n_explore = ((n as f64) * self.opinions.exploration * 0.5).round() as usize;
            let n_keep = n.saturating_sub(n_explore);
            let mut out: Vec<Scored> = ranked.iter().take(n_keep).copied().collect();
            let tail: Vec<Scored> = ranked.iter().skip(n * 2).copied().collect();
            for k in 0..n_explore {
                // Stable stride through the tail.
                if let Some(pick) = tail.get((k * 7 + 3) % tail.len().max(1)) {
                    if !out.iter().any(|s| s.item == pick.item) {
                        out.push(*pick);
                    }
                }
            }
            out.truncate(n);
            return out;
        }
        ranked.truncate(n);
        ranked
    }

    /// Rates (or re-rates) an item; the next `recommend` call observes it.
    ///
    /// # Errors
    ///
    /// Propagates matrix errors (unknown ids, off-scale values).
    pub fn rate(&mut self, item: ItemId, value: f64) -> Result<Option<f64>> {
        self.tick(2);
        self.ratings.rate(self.user, item, value)
    }

    /// Removes the user's rating of an item.
    ///
    /// # Errors
    ///
    /// Propagates matrix errors.
    pub fn unrate(&mut self, item: ItemId) -> Result<Option<f64>> {
        self.tick(2);
        self.ratings.unrate(self.user, item)
    }

    /// Expresses an opinion about an item (Section 5.4).
    ///
    /// # Errors
    ///
    /// Propagates catalog lookups.
    pub fn opine(&mut self, item: ItemId, opinion: Opinion) -> Result<()> {
        self.tick(1);
        if self.style == SessionStyle::SingleShot {
            // Accepted but forgotten: single-shot systems treat each
            // interaction independently.
            let mut scratch_profile = self.profile.clone();
            let mut scratch_state = self.opinions.clone();
            return apply_opinion(
                &opinion,
                item,
                self.catalog,
                &mut scratch_profile,
                &mut scratch_state,
            );
        }
        apply_opinion(
            &opinion,
            item,
            self.catalog,
            &mut self.profile,
            &mut self.opinions,
        )
    }

    /// "Why was this recommended?" — produces the prediction and the
    /// explanation under the session's interface, charging the
    /// explanation's reading cost to the session clock.
    ///
    /// # Errors
    ///
    /// Propagates prediction/evidence/generation errors.
    pub fn why(&mut self, item: ItemId) -> Result<(Prediction, Explanation)> {
        let (prediction, explanation) = {
            let ctx = Ctx::new(self.ratings, self.catalog);
            let explainer = Explainer::new(self.recommender, self.interface);
            explainer.explain(&ctx, self.user, item)?
        };
        self.tick(explanation.reading_cost());
        Ok((prediction, explanation))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exrec_algo::baseline::Popularity;
    use exrec_data::synth::{movies, WorldConfig};
    use exrec_data::World;

    fn world() -> World {
        movies::generate(&WorldConfig {
            n_users: 20,
            n_items: 40,
            density: 0.3,
            ..WorldConfig::default()
        })
    }

    #[test]
    fn rating_feedback_affects_recommendations() {
        let mut w = world();
        let rec = Popularity::default();
        let user = UserId::new(0);
        let mut session = RecommendationSession::new(
            &mut w.ratings,
            &w.catalog,
            &rec,
            user,
            SessionStyle::Conversational,
            InterfaceId::MovieAverage,
        );
        let before = session.recommend(5);
        let top = before[0].item;
        session.rate(top, 1.0).unwrap();
        let after = session.recommend(5);
        assert!(
            !after.iter().any(|s| s.item == top),
            "rated items leave the recommendation list"
        );
    }

    #[test]
    fn scrutability_loop_blocks_genre() {
        let mut w = world();
        let rec = Popularity::default();
        let mut session = RecommendationSession::new(
            &mut w.ratings,
            &w.catalog,
            &rec,
            UserId::new(1),
            SessionStyle::Conversational,
            InterfaceId::MovieAverage,
        );
        let before = session.recommend(5);
        let genre = w
            .catalog
            .get(before[0].item)
            .unwrap()
            .attrs
            .cat("genre")
            .unwrap()
            .to_owned();
        session.profile.block("genre", &genre);
        for s in session.recommend(5) {
            assert_ne!(
                w.catalog.get(s.item).unwrap().attrs.cat("genre"),
                Some(genre.as_str())
            );
        }
    }

    #[test]
    fn single_shot_forgets_opinions() {
        let mut w = world();
        let rec = Popularity::default();
        let mut session = RecommendationSession::new(
            &mut w.ratings,
            &w.catalog,
            &rec,
            UserId::new(2),
            SessionStyle::SingleShot,
            InterfaceId::MovieAverage,
        );
        let before = session.recommend(5);
        session
            .opine(before[0].item, Opinion::NoMoreLikeThis)
            .unwrap();
        let after = session.recommend(5);
        assert_eq!(before, after, "single-shot sessions ignore history");
        assert!(session.profile.rules().is_empty());
    }

    #[test]
    fn conversational_remembers_opinions() {
        let mut w = world();
        let rec = Popularity::default();
        let mut session = RecommendationSession::new(
            &mut w.ratings,
            &w.catalog,
            &rec,
            UserId::new(2),
            SessionStyle::Conversational,
            InterfaceId::MovieAverage,
        );
        let before = session.recommend(5);
        session.opine(before[0].item, Opinion::AlreadyKnow).unwrap();
        let after = session.recommend(5);
        assert!(!after.iter().any(|s| s.item == before[0].item));
    }

    #[test]
    fn why_charges_reading_time() {
        let mut w = world();
        let rec = Popularity::default();
        let mut session = RecommendationSession::new(
            &mut w.ratings,
            &w.catalog,
            &rec,
            UserId::new(3),
            SessionStyle::Conversational,
            InterfaceId::DetailedProcess,
        );
        let recs = session.recommend(1);
        let t0 = session.elapsed();
        let (_, explanation) = session.why(recs[0].item).unwrap();
        assert_eq!(
            session.elapsed() - t0,
            explanation.reading_cost(),
            "why() charges exactly the reading cost"
        );
        assert!(explanation.reading_cost() > 0);
    }

    #[test]
    fn surprise_me_diversifies() {
        let mut w = world();
        let rec = Popularity::default();
        let mut session = RecommendationSession::new(
            &mut w.ratings,
            &w.catalog,
            &rec,
            UserId::new(4),
            SessionStyle::Conversational,
            InterfaceId::MovieAverage,
        );
        let plain = session.recommend(6);
        let anchor = plain[0].item;
        for _ in 0..4 {
            session.opine(anchor, Opinion::SurpriseMe).unwrap();
        }
        let surprising = session.recommend(6);
        assert_ne!(plain, surprising, "exploration must change the list");
    }

    #[test]
    fn interaction_counter_tracks_actions() {
        let mut w = world();
        let rec = Popularity::default();
        let mut session = RecommendationSession::new(
            &mut w.ratings,
            &w.catalog,
            &rec,
            UserId::new(5),
            SessionStyle::Conversational,
            InterfaceId::MovieAverage,
        );
        let recs = session.recommend(2);
        session.rate(recs[0].item, 4.0).unwrap();
        session.opine(recs[1].item, Opinion::MoreLater).unwrap();
        assert_eq!(session.interactions(), 2);
        assert!(session.elapsed().ticks() >= 3);
    }
}

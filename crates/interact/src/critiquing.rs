//! Conversational critiquing (survey Section 5.2).
//!
//! The user sees a recommendation plus trade-off alternatives ("Less
//! Memory and Lower Resolution and Cheaper"); picking a critique filters
//! the candidate pool and yields a new recommendation. When a critique
//! empties the pool the session offers a *repair action* (relax the
//! tightest requirement) instead of a dead "no items found" — the
//! survey's complaint about flight-search trial-and-error.

use exrec_algo::knowledge::Maut;
use exrec_algo::{Ctx, Scored};
use exrec_present::critiques::{
    attribute_ranges, mine_compound, pattern_of, CompoundCritique, UnitCritique,
};
use exrec_present::structured::OverviewConfig;
use exrec_types::{Error, ItemId, Result, SimTime};
use std::collections::HashMap;

/// One step of a critiquing session, as shown to the user.
#[derive(Debug, Clone, PartialEq)]
pub struct CritiqueScreen {
    /// The current recommendation.
    pub current: Scored,
    /// Available compound critiques with their titles.
    pub options: Vec<(CompoundCritique, String)>,
    /// The cycle number (1-based).
    pub cycle: usize,
}

/// The outcome of applying a critique.
#[derive(Debug, Clone, PartialEq)]
pub enum CritiqueOutcome {
    /// A new screen with a new current item.
    Continue(CritiqueScreen),
    /// The critique emptied the pool; the named attribute's requirements
    /// were relaxed as a repair action and a new screen produced.
    Repaired {
        /// Attribute whose requirements were dropped.
        relaxed: String,
        /// The post-repair screen.
        screen: CritiqueScreen,
    },
}

/// A running critiquing session over a (knowledge-based) candidate pool.
#[derive(Debug, Clone)]
pub struct CritiqueSession {
    maut: Maut,
    pool: Vec<ItemId>,
    cycle: usize,
    time: SimTime,
    repairs: usize,
    config: OverviewConfig,
    ranges: HashMap<String, (f64, f64)>,
}

impl CritiqueSession {
    /// Starts a session: ranks the catalog with `maut` and presents the
    /// best item plus mined critiques.
    ///
    /// # Errors
    ///
    /// Fails when nothing passes the hard requirements.
    pub fn start(
        maut: Maut,
        ctx: &Ctx<'_>,
        config: OverviewConfig,
    ) -> Result<(Self, CritiqueScreen)> {
        let ranges = attribute_ranges(ctx.catalog);
        let pool: Vec<ItemId> = maut.rank(ctx, usize::MAX).iter().map(|s| s.item).collect();
        if pool.is_empty() {
            return Err(Error::InvalidSessionAction {
                detail: "no candidate passes the hard requirements".to_owned(),
            });
        }
        let mut session = Self {
            maut,
            pool,
            cycle: 0,
            time: SimTime::ZERO,
            repairs: 0,
            config,
            ranges,
        };
        let screen = session.screen(ctx)?;
        Ok((session, screen))
    }

    /// Elapsed simulated time.
    pub fn elapsed(&self) -> SimTime {
        self.time
    }

    /// Number of critique cycles so far.
    pub fn cycles(&self) -> usize {
        self.cycle
    }

    /// Number of repair actions taken.
    pub fn repairs(&self) -> usize {
        self.repairs
    }

    /// Remaining candidate count.
    pub fn pool_size(&self) -> usize {
        self.pool.len()
    }

    fn best(&self, ctx: &Ctx<'_>) -> Result<Scored> {
        let ranked = self.maut.rank(ctx, usize::MAX);
        ranked
            .into_iter()
            .find(|s| self.pool.contains(&s.item))
            .ok_or(Error::InvalidSessionAction {
                detail: "candidate pool is empty".to_owned(),
            })
    }

    fn screen(&mut self, ctx: &Ctx<'_>) -> Result<CritiqueScreen> {
        self.cycle += 1;
        let current = self.best(ctx)?;
        let candidates: Vec<ItemId> = self
            .pool
            .iter()
            .copied()
            .filter(|&i| i != current.item)
            .collect();
        let compounds = mine_compound(
            ctx.catalog,
            current.item,
            &candidates,
            self.config.min_support,
            self.config.max_critique_len,
        )?;
        let options: Vec<(CompoundCritique, String)> = compounds
            .into_iter()
            .take(self.config.max_categories)
            .map(|c| {
                let title = c.title(ctx.catalog.schema());
                (c, title)
            })
            .collect();
        // Reading the screen costs time: scanning the item + each option.
        self.time += 4 + 2 * options.len() as u64;
        Ok(CritiqueScreen {
            current,
            options,
            cycle: self.cycle,
        })
    }

    /// Applies a compound critique relative to the current recommendation.
    ///
    /// # Errors
    ///
    /// Propagates catalog lookups; repairs rather than failing when the
    /// pool would empty.
    pub fn apply_compound(
        &mut self,
        ctx: &Ctx<'_>,
        current: ItemId,
        critique: &CompoundCritique,
    ) -> Result<CritiqueOutcome> {
        let reference = ctx.catalog.get(current)?;
        let filtered: Vec<ItemId> = self
            .pool
            .iter()
            .copied()
            .filter(|&i| i != current)
            .filter(|&i| {
                ctx.catalog
                    .get(i)
                    .map(|it| critique.matches(it, reference, &self.ranges))
                    .unwrap_or(false)
            })
            .collect();
        self.time += 2; // clicking a critique
        if filtered.is_empty() {
            return self.repair(ctx, critique);
        }
        self.pool = filtered;
        Ok(CritiqueOutcome::Continue(self.screen(ctx)?))
    }

    /// Applies a unit critique ("cheaper than the current one").
    ///
    /// # Errors
    ///
    /// Same behaviour as [`CritiqueSession::apply_compound`].
    pub fn apply_unit(
        &mut self,
        ctx: &Ctx<'_>,
        current: ItemId,
        critique: &UnitCritique,
    ) -> Result<CritiqueOutcome> {
        let compound = CompoundCritique {
            parts: vec![critique.clone()],
            support: 0.0,
        };
        self.apply_compound(ctx, current, &compound)
    }

    /// Repair action: drop the requirements on the critique's first
    /// attribute, rebuild the pool, and continue.
    fn repair(&mut self, ctx: &Ctx<'_>, critique: &CompoundCritique) -> Result<CritiqueOutcome> {
        let relaxed = critique
            .parts
            .first()
            .map(|p| p.attribute.clone())
            .unwrap_or_default();
        self.maut.relax(&relaxed);
        self.repairs += 1;
        self.time += 3;
        self.pool = self
            .maut
            .rank(ctx, usize::MAX)
            .iter()
            .map(|s| s.item)
            .collect();
        let screen = self.screen(ctx)?;
        Ok(CritiqueOutcome::Repaired { relaxed, screen })
    }

    /// Whether `target` is still reachable (in the pool).
    pub fn reachable(&self, target: ItemId) -> bool {
        self.pool.contains(&target)
    }

    /// The critique (if any) among `options` that moves the pool toward
    /// `target` — used by simulated users who know what they want.
    pub fn critique_toward<'o>(
        &self,
        ctx: &Ctx<'_>,
        current: ItemId,
        target: ItemId,
        options: &'o [(CompoundCritique, String)],
    ) -> Option<&'o (CompoundCritique, String)> {
        let reference = ctx.catalog.get(current).ok()?;
        let target_item = ctx.catalog.get(target).ok()?;
        let target_pattern = pattern_of(target_item, reference, &self.ranges);
        options
            .iter()
            .filter(|(c, _)| c.parts.iter().all(|p| target_pattern.contains(p)))
            .max_by(|(a, _), (b, _)| {
                a.parts.len().cmp(&b.parts.len()).then(
                    a.support
                        .partial_cmp(&b.support)
                        .unwrap_or(std::cmp::Ordering::Equal),
                )
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exrec_algo::knowledge::{Constraint, Requirement};
    use exrec_data::synth::{cameras, WorldConfig};
    use exrec_data::World;

    fn world() -> World {
        cameras::generate(&WorldConfig {
            n_items: 50,
            n_users: 5,
            ..WorldConfig::default()
        })
    }

    fn maut() -> Maut {
        Maut::new(vec![
            Requirement::soft("price", Constraint::AtMost(500.0)),
            Requirement::soft("resolution", Constraint::AtLeast(8.0)),
        ])
        .unwrap()
    }

    #[test]
    fn session_starts_with_options() {
        let w = world();
        let ctx = Ctx::new(&w.ratings, &w.catalog);
        let (session, screen) =
            CritiqueSession::start(maut(), &ctx, OverviewConfig::default()).unwrap();
        assert_eq!(screen.cycle, 1);
        assert!(
            !screen.options.is_empty(),
            "camera world must mine critiques"
        );
        assert!(session.pool_size() > 1);
        assert!(session.elapsed().ticks() > 0);
    }

    #[test]
    fn applying_critique_shrinks_pool_and_matches() {
        let w = world();
        let ctx = Ctx::new(&w.ratings, &w.catalog);
        let (mut session, screen) =
            CritiqueSession::start(maut(), &ctx, OverviewConfig::default()).unwrap();
        let before = session.pool_size();
        let (critique, _) = screen.options[0].clone();
        let outcome = session
            .apply_compound(&ctx, screen.current.item, &critique)
            .unwrap();
        match outcome {
            CritiqueOutcome::Continue(next) => {
                assert!(session.pool_size() < before);
                assert_ne!(next.current.item, screen.current.item);
                assert_eq!(next.cycle, 2);
                // Every remaining item satisfies the critique.
                let ranges = attribute_ranges(&w.catalog);
                let reference = w.catalog.get(screen.current.item).unwrap();
                for &i in &session.pool {
                    assert!(critique.matches(w.catalog.get(i).unwrap(), reference, &ranges));
                }
            }
            CritiqueOutcome::Repaired { .. } => {
                // Acceptable but unusual for the first cycle in this world.
            }
        }
    }

    #[test]
    fn impossible_critique_triggers_repair() {
        let w = world();
        let ctx = Ctx::new(&w.ratings, &w.catalog);
        let (mut session, screen) =
            CritiqueSession::start(maut(), &ctx, OverviewConfig::default()).unwrap();
        // Find the cheapest item in the pool and demand "cheaper" from it.
        let cheapest = session
            .pool
            .iter()
            .copied()
            .min_by(|&a, &b| {
                let pa = w.catalog.get(a).unwrap().attrs.num("price").unwrap();
                let pb = w.catalog.get(b).unwrap().attrs.num("price").unwrap();
                pa.partial_cmp(&pb).unwrap()
            })
            .unwrap();
        let _ = screen;
        let uc = UnitCritique::new("price", exrec_present::CritiqueDirection::Less);
        let outcome = session.apply_unit(&ctx, cheapest, &uc).unwrap();
        match outcome {
            CritiqueOutcome::Repaired { relaxed, screen } => {
                assert_eq!(relaxed, "price");
                assert!(screen.cycle >= 2);
                assert_eq!(session.repairs(), 1);
            }
            CritiqueOutcome::Continue(_) => {
                panic!("cheaper-than-cheapest must trigger repair")
            }
        }
    }

    #[test]
    fn critique_toward_finds_compatible_option() {
        let w = world();
        let ctx = Ctx::new(&w.ratings, &w.catalog);
        let (session, screen) =
            CritiqueSession::start(maut(), &ctx, OverviewConfig::default()).unwrap();
        // Pick any pool member that one of the options matches; the
        // helper must find a critique consistent with reaching it.
        let ranges = attribute_ranges(&w.catalog);
        let reference = w.catalog.get(screen.current.item).unwrap();
        for &target in &session.pool {
            if target == screen.current.item {
                continue;
            }
            if let Some((c, title)) =
                session.critique_toward(&ctx, screen.current.item, target, &screen.options)
            {
                assert!(!title.is_empty());
                assert!(c.matches(w.catalog.get(target).unwrap(), reference, &ranges));
                return;
            }
        }
        // No compatible option found for any target: acceptable only if
        // there are no options at all.
        assert!(screen.options.is_empty());
    }

    #[test]
    fn time_accumulates_per_cycle() {
        let w = world();
        let ctx = Ctx::new(&w.ratings, &w.catalog);
        let (mut session, screen) =
            CritiqueSession::start(maut(), &ctx, OverviewConfig::default()).unwrap();
        let t0 = session.elapsed();
        if let Some((c, _)) = screen.options.first() {
            let _ = session.apply_compound(&ctx, screen.current.item, c);
            assert!(session.elapsed() > t0);
        }
    }
}

//! Opinion feedback (survey Section 5.4).
//!
//! "It is sometimes easier for a user to say what they want or do not
//! want, when they have options in front of them." The survey's option
//! tree, verbatim:
//!
//! * **More like this** — "More later!" (good type, not now) and
//!   "Give me more!" (more right away);
//! * **No more like this** — "I already know this!" (familiar, not
//!   necessarily negative) and "No more like this!" (disliked);
//! * **Surprise me!** — broaden the horizon with partly random picks;
//! * aspect-level feedback — like the sport, dislike the distant venue.

use crate::profile::{RuleEffect, ScrutableProfile};
use exrec_data::Catalog;
use exrec_types::{ItemId, Result};
use std::collections::HashSet;

/// An opinion a user can express about a presented item (or the stream).
#[derive(Debug, Clone, PartialEq)]
pub enum Opinion {
    /// "More later!" — I like this type; don't flood me now.
    MoreLater,
    /// "Give me more!" — show me more of this immediately.
    GiveMeMore,
    /// "I already know this!" — familiar; correct, but don't reinforce.
    AlreadyKnow,
    /// "No more like this!" — stop showing this type.
    NoMoreLikeThis,
    /// "Surprise me!" — raise the exploration dial.
    SurpriseMe,
    /// Aspect-level: I relate to this `attribute = value` specifically.
    Aspect {
        /// The attribute being judged.
        attribute: String,
        /// The value being judged.
        value: String,
        /// Liked or disliked.
        liked: bool,
    },
}

/// The session-level state opinions accumulate into.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OpinionState {
    /// Items the user already knows — excluded from lists but *not*
    /// negative signal.
    pub known: HashSet<ItemId>,
    /// Exploration dial in `[0, 1]` (SurpriseMe raises it).
    pub exploration: f64,
    /// Pending "give me more" anchor, if any.
    pub more_anchor: Option<ItemId>,
}

/// Applies an opinion about `item` to the profile and session state.
///
/// The *category* of the item (its first categorical attribute of the
/// schema, typically genre/topic/cuisine) carries type-level opinions.
///
/// # Errors
///
/// Propagates catalog lookup failures.
pub fn apply_opinion(
    opinion: &Opinion,
    item: ItemId,
    catalog: &Catalog,
    profile: &mut ScrutableProfile,
    state: &mut OpinionState,
) -> Result<()> {
    let it = catalog.get(item)?;
    let type_attr = catalog
        .schema()
        .attributes()
        .iter()
        .find(|a| a.kind == exrec_types::AttributeKind::Categorical)
        .map(|a| a.name.clone());

    match opinion {
        Opinion::MoreLater => {
            if let Some(attr) = type_attr {
                if let Some(v) = it.attrs.cat(&attr) {
                    // Mild standing preference, no immediate flood.
                    profile.add_rule(&attr, v, RuleEffect::Bias(0.3));
                }
            }
            state.more_anchor = None;
        }
        Opinion::GiveMeMore => {
            if let Some(attr) = type_attr {
                if let Some(v) = it.attrs.cat(&attr) {
                    profile.add_rule(&attr, v, RuleEffect::Bias(1.0));
                }
            }
            state.more_anchor = Some(item);
        }
        Opinion::AlreadyKnow => {
            // Correct recommendation, but do not reinforce: exclude the
            // item, leave the profile untouched.
            state.known.insert(item);
        }
        Opinion::NoMoreLikeThis => {
            if let Some(attr) = type_attr {
                if let Some(v) = it.attrs.cat(&attr) {
                    profile.add_rule(&attr, v, RuleEffect::Bias(-1.5));
                }
            }
            state.known.insert(item);
        }
        Opinion::SurpriseMe => {
            state.exploration = (state.exploration + 0.25).min(1.0);
        }
        Opinion::Aspect {
            attribute,
            value,
            liked,
        } => {
            let delta = if *liked { 0.8 } else { -0.8 };
            profile.add_rule(attribute, value, RuleEffect::Bias(delta));
        }
    }
    Ok(())
}

impl OpinionState {
    /// Lowers the exploration dial (e.g. after a bad surprise).
    pub fn calm_down(&mut self) {
        self.exploration = (self.exploration - 0.25).max(0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exrec_data::synth::{news, WorldConfig};
    use exrec_data::World;

    fn world() -> World {
        news::generate(&WorldConfig {
            n_items: 30,
            n_users: 5,
            ..WorldConfig::default()
        })
    }

    fn setup() -> (World, ScrutableProfile, OpinionState) {
        (world(), ScrutableProfile::new(), OpinionState::default())
    }

    #[test]
    fn give_me_more_boosts_and_anchors() {
        let (w, mut p, mut s) = setup();
        let item = w.catalog.ids().next().unwrap();
        apply_opinion(&Opinion::GiveMeMore, item, &w.catalog, &mut p, &mut s).unwrap();
        assert_eq!(s.more_anchor, Some(item));
        assert_eq!(p.rules().len(), 1);
        assert!(matches!(p.rules()[0].effect, RuleEffect::Bias(d) if d > 0.5));
    }

    #[test]
    fn more_later_is_mild() {
        let (w, mut p, mut s) = setup();
        let item = w.catalog.ids().next().unwrap();
        apply_opinion(&Opinion::MoreLater, item, &w.catalog, &mut p, &mut s).unwrap();
        assert_eq!(s.more_anchor, None, "no immediate flood");
        assert!(matches!(p.rules()[0].effect, RuleEffect::Bias(d) if d > 0.0 && d < 0.5));
    }

    #[test]
    fn already_know_excludes_without_penalty() {
        let (w, mut p, mut s) = setup();
        let item = w.catalog.ids().next().unwrap();
        apply_opinion(&Opinion::AlreadyKnow, item, &w.catalog, &mut p, &mut s).unwrap();
        assert!(s.known.contains(&item));
        assert!(p.rules().is_empty(), "familiarity is not negative signal");
    }

    #[test]
    fn no_more_like_this_penalizes_type() {
        let (w, mut p, mut s) = setup();
        let item = w.catalog.ids().next().unwrap();
        apply_opinion(&Opinion::NoMoreLikeThis, item, &w.catalog, &mut p, &mut s).unwrap();
        assert!(s.known.contains(&item));
        assert!(matches!(p.rules()[0].effect, RuleEffect::Bias(d) if d < 0.0));
    }

    #[test]
    fn surprise_me_saturates() {
        let (w, mut p, mut s) = setup();
        let item = w.catalog.ids().next().unwrap();
        for _ in 0..10 {
            apply_opinion(&Opinion::SurpriseMe, item, &w.catalog, &mut p, &mut s).unwrap();
        }
        assert_eq!(s.exploration, 1.0);
        s.calm_down();
        assert!((s.exploration - 0.75).abs() < 1e-9);
    }

    #[test]
    fn aspect_feedback_targets_named_attribute() {
        // "the user may want to say they like the sport, but not that the
        // game took place at a distant location"
        let (w, mut p, mut s) = setup();
        let item = w.catalog.ids().next().unwrap();
        apply_opinion(
            &Opinion::Aspect {
                attribute: "subtopic".to_owned(),
                value: "football".to_owned(),
                liked: true,
            },
            item,
            &w.catalog,
            &mut p,
            &mut s,
        )
        .unwrap();
        apply_opinion(
            &Opinion::Aspect {
                attribute: "local".to_owned(),
                value: "no".to_owned(),
                liked: false,
            },
            item,
            &w.catalog,
            &mut p,
            &mut s,
        )
        .unwrap();
        assert_eq!(p.rules().len(), 2);
        assert_eq!(p.rules()[0].attribute, "subtopic");
        assert!(matches!(p.rules()[1].effect, RuleEffect::Bias(d) if d < 0.0));
    }
}

//! Concurrent session store with loyalty accounting (survey Section 3.3).
//!
//! "Loyalty was measured in terms of the number of logins and
//! interactions with the system" (McNee et al.). The store owns shared
//! mutable state — ratings, per-user profiles, login and interaction
//! tallies — behind a `parking_lot` mutex so concurrent simulated users
//! (the trust study fans out across threads) can hit it safely.

use crate::profile::ScrutableProfile;
use exrec_data::{Catalog, RatingsMatrix};
use exrec_types::{ItemId, Result, UserId};
use parking_lot::Mutex;
use std::collections::HashMap;

/// Per-user loyalty tallies.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Loyalty {
    /// Number of logins (sessions opened).
    pub logins: u32,
    /// Number of explicit interactions across sessions.
    pub interactions: u32,
    /// Number of items consumed ("sales" in Section 3.3's indirect
    /// trust measure).
    pub consumed: u32,
}

#[derive(Debug)]
struct StoreState {
    ratings: RatingsMatrix,
    profiles: HashMap<UserId, ScrutableProfile>,
    loyalty: HashMap<UserId, Loyalty>,
}

/// A thread-safe store of everything that persists across sessions.
#[derive(Debug)]
pub struct SessionStore {
    catalog: Catalog,
    state: Mutex<StoreState>,
}

impl SessionStore {
    /// Builds a store from a ratings matrix and catalog.
    pub fn new(ratings: RatingsMatrix, catalog: Catalog) -> Self {
        Self {
            catalog,
            state: Mutex::new(StoreState {
                ratings,
                profiles: HashMap::new(),
                loyalty: HashMap::new(),
            }),
        }
    }

    /// The shared catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Records a login and returns the user's current profile snapshot.
    pub fn login(&self, user: UserId) -> ScrutableProfile {
        let mut state = self.state.lock();
        state.loyalty.entry(user).or_default().logins += 1;
        state.profiles.entry(user).or_default().clone()
    }

    /// Records `n` interactions for a user.
    pub fn record_interactions(&self, user: UserId, n: u32) {
        let mut state = self.state.lock();
        state.loyalty.entry(user).or_default().interactions += n;
    }

    /// Records a consumption ("sale").
    pub fn record_consumption(&self, user: UserId) {
        let mut state = self.state.lock();
        state.loyalty.entry(user).or_default().consumed += 1;
    }

    /// Persists a profile back at session end.
    pub fn save_profile(&self, user: UserId, profile: ScrutableProfile) {
        self.state.lock().profiles.insert(user, profile);
    }

    /// Applies a rating against the shared matrix.
    ///
    /// # Errors
    ///
    /// Propagates matrix errors.
    pub fn rate(&self, user: UserId, item: ItemId, value: f64) -> Result<Option<f64>> {
        self.state.lock().ratings.rate(user, item, value)
    }

    /// Snapshot of the shared ratings matrix.
    pub fn ratings_snapshot(&self) -> RatingsMatrix {
        self.state.lock().ratings.clone()
    }

    /// A user's loyalty tallies.
    pub fn loyalty(&self, user: UserId) -> Loyalty {
        self.state
            .lock()
            .loyalty
            .get(&user)
            .copied()
            .unwrap_or_default()
    }

    /// Total consumption across all users (the "increase in sales"
    /// aggregate of Sections 3.3 / 3.4).
    pub fn total_consumed(&self) -> u32 {
        self.state.lock().loyalty.values().map(|l| l.consumed).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exrec_data::synth::{movies, WorldConfig};
    use std::sync::Arc;

    fn store() -> SessionStore {
        let w = movies::generate(&WorldConfig {
            n_users: 10,
            n_items: 20,
            density: 0.2,
            ..WorldConfig::default()
        });
        SessionStore::new(w.ratings, w.catalog)
    }

    #[test]
    fn logins_and_interactions_accumulate() {
        let s = store();
        let u = UserId::new(0);
        s.login(u);
        s.login(u);
        s.record_interactions(u, 5);
        s.record_consumption(u);
        let l = s.loyalty(u);
        assert_eq!(l.logins, 2);
        assert_eq!(l.interactions, 5);
        assert_eq!(l.consumed, 1);
        assert_eq!(s.loyalty(UserId::new(9)), Loyalty::default());
    }

    #[test]
    fn profiles_persist_across_logins() {
        let s = store();
        let u = UserId::new(1);
        let mut p = s.login(u);
        p.block("genre", "horror");
        s.save_profile(u, p);
        let p2 = s.login(u);
        assert_eq!(p2.rules().len(), 1);
    }

    #[test]
    fn ratings_visible_across_sessions() {
        let s = store();
        let u = UserId::new(2);
        s.rate(u, ItemId::new(3), 5.0).unwrap();
        assert_eq!(s.ratings_snapshot().rating(u, ItemId::new(3)), Some(5.0));
    }

    #[test]
    fn concurrent_access_is_safe() {
        let s = Arc::new(store());
        let mut handles = Vec::new();
        for t in 0..4u32 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                let u = UserId::new(t % 3);
                for _ in 0..50 {
                    s.login(u);
                    s.record_interactions(u, 1);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let total: u32 = (0..3).map(|k| s.loyalty(UserId::new(k)).logins).sum();
        assert_eq!(total, 200);
    }

    #[test]
    fn total_consumed_aggregates() {
        let s = store();
        for k in 0..3u32 {
            s.record_consumption(UserId::new(k));
        }
        assert_eq!(s.total_consumed(), 3);
    }
}

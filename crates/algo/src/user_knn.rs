//! User-based k-nearest-neighbour collaborative filtering.
//!
//! The classic Resnick/GroupLens predictor behind "people like you
//! liked…" explanations and Herlocker et al.'s neighbour-ratings
//! histogram (the best-performing interface in the survey's Section 3.4).
//!
//! Predictions are mean-centred:
//! `p(u,i) = mean(u) + Σ sim(u,v)·(r(v,i) − mean(v)) / Σ |sim(u,v)|`
//! over the top-k most similar users who rated `i`. Confidence grows with
//! the number of contributing neighbours and their agreement.

use std::sync::Arc;

use crate::cache::SimilarityCache;
use crate::kernel::{scan_similarities, CsrRatings, ScanEngine, ScanMode, SimParams};
use crate::neighbors::{top_k_by, top_k_stream};
use crate::recommender::{Ctx, ModelEvidence, NeighborContribution, Recommender, Scored};
use crate::similarity::{self, Similarity};
use exrec_types::{Confidence, Error, ItemId, Prediction, Result, UserId};

/// Configuration for [`UserKnn`].
#[derive(Debug, Clone, PartialEq)]
pub struct UserKnnConfig {
    /// Neighbourhood size.
    pub k: usize,
    /// Similarity measure over co-ratings.
    pub similarity: Similarity,
    /// Minimum co-rated items for a neighbour to count at all.
    pub min_overlap: usize,
    /// Significance-weighting threshold (0 disables).
    pub significance: usize,
    /// Drop neighbours with similarity at or below this value.
    pub min_similarity: f64,
}

impl Default for UserKnnConfig {
    fn default() -> Self {
        Self {
            k: 20,
            similarity: Similarity::Pearson,
            min_overlap: 2,
            significance: 20,
            min_similarity: 0.0,
        }
    }
}

/// User-based kNN recommender. Stateless by default: similarities are
/// computed against the live ratings matrix on every call, so mid-session
/// re-rating (survey Section 5.3) is observed immediately.
///
/// For batch serving, attach a shared [`SimilarityCache`] with
/// [`UserKnn::with_cache`]: pair similarities are then memoized per
/// ratings-matrix revision. Because the cache stores the exact computed
/// value and self-invalidates when the matrix mutates, cached predictions
/// stay bit-identical to uncached ones — including after re-rating.
///
/// For sub-linear uncached serving, attach a shared
/// [`ScanEngine`] with
/// [`UserKnn::with_engine`]: similarity scans then run through the
/// CSR-tiled kernel ([`ScanMode::Exact`], bit-identical to the brute
/// path) and optionally the cluster-pruned candidate index
/// ([`ScanMode::Pruned`], recall ≥ 0.99 with automatic exact fallback).
/// The engine snapshots the matrix per revision, so mid-session
/// re-rating is still observed on the next call, exactly like the
/// cache's invalidation contract. See `docs/kernels.md`.
#[derive(Debug, Clone, Default)]
pub struct UserKnn {
    config: UserKnnConfig,
    cache: Option<Arc<SimilarityCache>>,
    scan: Option<ScanHandle>,
}

/// An attached scan engine plus the mode it should run in.
#[derive(Debug, Clone)]
struct ScanHandle {
    engine: Arc<ScanEngine>,
    mode: ScanMode,
}

impl UserKnn {
    /// Builds a recommender with the given configuration.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] for `k == 0`.
    pub fn new(config: UserKnnConfig) -> Result<Self> {
        if config.k == 0 {
            return Err(Error::InvalidConfig {
                parameter: "k",
                constraint: "k >= 1".to_owned(),
            });
        }
        Ok(Self {
            config,
            cache: None,
            scan: None,
        })
    }

    /// The configuration in use.
    pub fn config(&self) -> &UserKnnConfig {
        &self.config
    }

    /// Attaches a shared user–user similarity cache. Clones of the same
    /// `Arc` (e.g. one per batch worker's model handle) share entries.
    pub fn with_cache(mut self, cache: Arc<SimilarityCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// The attached similarity cache, if any.
    pub fn cache(&self) -> Option<&Arc<SimilarityCache>> {
        self.cache.as_ref()
    }

    /// Attaches a shared scan engine and picks the scan mode. Clones of
    /// the same `Arc` (e.g. per batch worker) share the CSR snapshot,
    /// tuned tile size and candidate index.
    pub fn with_engine(mut self, engine: Arc<ScanEngine>, mode: ScanMode) -> Self {
        self.scan = Some(ScanHandle { engine, mode });
        self
    }

    /// The attached scan engine and mode, if any.
    pub fn engine(&self) -> Option<(&Arc<ScanEngine>, ScanMode)> {
        self.scan.as_ref().map(|h| (&h.engine, h.mode))
    }

    /// Stable name of the scan path this model resolves neighbours
    /// through: `"brute"` without an engine, else the engine mode.
    pub fn scan_mode_name(&self) -> &'static str {
        match &self.scan {
            None => "brute",
            Some(h) => h.mode.name(),
        }
    }

    /// The kernel-facing slice of the configuration.
    fn sim_params(&self) -> SimParams {
        SimParams {
            similarity: self.config.similarity,
            min_overlap: self.config.min_overlap,
            significance: self.config.significance,
        }
    }

    fn similarity_uncached(&self, ctx: &Ctx<'_>, a: UserId, b: UserId) -> f64 {
        let co = ctx.ratings.co_rated(a, b);
        if co.len() < self.config.min_overlap {
            return 0.0;
        }
        let pairs: Vec<(f64, f64)> = co.iter().map(|&(_, x, y)| (x, y)).collect();
        let raw = match self.config.similarity {
            Similarity::Pearson => similarity::pearson(&pairs),
            Similarity::Cosine => similarity::cosine(&pairs),
            Similarity::AdjustedCosine => {
                // For user-user, adjusted == centring on each user's mean.
                let ma = ctx.ratings.user_mean(a).unwrap_or_default();
                let mb = ctx.ratings.user_mean(b).unwrap_or_default();
                let centred: Vec<(f64, f64)> =
                    pairs.iter().map(|&(x, y)| (x - ma, y - mb)).collect();
                similarity::adjusted_cosine(&centred)
            }
            Similarity::Jaccard => similarity::jaccard(
                co.len(),
                ctx.ratings.user_ratings(a).len(),
                ctx.ratings.user_ratings(b).len(),
            ),
        };
        similarity::significance_weight(raw, co.len(), self.config.significance)
    }

    /// The top-k neighbours of `user` *who rated `item`*, strongest first.
    ///
    /// With a scan engine attached this routes through the tiled kernel
    /// (restricted to the item's raters — the only users whose
    /// similarity can matter here), intersected with the pruned
    /// candidate set in [`ScanMode::Pruned`]; otherwise it runs the
    /// seed's per-pair path, optionally memoized by the cache. Exact
    /// mode is bit-identical to the brute path.
    pub fn neighbors(
        &self,
        ctx: &Ctx<'_>,
        user: UserId,
        item: ItemId,
    ) -> Vec<NeighborContribution> {
        match &self.scan {
            Some(handle) => self.neighbors_scanned(ctx, user, item, handle),
            None => self.neighbors_brute(ctx, user, item),
        }
    }

    fn neighbors_brute(
        &self,
        ctx: &Ctx<'_>,
        user: UserId,
        item: ItemId,
    ) -> Vec<NeighborContribution> {
        // Profiler phase per candidate item, not per pair: a guard on
        // every similarity probe would cost more than a cache hit.
        // `cache_probe` covers resolving every candidate similarity
        // through the cache (hits and miss-computes); the uncached
        // model reports the same work as `similarity`. Probe outcomes
        // are counted locally and flushed once per call.
        let _phase = if self.cache.is_some() {
            exrec_obs::profile::phase("cache_probe")
        } else {
            exrec_obs::profile::phase("similarity")
        };
        let probes = std::cell::Cell::new(0u64);
        let computes = std::cell::Cell::new(0u64);
        let raters = ctx.ratings.item_ratings(item);
        let candidates: Vec<NeighborContribution> = raters
            .iter()
            .filter(|&&(v, _)| v != user)
            .filter_map(|&(v, rating)| {
                let s = match &self.cache {
                    Some(cache) => {
                        probes.set(probes.get() + 1);
                        cache.get_or_compute(user.raw(), v.raw(), ctx.ratings.revision(), || {
                            computes.set(computes.get() + 1);
                            self.similarity_uncached(ctx, user, v)
                        })
                    }
                    None => self.similarity_uncached(ctx, user, v),
                };
                (s > self.config.min_similarity).then_some(NeighborContribution {
                    user: v,
                    similarity: s,
                    rating,
                })
            })
            .collect();
        exrec_obs::profile::cache_events(probes.get() - computes.get(), computes.get());
        top_k_by(candidates, self.config.k, |n| n.similarity)
    }

    /// Kernel-backed single-item neighbourhood: scan only the item's
    /// raters (exact) or their intersection with the pruned candidate
    /// set, then rank with the same `> min_similarity` filter and
    /// stable top-k the brute path applies.
    fn neighbors_scanned(
        &self,
        ctx: &Ctx<'_>,
        user: UserId,
        item: ItemId,
        handle: &ScanHandle,
    ) -> Vec<NeighborContribution> {
        let params = self.sim_params();
        let csr = {
            let _p = exrec_obs::profile::phase("csr");
            handle.engine.csr(ctx.ratings, &params)
        };
        let raters = csr.col(item.index()).0;
        if raters.is_empty() {
            return Vec::new();
        }
        let (scan_list, pruned, fell_back) = self.scan_list_for(&csr, user, handle, Some(raters));
        let mut sims = Vec::new();
        let outcome = {
            let _p = exrec_obs::profile::phase("kernel");
            scan_similarities(
                &csr,
                &params,
                user,
                Some(&scan_list),
                handle.engine.tile(),
                &mut sims,
            )
        };
        handle.engine.record_scan(
            &outcome,
            pruned.then_some((scan_list.len(), csr.n_users())),
            fell_back,
        );
        let _p = exrec_obs::profile::phase("gather");
        self.gather_neighbors(&csr, &sims, user, item)
    }

    /// The user list one scan should score, per mode: `raters` bounds
    /// the scan to one item's raters when given (single-item paths),
    /// the pruned candidate set intersects with it, and a candidate set
    /// under the fallback floor degrades to the exact list. Returns
    /// `(list, is_pruned, fell_back)`.
    fn scan_list_for(
        &self,
        csr: &Arc<CsrRatings>,
        user: UserId,
        handle: &ScanHandle,
        raters: Option<&[u32]>,
    ) -> (Vec<u32>, bool, bool) {
        let exact_list = || -> Vec<u32> {
            match raters {
                Some(r) => r.to_vec(),
                None => (0..csr.n_users() as u32).collect(),
            }
        };
        match handle.mode {
            ScanMode::Exact => (exact_list(), false, false),
            ScanMode::Pruned => {
                // Two complementary candidate sources (docs/kernels.md
                // §pruned-probing): cluster probes catch taste
                // neighbours, the overlap pass catches the
                // high-co-rating users whose significance weight makes
                // them dominate neighbourhoods.
                let candidates = {
                    let _p = exrec_obs::profile::phase("index");
                    let index = handle.engine.index(csr);
                    let clustered = index.candidates(csr, user.raw());
                    let budget = handle.engine.index_config().resolve_budget(csr.n_users());
                    let by_overlap = crate::kernel::overlap_candidates(csr, user, budget);
                    crate::kernel::union_sorted(&clustered, &by_overlap)
                };
                if candidates.len() < handle.engine.fallback_floor(self.config.k) {
                    return (exact_list(), false, true);
                }
                match raters {
                    None => (candidates, true, false),
                    Some(r) => (intersect_sorted(r, &candidates), true, false),
                }
            }
        }
    }

    /// Ranks an item's raters from a dense similarity table, mirroring
    /// the brute path's filter/tie-break exactly: raters in ascending
    /// user order, keep `s > min_similarity`, stable top-k.
    fn gather_neighbors(
        &self,
        csr: &CsrRatings,
        sims: &[f64],
        user: UserId,
        item: ItemId,
    ) -> Vec<NeighborContribution> {
        let (col_users, col_vals) = csr.col(item.index());
        let contributions = col_users
            .iter()
            .zip(col_vals.iter())
            .filter(|&(&v, _)| UserId(v) != user)
            .filter_map(|(&v, &rating)| {
                let s = sims[v as usize];
                (s > self.config.min_similarity).then_some(NeighborContribution {
                    user: UserId(v),
                    similarity: s,
                    rating,
                })
            });
        top_k_stream(contributions, self.config.k, |n| n.similarity)
    }

    /// Scores one candidate item from the dense similarity table with
    /// the same arithmetic as [`UserKnn::predict`] (neighbour means off
    /// the CSR snapshot are bit-identical to the live matrix's).
    #[allow(clippy::too_many_arguments)]
    fn score_item(
        &self,
        csr: &CsrRatings,
        ctx: &Ctx<'_>,
        sims: &[f64],
        user: UserId,
        item: ItemId,
        user_mean: f64,
        global_mean: f64,
    ) -> Option<Scored> {
        let neighbors = self.gather_neighbors(csr, sims, user, item);
        if neighbors.is_empty() {
            return None;
        }
        let mut num = 0.0;
        let mut den = 0.0;
        for n in &neighbors {
            let n_mean = csr.user_mean_or(n.user.index(), global_mean);
            num += n.similarity * (n.rating - n_mean);
            den += n.similarity.abs();
        }
        if den <= 1e-12 {
            return None;
        }
        let score = ctx.ratings.scale().bound(user_mean + num / den);
        let fill = neighbors.len() as f64 / self.config.k as f64;
        let mean_rating = neighbors.iter().map(|n| n.rating).sum::<f64>() / neighbors.len() as f64;
        let var = neighbors
            .iter()
            .map(|n| (n.rating - mean_rating).powi(2))
            .sum::<f64>()
            / neighbors.len() as f64;
        let span = ctx.ratings.scale().span();
        let agreement = 1.0 - (var.sqrt() / (span / 2.0)).min(1.0);
        let confidence = Confidence::new(fill.min(1.0) * (0.3 + 0.7 * agreement));
        Some(Scored {
            item,
            prediction: Prediction::new(score, confidence),
        })
    }

    /// The trait-default ranking (predict every unrated item through
    /// the per-pair path), duplicated here because overriding
    /// [`Recommender::recommend`] hides the default body.
    fn recommend_brute(&self, ctx: &Ctx<'_>, user: UserId, n: usize) -> Vec<Scored> {
        let scan = exrec_obs::profile::phase("scan");
        let mut scored: Vec<Scored> = ctx
            .catalog
            .ids()
            .filter(|&i| ctx.ratings.rating(user, i).is_none())
            .filter_map(|i| {
                self.predict(ctx, user, i).ok().map(|prediction| Scored {
                    item: i,
                    prediction,
                })
            })
            .collect();
        drop(scan);
        let _rank = exrec_obs::profile::phase("rank");
        scored.sort_by(|a, b| {
            b.prediction
                .score
                .partial_cmp(&a.prediction.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.item.cmp(&b.item))
        });
        scored.truncate(n);
        scored
    }

    /// Kernel-backed ranking: one similarity scan for the whole
    /// request, then a per-item gather — instead of one scan per
    /// candidate item. Output matches the trait-default path
    /// bit-for-bit in exact mode.
    fn recommend_scanned(
        &self,
        ctx: &Ctx<'_>,
        user: UserId,
        n: usize,
        handle: &ScanHandle,
    ) -> Vec<Scored> {
        let scan = exrec_obs::profile::phase("scan");
        // Out-of-range user: every per-item predict would fail its id
        // check, so the brute path returns nothing. Match it.
        if user.index() >= ctx.ratings.n_users() {
            return Vec::new();
        }
        let params = self.sim_params();
        let csr = {
            let _p = exrec_obs::profile::phase("csr");
            handle.engine.csr(ctx.ratings, &params)
        };
        let (scan_list, pruned, fell_back) = self.scan_list_for(&csr, user, handle, None);
        let mut sims = Vec::new();
        let outcome = {
            let _p = exrec_obs::profile::phase("kernel");
            scan_similarities(
                &csr,
                &params,
                user,
                Some(&scan_list),
                handle.engine.tile(),
                &mut sims,
            )
        };
        handle.engine.record_scan(
            &outcome,
            pruned.then_some((scan_list.len(), csr.n_users())),
            fell_back,
        );
        let user_mean = ctx
            .ratings
            .user_mean(user)
            .unwrap_or_else(|| ctx.ratings.global_mean());
        let global_mean = ctx.ratings.global_mean();
        let mut scored: Vec<Scored> = {
            let _p = exrec_obs::profile::phase("gather");
            ctx.catalog
                .ids()
                .filter(|&i| {
                    i.index() < ctx.ratings.n_items() && ctx.ratings.rating(user, i).is_none()
                })
                .filter_map(|i| self.score_item(&csr, ctx, &sims, user, i, user_mean, global_mean))
                .collect()
        };
        drop(scan);
        let _rank = exrec_obs::profile::phase("rank");
        scored.sort_by(|a, b| {
            b.prediction
                .score
                .partial_cmp(&a.prediction.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.item.cmp(&b.item))
        });
        scored.truncate(n);
        scored
    }

    fn check_ids(&self, ctx: &Ctx<'_>, user: UserId, item: ItemId) -> Result<()> {
        if user.index() >= ctx.ratings.n_users() {
            return Err(Error::UnknownUser { user });
        }
        if item.index() >= ctx.ratings.n_items() {
            return Err(Error::UnknownItem { item });
        }
        Ok(())
    }
}

/// Intersection of two sorted, deduplicated id lists, ascending.
fn intersect_sorted(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

impl Recommender for UserKnn {
    fn name(&self) -> &'static str {
        "user-knn"
    }

    fn recommend(&self, ctx: &Ctx<'_>, user: UserId, n: usize) -> Vec<Scored> {
        match &self.scan {
            Some(handle) => self.recommend_scanned(ctx, user, n, handle),
            None => self.recommend_brute(ctx, user, n),
        }
    }

    fn predict(&self, ctx: &Ctx<'_>, user: UserId, item: ItemId) -> Result<Prediction> {
        self.check_ids(ctx, user, item)?;
        let user_mean = ctx
            .ratings
            .user_mean(user)
            .unwrap_or_else(|| ctx.ratings.global_mean());
        let neighbors = self.neighbors(ctx, user, item);
        if neighbors.is_empty() {
            return Err(Error::NoPrediction {
                user,
                item,
                reason: "no similar users rated this item",
            });
        }
        let mut num = 0.0;
        let mut den = 0.0;
        for n in &neighbors {
            let n_mean = ctx
                .ratings
                .user_mean(n.user)
                .unwrap_or_else(|| ctx.ratings.global_mean());
            num += n.similarity * (n.rating - n_mean);
            den += n.similarity.abs();
        }
        if den <= 1e-12 {
            return Err(Error::NoPrediction {
                user,
                item,
                reason: "neighbour similarities cancel out",
            });
        }
        let score = ctx.ratings.scale().bound(user_mean + num / den);

        // Confidence: neighbourhood fill × rating agreement.
        let fill = neighbors.len() as f64 / self.config.k as f64;
        let mean_rating = neighbors.iter().map(|n| n.rating).sum::<f64>() / neighbors.len() as f64;
        let var = neighbors
            .iter()
            .map(|n| (n.rating - mean_rating).powi(2))
            .sum::<f64>()
            / neighbors.len() as f64;
        let span = ctx.ratings.scale().span();
        let agreement = 1.0 - (var.sqrt() / (span / 2.0)).min(1.0);
        let confidence = Confidence::new(fill.min(1.0) * (0.3 + 0.7 * agreement));

        Ok(Prediction::new(score, confidence))
    }

    fn evidence(&self, ctx: &Ctx<'_>, user: UserId, item: ItemId) -> Result<ModelEvidence> {
        self.check_ids(ctx, user, item)?;
        let neighbors = self.neighbors(ctx, user, item);
        if neighbors.is_empty() {
            return Err(Error::NoPrediction {
                user,
                item,
                reason: "no similar users rated this item",
            });
        }
        Ok(ModelEvidence::UserNeighbors { neighbors })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exrec_data::synth::{movies, WorldConfig};
    use exrec_data::{Catalog, RatingsMatrix};
    use exrec_types::{DomainSchema, RatingScale};

    fn ctx_fixtures() -> (RatingsMatrix, Catalog) {
        // Users 0 and 1 agree perfectly; user 2 is their opposite.
        let schema = DomainSchema::new("d", vec![]).unwrap();
        let mut catalog = Catalog::new(schema);
        for k in 0..6 {
            catalog
                .add(&format!("m{k}"), Default::default(), vec![])
                .unwrap();
        }
        let mut m = RatingsMatrix::new(3, 6, RatingScale::FIVE_STAR);
        let grid = [
            (
                0u32,
                [Some(5.0), Some(4.0), Some(1.0), Some(2.0), None, Some(5.0)],
            ),
            (
                1u32,
                [Some(5.0), Some(4.0), Some(1.0), Some(2.0), Some(5.0), None],
            ),
            (
                2u32,
                [Some(1.0), Some(2.0), Some(5.0), Some(4.0), Some(1.0), None],
            ),
        ];
        for (u, row) in grid {
            for (i, v) in row.into_iter().enumerate() {
                if let Some(v) = v {
                    m.rate(UserId(u), ItemId(i as u32), v).unwrap();
                }
            }
        }
        (m, catalog)
    }

    fn knn() -> UserKnn {
        UserKnn::new(UserKnnConfig {
            k: 2,
            min_overlap: 2,
            significance: 0,
            ..UserKnnConfig::default()
        })
        .unwrap()
    }

    #[test]
    fn follows_agreeing_neighbor() {
        let (m, c) = ctx_fixtures();
        let ctx = Ctx::new(&m, &c);
        // User 0 hasn't rated item 4; like-minded user 1 rated it 5,
        // opposite user 2 rated it 1. Prediction should be high.
        let p = knn().predict(&ctx, UserId(0), ItemId(4)).unwrap();
        assert!(p.score > 3.5, "expected high prediction, got {}", p.score);
    }

    #[test]
    fn evidence_lists_neighbors_sorted() {
        let (m, c) = ctx_fixtures();
        let ctx = Ctx::new(&m, &c);
        let ev = knn().evidence(&ctx, UserId(0), ItemId(4)).unwrap();
        match ev {
            ModelEvidence::UserNeighbors { neighbors } => {
                assert!(!neighbors.is_empty());
                assert!(neighbors
                    .windows(2)
                    .all(|w| w[0].similarity >= w[1].similarity));
                assert_eq!(neighbors[0].user, UserId(1));
            }
            other => panic!("wrong evidence kind: {}", other.kind()),
        }
    }

    #[test]
    fn no_prediction_without_raters() {
        let (mut m, c) = ctx_fixtures();
        m.ensure_items(7);
        let err = {
            let ctx = Ctx::new(&m, &c);
            knn().predict(&ctx, UserId(0), ItemId(6)).unwrap_err()
        };
        assert!(matches!(err, Error::NoPrediction { .. }));
    }

    #[test]
    fn rejects_out_of_range() {
        let (m, c) = ctx_fixtures();
        let ctx = Ctx::new(&m, &c);
        assert!(matches!(
            knn().predict(&ctx, UserId(99), ItemId(0)),
            Err(Error::UnknownUser { .. })
        ));
    }

    #[test]
    fn zero_k_is_invalid() {
        assert!(UserKnn::new(UserKnnConfig {
            k: 0,
            ..UserKnnConfig::default()
        })
        .is_err());
    }

    #[test]
    fn beats_global_mean_on_synthetic_world() {
        // Sanity: on a structured world, user-kNN MAE < always-global-mean MAE.
        let world = movies::generate(&WorldConfig {
            n_users: 60,
            n_items: 50,
            density: 0.35,
            ..WorldConfig::default()
        });
        let split = exrec_data::split::holdout(&world.ratings, 0.2, 9);
        let ctx = Ctx::new(&split.train, &world.catalog);
        let model = UserKnn::default();
        let gm = split.train.global_mean();
        let (mut knn_err, mut gm_err, mut n) = (0.0, 0.0, 0);
        for &(u, i, truth) in &split.test {
            if let Ok(p) = model.predict(&ctx, u, i) {
                knn_err += (p.score - truth).abs();
                gm_err += (gm - truth).abs();
                n += 1;
            }
        }
        assert!(n > 20, "need enough predictable pairs, got {n}");
        let (knn_mae, gm_mae) = (knn_err / n as f64, gm_err / n as f64);
        assert!(
            knn_mae < gm_mae,
            "kNN MAE {knn_mae:.3} should beat global-mean MAE {gm_mae:.3}"
        );
    }

    #[test]
    fn prediction_observes_rating_updates() {
        let (mut m, c) = ctx_fixtures();
        let before = {
            let ctx = Ctx::new(&m, &c);
            knn().predict(&ctx, UserId(0), ItemId(4)).unwrap().score
        };
        // Like-minded neighbour slams the item; prediction must drop.
        m.rate(UserId(1), ItemId(4), 1.0).unwrap();
        let after = {
            let ctx = Ctx::new(&m, &c);
            knn().predict(&ctx, UserId(0), ItemId(4)).unwrap().score
        };
        assert!(after < before, "expected {after} < {before}");
    }
}

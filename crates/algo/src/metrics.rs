//! Accuracy and beyond-accuracy metrics.
//!
//! The survey's Section 1 cites the field's turn away from pure accuracy
//! (MAE, precision/recall) toward satisfaction-adjacent measures
//! (serendipity, diversity). Both families are provided: studies use
//! accuracy metrics for the effectiveness criterion (Section 3.5) and the
//! beyond-accuracy set for the "personality" ablations (Section 4.6).

use crate::recommender::{Ctx, Recommender};
use exrec_types::{ItemId, UserId};
use std::collections::HashSet;

/// Mean absolute error over `(predicted, actual)` pairs; `None` if empty.
pub fn mae(pairs: &[(f64, f64)]) -> Option<f64> {
    if pairs.is_empty() {
        return None;
    }
    Some(pairs.iter().map(|&(p, a)| (p - a).abs()).sum::<f64>() / pairs.len() as f64)
}

/// Root-mean-square error over `(predicted, actual)` pairs; `None` if
/// empty.
pub fn rmse(pairs: &[(f64, f64)]) -> Option<f64> {
    if pairs.is_empty() {
        return None;
    }
    Some((pairs.iter().map(|&(p, a)| (p - a) * (p - a)).sum::<f64>() / pairs.len() as f64).sqrt())
}

/// Precision@k and recall@k of a ranked list against a relevant set.
/// Returns `(precision, recall)`; precision is `None` when the list is
/// empty, recall is `None` when the relevant set is empty.
pub fn precision_recall_at_k(
    ranked: &[ItemId],
    relevant: &HashSet<ItemId>,
    k: usize,
) -> (Option<f64>, Option<f64>) {
    let top: Vec<&ItemId> = ranked.iter().take(k).collect();
    let hits = top.iter().filter(|i| relevant.contains(i)).count();
    let precision = if top.is_empty() {
        None
    } else {
        Some(hits as f64 / top.len() as f64)
    };
    let recall = if relevant.is_empty() {
        None
    } else {
        Some(hits as f64 / relevant.len() as f64)
    };
    (precision, recall)
}

/// F1 from precision and recall; `None` when either is missing or both
/// are 0.
pub fn f1(precision: Option<f64>, recall: Option<f64>) -> Option<f64> {
    match (precision, recall) {
        (Some(p), Some(r)) if p + r > 0.0 => Some(2.0 * p * r / (p + r)),
        _ => None,
    }
}

/// Catalog coverage: fraction of catalog items that appear in at least
/// one user's top-n recommendations.
pub fn coverage(rec: &dyn Recommender, ctx: &Ctx<'_>, users: &[UserId], n: usize) -> f64 {
    if ctx.catalog.is_empty() {
        return 0.0;
    }
    let mut seen: HashSet<ItemId> = HashSet::new();
    for &u in users {
        for s in rec.recommend(ctx, u, n) {
            seen.insert(s.item);
        }
    }
    seen.len() as f64 / ctx.catalog.len() as f64
}

/// Intra-list diversity: mean pairwise distance `1 − sim(i, j)` over a
/// recommendation list, for any similarity in `[-1, 1]`. Returns `None`
/// for lists shorter than 2.
pub fn intra_list_diversity<F>(items: &[ItemId], mut sim: F) -> Option<f64>
where
    F: FnMut(ItemId, ItemId) -> f64,
{
    if items.len() < 2 {
        return None;
    }
    let mut total = 0.0;
    let mut pairs = 0usize;
    for a in 0..items.len() {
        for b in (a + 1)..items.len() {
            total += 1.0 - sim(items[a], items[b]);
            pairs += 1;
        }
    }
    Some(total / pairs as f64)
}

/// Novelty: mean self-information `−log2(popularity)` of recommended
/// items, where popularity is the fraction of users who rated the item.
/// Unrated items count as rated-by-one for finiteness. `None` for empty
/// lists or a user-less matrix.
pub fn novelty(items: &[ItemId], ctx: &Ctx<'_>) -> Option<f64> {
    if items.is_empty() || ctx.ratings.n_users() == 0 {
        return None;
    }
    let n_users = ctx.ratings.n_users() as f64;
    let total: f64 = items
        .iter()
        .map(|&i| {
            let raters = ctx.ratings.item_ratings(i).len().max(1) as f64;
            -(raters / n_users).log2()
        })
        .sum();
    Some(total / items.len() as f64)
}

/// Serendipity: fraction of recommended relevant items that a trivial
/// baseline would *not* have recommended (McNee-style "unexpected and
/// useful"). `None` when `recommended` is empty.
pub fn serendipity(
    recommended: &[ItemId],
    baseline: &[ItemId],
    relevant: &HashSet<ItemId>,
) -> Option<f64> {
    if recommended.is_empty() {
        return None;
    }
    let base: HashSet<&ItemId> = baseline.iter().collect();
    let unexpected_useful = recommended
        .iter()
        .filter(|i| relevant.contains(i) && !base.contains(i))
        .count();
    Some(unexpected_useful as f64 / recommended.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mae_and_rmse() {
        let pairs = vec![(3.0, 4.0), (5.0, 3.0)];
        assert!((mae(&pairs).unwrap() - 1.5).abs() < 1e-12);
        assert!((rmse(&pairs).unwrap() - (2.5f64).sqrt()).abs() < 1e-12);
        assert!(mae(&[]).is_none());
        assert!(rmse(&[]).is_none());
        // RMSE >= MAE always.
        assert!(rmse(&pairs).unwrap() >= mae(&pairs).unwrap());
    }

    #[test]
    fn precision_recall() {
        let ranked: Vec<ItemId> = [1, 2, 3, 4, 5].iter().map(|&i| ItemId(i)).collect();
        let relevant: HashSet<ItemId> = [2u32, 4, 9].iter().map(|&i| ItemId(i)).collect();
        let (p, r) = precision_recall_at_k(&ranked, &relevant, 4);
        assert!((p.unwrap() - 0.5).abs() < 1e-12);
        assert!((r.unwrap() - 2.0 / 3.0).abs() < 1e-12);
        let (p, _) = precision_recall_at_k(&[], &relevant, 4);
        assert!(p.is_none());
        let (_, r) = precision_recall_at_k(&ranked, &HashSet::new(), 4);
        assert!(r.is_none());
    }

    #[test]
    fn f1_harmonic() {
        assert!((f1(Some(0.5), Some(1.0)).unwrap() - 2.0 / 3.0).abs() < 1e-12);
        assert!(f1(Some(0.0), Some(0.0)).is_none());
        assert!(f1(None, Some(1.0)).is_none());
    }

    #[test]
    fn diversity_bounds() {
        let items: Vec<ItemId> = (0..3).map(ItemId).collect();
        // All identical → diversity 0.
        assert!((intra_list_diversity(&items, |_, _| 1.0).unwrap()).abs() < 1e-12);
        // All orthogonal → diversity 1.
        assert!((intra_list_diversity(&items, |_, _| 0.0).unwrap() - 1.0).abs() < 1e-12);
        assert!(intra_list_diversity(&items[..1], |_, _| 0.0).is_none());
    }

    #[test]
    fn novelty_prefers_obscure() {
        use exrec_data::{Catalog, RatingsMatrix};
        use exrec_types::{DomainSchema, RatingScale};
        let mut catalog = Catalog::new(DomainSchema::new("d", vec![]).unwrap());
        for k in 0..2 {
            catalog
                .add(&format!("i{k}"), Default::default(), vec![])
                .unwrap();
        }
        let mut m = RatingsMatrix::new(10, 2, RatingScale::FIVE_STAR);
        for u in 0..10u32 {
            m.rate(UserId(u), ItemId(0), 3.0).unwrap(); // popular
        }
        m.rate(UserId(0), ItemId(1), 3.0).unwrap(); // obscure
        let ctx = Ctx::new(&m, &catalog);
        let pop = novelty(&[ItemId(0)], &ctx).unwrap();
        let obs = novelty(&[ItemId(1)], &ctx).unwrap();
        assert!(obs > pop);
        assert!(novelty(&[], &ctx).is_none());
    }

    #[test]
    fn serendipity_counts_unexpected_hits() {
        let rec: Vec<ItemId> = [1u32, 2, 3].iter().map(|&i| ItemId(i)).collect();
        let base: Vec<ItemId> = [1u32].iter().map(|&i| ItemId(i)).collect();
        let relevant: HashSet<ItemId> = [1u32, 2].iter().map(|&i| ItemId(i)).collect();
        // Item 2 is relevant and not in baseline → 1/3.
        assert!((serendipity(&rec, &base, &relevant).unwrap() - 1.0 / 3.0).abs() < 1e-12);
        assert!(serendipity(&[], &base, &relevant).is_none());
    }
}
